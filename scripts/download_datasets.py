"""Fetch the paper's real datasets (when network access is available).

The reproduction ships calibrated synthetic stand-ins (see DESIGN.md §3),
but the full pipeline runs unchanged on the original dumps.  This script
downloads the publicly hosted ones, unpacks them and converts each to the
plain ``u v timestamp`` format that ``repro.datasets.load_dataset_file``
reads, normalising timestamps onto the paper's Table II spans.

Usage:
    python scripts/download_datasets.py [--dest data/] [--only NAME ...]

Offline environments: the script fails fast per dataset with the URL so
files can be fetched manually and dropped into ``--dest``; conversion
then still runs via ``--convert-only``.
"""

from __future__ import annotations

import argparse
import sys
import tarfile
import urllib.request
from pathlib import Path

#: dataset name -> (archive URL, file inside the archive, Table II span)
SOURCES: dict[str, tuple[str, str, int]] = {
    "eu-email": (
        "https://snap.stanford.edu/data/email-Eu-core-temporal-Dept1.txt.gz",
        "email-Eu-core-temporal-Dept1.txt",
        803,
    ),
    "contact": (
        "http://konect.cc/files/download.tsv.contact.tar.bz2",
        "contact/out.contact",
        96,
    ),
    "facebook": (
        "http://konect.cc/files/download.tsv.facebook-wosn-wall.tar.bz2",
        "facebook-wosn-wall/out.facebook-wosn-wall",
        366,
    ),
    "prosper": (
        "http://konect.cc/files/download.tsv.prosper-loans.tar.bz2",
        "prosper-loans/out.prosper-loans",
        60,
    ),
    "slashdot": (
        "http://konect.cc/files/download.tsv.slashdot-threads.tar.bz2",
        "slashdot-threads/out.slashdot-threads",
        240,
    ),
    "digg": (
        "http://konect.cc/files/download.tsv.munmun_digg_reply.tar.bz2",
        "munmun_digg_reply/out.munmun_digg_reply",
        240,
    ),
    # "co-author" is a DBLP subset the paper extracted itself (no public
    # per-paper file); build your own from https://dblp.org/xml/ and drop
    # a `co-author.tsv` (u v year) into the destination directory.
}


def download(name: str, dest: Path) -> "Path | None":
    url, inner, _ = SOURCES[name]
    archive = dest / Path(url).name
    if not archive.exists():
        print(f"[{name}] downloading {url}")
        try:
            urllib.request.urlretrieve(url, archive)  # noqa: S310 - fixed URLs
        except OSError as error:
            print(f"[{name}] FAILED ({error}); fetch manually: {url}")
            return None
    if archive.suffix == ".gz" and not archive.name.endswith(".tar.gz"):
        import gzip
        import shutil

        out = dest / inner
        with gzip.open(archive, "rb") as src, open(out, "wb") as dst:
            shutil.copyfileobj(src, dst)
        return out
    with tarfile.open(archive) as tar:
        tar.extract(inner, path=dest)
    return dest / inner


def convert(name: str, raw: Path, dest: Path) -> Path:
    """Re-write the raw file as normalised `u v timestamp` TSV."""
    from repro.datasets.loaders import load_dataset_file
    from repro.graph.io import write_edge_list

    span = SOURCES[name][2]
    network = load_dataset_file(raw, span=span)
    out = dest / f"{name}.tsv"
    write_edge_list(network, out)
    print(
        f"[{name}] {network.number_of_nodes()} nodes, "
        f"{network.number_of_links()} links -> {out}"
    )
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dest", default="data", help="output directory")
    parser.add_argument("--only", nargs="+", choices=sorted(SOURCES))
    parser.add_argument(
        "--convert-only",
        action="store_true",
        help="skip downloads; convert already-present raw files",
    )
    args = parser.parse_args()

    dest = Path(args.dest)
    dest.mkdir(parents=True, exist_ok=True)
    failures = 0
    for name in args.only or sorted(SOURCES):
        raw = dest / SOURCES[name][1]
        if not args.convert_only:
            raw = download(name, dest) or raw
        if raw.exists():
            convert(name, raw, dest)
        else:
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Regenerate every artefact of the reproduction from scratch.
#
#   bash scripts/reproduce.sh          # tests + benches + full-scale drivers
#   bash scripts/reproduce.sh quick    # tests + benches only (~2 min)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== install =="
python setup.py develop -q

echo "== test suite =="
python -m pytest tests/ | tee test_output.txt

echo "== benchmark harness (reduced scale, writes results/*.txt) =="
python -m pytest benchmarks/ --benchmark-only | tee bench_output.txt

if [ "${1:-full}" != "quick" ]; then
  echo "== full-scale Table III =="
  python results/run_table3.py | tee results/table3.txt
  echo "== full-scale figures (6 and 7) =="
  python results/run_figures.py | tee results/figures.txt
fi

echo "done; see EXPERIMENTS.md for the paper-vs-measured record."

#!/usr/bin/env python3
"""Validate a live OpenMetrics/Prometheus exposition (stdlib only).

CI scrapes the telemetry endpoint a `repro table3 --telemetry-port ...`
run serves and pipes the document through this checker:

    python scripts/check_openmetrics.py --url http://127.0.0.1:9109/metrics \
        --retry 30 --retry-delay 1 \
        --require repro_proc_rss_bytes \
        --save telemetry_scrape.prom

or, offline, `--file exposition.prom`.  Exit 0 when the document obeys
the text-exposition grammar the scrapers rely on (and contains every
`--require`d family); exit 1 with one problem per line otherwise.

Checked: metric-name grammar, numeric sample values, TYPE lines naming
known types, counter samples using the `_total` suffix, no family
declared twice, label syntax balance, exemplar grammar
(`# {trace_id="..."} value ts` after a sample value), and the
terminating `# EOF`.  `--require-exemplar METRIC` additionally fails
unless at least one sample of that family carries a valid exemplar.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
import urllib.error
import urllib.request

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
TYPES = ("counter", "gauge", "histogram", "summary", "info", "untyped", "stateset")
VALUE_RE = re.compile(r"^[+-]?(\d+\.?\d*([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?|Inf|NaN)$")
LABELSET_RE = re.compile(
    r'^\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\}$'
)


def validate_exemplar(exemplar: str) -> "str | None":
    """A grammar problem with an exemplar clause, or None when valid.

    ``exemplar`` is the text after ``# `` on a sample line, e.g.
    ``{trace_id="tr-1f-000001"} 0.187 1723111111.5`` — a labelset,
    a numeric value, and an optional numeric timestamp.
    """
    fields = exemplar.split()
    if not fields or not fields[0].startswith("{"):
        return "exemplar must start with a labelset"
    # the labelset may itself contain spaces inside quoted values;
    # re-join until braces balance on a quote-aware scan
    closing = _labelset_end(exemplar)
    if closing < 0:
        return "exemplar labelset has unbalanced braces"
    labelset = exemplar[: closing + 1]
    if not LABELSET_RE.fullmatch(labelset):
        return f"malformed exemplar labelset {labelset!r}"
    tail = exemplar[closing + 1 :].split()
    if not tail:
        return "exemplar is missing a value"
    if not VALUE_RE.fullmatch(tail[0]):
        return f"non-numeric exemplar value {tail[0]!r}"
    if len(tail) > 1 and not VALUE_RE.fullmatch(tail[1]):
        return f"non-numeric exemplar timestamp {tail[1]!r}"
    if len(tail) > 2:
        return f"trailing garbage after exemplar: {' '.join(tail[2:])!r}"
    return None


def _labelset_end(text: str) -> int:
    """Index of the ``}`` closing the labelset at text[0], or -1."""
    in_quotes = False
    escaped = False
    for index, char in enumerate(text):
        if escaped:
            escaped = False
            continue
        if char == "\\":
            escaped = True
        elif char == '"':
            in_quotes = not in_quotes
        elif char == "}" and not in_quotes:
            return index
    return -1


def fetch(url: str, retries: int, retry_delay: float) -> str:
    """GET the exposition, retrying while the endpoint comes up."""
    last: "Exception | None" = None
    for attempt in range(max(retries, 0) + 1):
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            last = exc
            if attempt < retries:
                time.sleep(retry_delay)
    raise SystemExit(f"error: could not scrape {url}: {last}")


def parse_sample_name(line: str) -> "str | None":
    """The metric name of a sample line, or None when unparseable."""
    match = NAME_RE.match(line)
    return match.group(0) if match else None


def family_of(sample_name: str) -> str:
    """Map a sample name back to its declared family."""
    for suffix in ("_total", "_count", "_sum", "_bucket", "_info", "_created"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)]:
            return sample_name[: -len(suffix)]
    return sample_name


def validate(
    text: str,
    required: "list[str]",
    required_exemplars: "list[str] | None" = None,
) -> "list[str]":
    """All grammar problems in the exposition (empty list = valid)."""
    problems: "list[str]" = []
    families: "dict[str, str]" = {}
    seen_samples: "set[str]" = set()
    exemplar_families: "set[str]" = set()
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        problems.append("document must end with '# EOF'")
    for index, line in enumerate(lines, start=1):
        where = f"line {index}"
        if not line.strip():
            continue
        if line.strip() == "# EOF":
            if index != len(lines):
                problems.append(f"{where}: '# EOF' before end of document")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"{where}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if not NAME_RE.fullmatch(name):
                problems.append(f"{where}: invalid family name {name!r}")
            if kind not in TYPES:
                problems.append(f"{where}: unknown type {kind!r}")
            if name in families:
                problems.append(f"{where}: family {name!r} declared twice")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT/comments: legal, nothing to check
        name = parse_sample_name(line)
        if name is None:
            problems.append(f"{where}: unparseable sample line {line!r}")
            continue
        rest = line[len(name):]
        if rest.startswith("{"):
            closing = rest.find("}")
            if closing < 0:
                problems.append(f"{where}: unbalanced label braces")
                continue
            rest = rest[closing + 1:]
        exemplar_text: "str | None" = None
        if " # " in rest:
            rest, _, exemplar_text = rest.partition(" # ")
        fields = rest.split()
        if not fields:
            problems.append(f"{where}: sample {name!r} has no value")
            continue
        if not VALUE_RE.fullmatch(fields[0]):
            problems.append(f"{where}: non-numeric value {fields[0]!r} for {name!r}")
        family = family_of(name)
        if exemplar_text is not None:
            exemplar_problem = validate_exemplar(exemplar_text.strip())
            if exemplar_problem is None:
                exemplar_families.add(family)
                exemplar_families.add(name)
            else:
                problems.append(f"{where}: {exemplar_problem}")
        declared = families.get(family) or families.get(name)
        if declared == "counter" and not name.endswith(
            ("_total", "_created")
        ):
            problems.append(
                f"{where}: counter sample {name!r} must use the _total suffix"
            )
        seen_samples.add(name)
        seen_samples.add(family)
    for name in required:
        if name not in seen_samples and name not in families:
            problems.append(f"required metric {name!r} not present")
    for name in required_exemplars or []:
        if name not in exemplar_families:
            problems.append(
                f"required metric {name!r} carries no valid exemplar"
            )
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--url", help="endpoint to scrape (e.g. http://127.0.0.1:9109/metrics)")
    source.add_argument("--file", help="validate this exposition file instead")
    parser.add_argument(
        "--retry", type=int, default=0,
        help="retry the scrape this many times while the endpoint comes up",
    )
    parser.add_argument(
        "--retry-delay", type=float, default=1.0, help="seconds between retries"
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless this metric family/sample is present (repeatable)",
    )
    parser.add_argument(
        "--require-exemplar", action="append", default=[], metavar="NAME",
        help=(
            "fail unless a sample of this family carries a valid exemplar "
            "(repeatable)"
        ),
    )
    parser.add_argument(
        "--save", metavar="PATH", help="also write the scraped document there"
    )
    args = parser.parse_args(argv)

    if args.url:
        text = fetch(args.url, args.retry, args.retry_delay)
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
    if args.save:
        with open(args.save, "w", encoding="utf-8") as fh:
            fh.write(text)

    problems = validate(text, args.require, args.require_exemplar)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"FAIL: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    n_samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    print(f"OK: valid exposition with {n_samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate a live OpenMetrics/Prometheus exposition (stdlib only).

CI scrapes the telemetry endpoint a `repro table3 --telemetry-port ...`
run serves and pipes the document through this checker:

    python scripts/check_openmetrics.py --url http://127.0.0.1:9109/metrics \
        --retry 30 --retry-delay 1 \
        --require repro_proc_rss_bytes \
        --save telemetry_scrape.prom

or, offline, `--file exposition.prom`.  Exit 0 when the document obeys
the text-exposition grammar the scrapers rely on (and contains every
`--require`d family); exit 1 with one problem per line otherwise.

Checked: metric-name grammar, numeric sample values, TYPE lines naming
known types, counter samples using the `_total` suffix, no family
declared twice, label syntax balance, and the terminating `# EOF`.
"""

from __future__ import annotations

import argparse
import re
import sys
import time
import urllib.error
import urllib.request

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
TYPES = ("counter", "gauge", "histogram", "summary", "info", "untyped", "stateset")
VALUE_RE = re.compile(r"^[+-]?(\d+\.?\d*([eE][+-]?\d+)?|\.\d+([eE][+-]?\d+)?|Inf|NaN)$")


def fetch(url: str, retries: int, retry_delay: float) -> str:
    """GET the exposition, retrying while the endpoint comes up."""
    last: "Exception | None" = None
    for attempt in range(max(retries, 0) + 1):
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            last = exc
            if attempt < retries:
                time.sleep(retry_delay)
    raise SystemExit(f"error: could not scrape {url}: {last}")


def parse_sample_name(line: str) -> "str | None":
    """The metric name of a sample line, or None when unparseable."""
    match = NAME_RE.match(line)
    return match.group(0) if match else None


def family_of(sample_name: str) -> str:
    """Map a sample name back to its declared family."""
    for suffix in ("_total", "_count", "_sum", "_bucket", "_info", "_created"):
        if sample_name.endswith(suffix) and sample_name[: -len(suffix)]:
            return sample_name[: -len(suffix)]
    return sample_name


def validate(text: str, required: "list[str]") -> "list[str]":
    """All grammar problems in the exposition (empty list = valid)."""
    problems: "list[str]" = []
    families: "dict[str, str]" = {}
    seen_samples: "set[str]" = set()
    lines = text.splitlines()
    if not lines or lines[-1].strip() != "# EOF":
        problems.append("document must end with '# EOF'")
    for index, line in enumerate(lines, start=1):
        where = f"line {index}"
        if not line.strip():
            continue
        if line.strip() == "# EOF":
            if index != len(lines):
                problems.append(f"{where}: '# EOF' before end of document")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"{where}: malformed TYPE line")
                continue
            _, _, name, kind = parts
            if not NAME_RE.fullmatch(name):
                problems.append(f"{where}: invalid family name {name!r}")
            if kind not in TYPES:
                problems.append(f"{where}: unknown type {kind!r}")
            if name in families:
                problems.append(f"{where}: family {name!r} declared twice")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue  # HELP/UNIT/comments: legal, nothing to check
        name = parse_sample_name(line)
        if name is None:
            problems.append(f"{where}: unparseable sample line {line!r}")
            continue
        rest = line[len(name):]
        if rest.startswith("{"):
            closing = rest.find("}")
            if closing < 0:
                problems.append(f"{where}: unbalanced label braces")
                continue
            rest = rest[closing + 1:]
        fields = rest.split()
        if not fields:
            problems.append(f"{where}: sample {name!r} has no value")
            continue
        if not VALUE_RE.fullmatch(fields[0]):
            problems.append(f"{where}: non-numeric value {fields[0]!r} for {name!r}")
        family = family_of(name)
        declared = families.get(family) or families.get(name)
        if declared == "counter" and not name.endswith(
            ("_total", "_created")
        ):
            problems.append(
                f"{where}: counter sample {name!r} must use the _total suffix"
            )
        seen_samples.add(name)
        seen_samples.add(family)
    for name in required:
        if name not in seen_samples and name not in families:
            problems.append(f"required metric {name!r} not present")
    return problems


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--url", help="endpoint to scrape (e.g. http://127.0.0.1:9109/metrics)")
    source.add_argument("--file", help="validate this exposition file instead")
    parser.add_argument(
        "--retry", type=int, default=0,
        help="retry the scrape this many times while the endpoint comes up",
    )
    parser.add_argument(
        "--retry-delay", type=float, default=1.0, help="seconds between retries"
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless this metric family/sample is present (repeatable)",
    )
    parser.add_argument(
        "--save", metavar="PATH", help="also write the scraped document there"
    )
    args = parser.parse_args(argv)

    if args.url:
        text = fetch(args.url, args.retry, args.retry_delay)
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
    if args.save:
        with open(args.save, "w", encoding="utf-8") as fh:
            fh.write(text)

    problems = validate(text, args.require)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"FAIL: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    n_samples = sum(
        1 for line in text.splitlines() if line and not line.startswith("#")
    )
    print(f"OK: valid exposition with {n_samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Co-authorship prediction: the full method comparison on one dataset.

Generates the synthetic DBLP-style co-author network (research-group
communities, yearly timestamps, multi-author papers as group events),
evaluates all 15 methods of the paper's Table III on it, and sweeps K for
the SSFNM model (one Fig. 7 panel).

Run:  python examples/coauthor_prediction.py
"""

from repro.datasets import dataset_statistics, get_dataset
from repro.experiments import (
    ExperimentConfig,
    LinkPredictionExperiment,
    k_sweep,
)
from repro.experiments.figures import format_k_sweep


def main() -> None:
    spec = get_dataset("co-author")
    network = spec.generate(seed=0, scale=0.6)
    stats = dataset_statistics(network, spec.span)
    print(
        f"co-author network: |V|={stats['nodes']} |E|={stats['links']} "
        f"avg degree={stats['avg_degree']} span={stats['time_span']} years"
    )

    config = ExperimentConfig(epochs=60, max_positives=200)
    experiment = LinkPredictionExperiment(network, config)
    summary = experiment.task.summary()
    print(
        f"task: {summary['train_positive']} train / "
        f"{summary['test_positive']} test positive pairs "
        f"(plus as many fake links)\n"
    )

    print(f"{'method':9s} {'AUC':>7s} {'F1':>7s}")
    print("-" * 25)
    for name, result in experiment.run_methods().items():
        print(f"{name:9s} {result.auc:7.3f} {result.f1:7.3f}")

    print()
    sweep = k_sweep(network, config=config, method="SSFNM")
    print(format_k_sweep(sweep, dataset="co-author"))


if __name__ == "__main__":
    main()

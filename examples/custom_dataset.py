"""Running the pipeline on your own timestamped edge list.

Demonstrates the file-based workflow a downstream user follows with real
data (KONECT dumps or plain TSVs): write/load a ``u v timestamp`` file,
normalise timestamps onto the paper's integer grid, build the evaluation
split, and compare methods.  Here the "custom" file is first synthesised
so the example is self-contained.

Run:  python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

from repro.datasets import get_dataset, load_dataset_file
from repro.experiments import ExperimentConfig, LinkPredictionExperiment
from repro.graph.io import write_edge_list


def make_demo_file(directory: Path) -> Path:
    """Pretend this TSV came from a real measurement campaign."""
    network = get_dataset("prosper").generate(seed=1, scale=0.4)
    path = directory / "loans.tsv"
    write_edge_list(network, path)
    print(f"wrote demo edge list: {path} ({network.number_of_links()} events)")
    return path


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = make_demo_file(Path(tmp))

        # span=60 rescales raw timestamps onto 1..60, the paper's protocol
        network = load_dataset_file(path, span=60)
        print(
            f"loaded: {network.number_of_nodes()} nodes, "
            f"{network.number_of_links()} links, "
            f"timestamps 1..{int(network.last_timestamp())}"
        )

        experiment = LinkPredictionExperiment(
            network, ExperimentConfig(epochs=60, max_positives=150)
        )
        print(f"\n{'method':9s} {'AUC':>7s} {'F1':>7s}")
        print("-" * 25)
        for name in ("CN", "PA", "Katz", "RW", "SSFLR", "SSFNM"):
            result = experiment.run_method(name)
            print(f"{name:9s} {result.auc:7.3f} {result.f1:7.3f}")
        print(
            "\nNote how the common-neighbour heuristic collapses on this "
            "bipartite loan network while SSF keeps working."
        )


if __name__ == "__main__":
    main()

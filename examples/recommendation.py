"""Partner recommendation — the paper's motivating application surface.

Trains a recommender on a co-author network's history (self-supervised,
the paper's exact task), then (1) shows top-5 collaborator suggestions
for the most active researchers and (2) scores the offline hit rate:
for users who really did gain a new co-author at the last timestamp,
how often does the true partner appear in the top-10?

Run:  python examples/recommendation.py
"""

from repro.datasets import get_dataset
from repro.recommend import LinkRecommender, hit_rate_at_n
from repro.tuning import grid_search


def main() -> None:
    network = get_dataset("co-author").generate(seed=0, scale=0.5)
    print(
        f"co-author network: {network.number_of_nodes()} researchers, "
        f"{network.number_of_links()} collaborations\n"
    )

    print("tuning K on earlier timestamps (final year held out)...")
    tuned = grid_search(
        network, "SSFLR", {"k": (5, 10, 15)}, n_folds=2, min_positives=5
    )
    print(tuned.format())
    best_k = tuned.best_params["k"]

    from repro.core import SSFConfig

    recommender = LinkRecommender.fit(
        network, config=SSFConfig(k=best_k), model="linear", seed=0
    )
    active = sorted(network.nodes, key=network.degree, reverse=True)[:3]
    for user in active:
        suggestions = recommender.recommend(user, top_n=5)
        pretty = ", ".join(str(s) for s in suggestions)
        print(f"\nsuggested collaborators for {user!r}: {pretty}")

    rate = hit_rate_at_n(network, top_n=10, n_users=25, seed=0)
    print(f"\noffline hit rate@10 (users with a truly new partner): {rate:.2f}")


if __name__ == "__main__":
    main()

"""Prequential (test-then-train) link prediction over a live stream.

The paper models dynamic networks as link streams (Sec. III); this
example runs SSF in its natural deployment mode: at every timestamp the
predictor — trained only on the past — scores that timestamp's new links
against random fake links, is evaluated, and then absorbs the batch.

Run:  python examples/streaming_prediction.py
"""

from repro.core import SSFConfig
from repro.datasets import get_dataset
from repro.streaming import StreamingSSFPredictor, prequential_evaluate


def main() -> None:
    network = get_dataset("co-author").generate(seed=0, scale=0.5)
    print(
        f"streaming {network.number_of_links()} link events over "
        f"{int(network.last_timestamp())} timestamps\n"
    )

    predictor = StreamingSSFPredictor(
        SSFConfig(k=10),
        model="linear",
        refit_every=2,  # refit the downstream model every 2 timestamps
        window_size=800,
        seed=0,
    )
    result = prequential_evaluate(
        network, predictor, warmup_fraction=0.5, min_positives=5
    )

    print(f"{'timestamp':>10s} {'AUC':>7s}")
    for stamp, auc in zip(result.timestamps, result.aucs):
        bar = "#" * int(auc * 40)
        print(f"{stamp:10.0f} {auc:7.3f}  {bar}")
    print(f"\nmean prequential AUC: {result.mean_auc:.3f}")
    if result.skipped:
        print(f"skipped (too few new links): {len(result.skipped)} timestamps")


if __name__ == "__main__":
    main()

"""K-structure-subgraph pattern mining (the paper's Fig. 6).

Samples random links from two structurally different networks (hub-driven
Facebook wall posts vs. community-driven co-authorship), mines the most
frequent K-structure-subgraph pattern of each, and renders them —
showing how the structure subgraph adapts its shape to the network
family.

Run:  python examples/pattern_mining.py
"""

from repro.datasets import get_dataset
from repro.experiments.figures import mine_frequent_pattern


def main() -> None:
    for name in ("facebook", "co-author"):
        network = get_dataset(name).generate(seed=0, scale=0.3)
        stats, rendering = mine_frequent_pattern(
            network, n_samples=400, k=10, seed=0
        )
        print(f"=== most frequent K-structure-subgraph pattern: {name} ===")
        print(rendering)
        print(
            f"(pattern has {len(stats.pattern)} structure links; "
            f"seen on {stats.count} of 400 sampled links)\n"
        )


if __name__ == "__main__":
    main()

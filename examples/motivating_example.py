"""The paper's Fig. 1 motivating scenario: celebrities vs. common fans.

Builds the Twitter-style comment network of Fig. 1(a) and shows that the
classic heuristics cannot separate the celebrity pair A-B from the fan
pair X-Y, while the SSF vectors of the two links differ.

Run:  python examples/motivating_example.py
"""

import numpy as np

from repro.experiments.motivating import (
    TARGET_CELEBRITY,
    TARGET_FANS,
    build_celebrity_network,
    format_motivating_table,
    motivating_comparison,
)


def main() -> None:
    network = build_celebrity_network()
    print(
        f"network: {network.number_of_nodes()} users, "
        f"{network.number_of_links()} comments"
    )
    a, b = TARGET_CELEBRITY
    x, y = TARGET_FANS
    print(f"target links: {a}-{b} (celebrities) vs {x}-{y} (common fans)\n")

    comparison = motivating_comparison(k=6)
    print(format_motivating_table(comparison))

    print("\nSSF vectors (k=6):")
    with np.printoptions(precision=3, suppress=True):
        print(f"  {a}-{b}: {comparison['ssf_ab']}")
        print(f"  {x}-{y}: {comparison['ssf_xy']}")
    verdict = "DOES" if comparison["ssf_distinguishes"] else "does NOT"
    print(f"\nSSF {verdict} distinguish the two target links.")


if __name__ == "__main__":
    main()

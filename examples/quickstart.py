"""Quickstart: extract an SSF vector and train the two SSF predictors.

Run:  python examples/quickstart.py
"""

from repro import (
    DynamicNetwork,
    ExperimentConfig,
    LinkPredictionExperiment,
    SSFConfig,
    SSFExtractor,
)
from repro.datasets import get_dataset


def feature_extraction_demo() -> None:
    """The paper's Fig. 3 network, end to end in a few lines."""
    network = DynamicNetwork(
        [
            ("A", "G", 1), ("A", "H", 2), ("A", "I", 3), ("A", "C", 4),
            ("B", "C", 5), ("B", "D", 6), ("B", "E", 7), ("C", "F", 8),
        ]
    )
    extractor = SSFExtractor(network, SSFConfig(k=5))

    print("structure subgraph of target link A-B:")
    ks = extractor.k_structure_subgraph("A", "B")
    for order in range(1, ks.number_selected() + 1):
        members = sorted(map(str, ks.node(order).members))
        print(f"  order {order}: {{{', '.join(members)}}}")

    print("\nnormalized adjacency matrix (temporal entries):")
    print(extractor.adjacency_matrix("A", "B").round(3))

    print("\nSSF vector:")
    print(extractor.extract("A", "B").round(3))


def prediction_demo() -> None:
    """Train and evaluate SSFLR and SSFNM on a small co-author network."""
    network = get_dataset("co-author").generate(seed=0, scale=0.5)
    experiment = LinkPredictionExperiment(
        network, ExperimentConfig(epochs=60, max_positives=150)
    )
    print("\nlink prediction on a synthetic co-author network:")
    for method in ("CN", "SSFLR", "SSFNM"):
        result = experiment.run_method(method)
        print(f"  {method:6s} AUC={result.auc:.3f}  F1={result.f1:.3f}")


if __name__ == "__main__":
    feature_extraction_demo()
    prediction_demo()

"""Structural and temporal analysis of the seven dataset families.

Uses the analysis toolkit to show how the synthetic stand-ins realise
the paper's dataset diversity: dense bursty interaction networks,
hub-dominated reply networks, a clustered co-author network and a
bipartite loan network — the diversity that motivates a *universal*
link feature.

Run:  python examples/network_analysis.py
"""

from repro.analysis import network_report, temporal_activity
from repro.datasets import DATASETS
from repro.viz import sparkline


def main() -> None:
    print(
        f"{'dataset':10s} {'avg deg':>8s} {'gini':>6s} {'clust':>6s} "
        f"{'burst':>6s} {'lk/pair':>8s}  activity profile"
    )
    print("-" * 78)
    for name, spec in DATASETS.items():
        network = spec.generate(seed=0, scale=0.3)
        report = network_report(network)
        profile = sparkline(temporal_activity(network, bins=24))
        print(
            f"{name:10s} {report.avg_degree:8.1f} {report.degree_gini:6.3f} "
            f"{report.clustering:6.3f} {report.burstiness:6.3f} "
            f"{report.multiplicity_mean:8.2f}  {profile}"
        )

    print(
        "\nReading the table: the email/contact families repeat partners"
        "\n(links per pair >> 1), the reply networks concentrate links on"
        "\nhubs (high Gini, low clustering), the co-author network clusters"
        "\n(groups), and prosper's bipartite roles suppress clustering"
        "\nentirely — no triangles can exist."
    )


if __name__ == "__main__":
    main()

"""Extension bench — prequential streaming evaluation.

Runs the StreamingSSFPredictor test-then-train over the co-author stream
and checks it is consistently better than chance at every evaluated
timestamp (a stronger requirement than the single-split Table III).
"""

from conftest import bench_network, write_result
from repro.core.feature import SSFConfig
from repro.streaming import StreamingSSFPredictor, prequential_evaluate


def _run_stream():
    predictor = StreamingSSFPredictor(
        SSFConfig(k=8), model="linear", refit_every=2, window_size=600, seed=0
    )
    return prequential_evaluate(
        bench_network("co-author"),
        predictor,
        warmup_fraction=0.5,
        min_positives=5,
    )


def test_streaming_prequential(benchmark):
    result = benchmark.pedantic(_run_stream, rounds=1, iterations=1)
    lines = [f"prequential streaming (co-author): mean AUC={result.mean_auc:.3f}"]
    for stamp, auc in zip(result.timestamps, result.aucs):
        lines.append(f"  t={stamp:5.0f}  AUC={auc:.3f}")
    write_result("streaming.txt", "\n".join(lines))

    assert len(result.aucs) >= 3
    assert result.mean_auc > 0.6
    # never catastrophically wrong at any single prediction time
    assert min(result.aucs) > 0.45

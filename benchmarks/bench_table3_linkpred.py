"""Table III — link prediction AUC/F1 of 15 methods on 7 datasets.

Benchmark-scale regeneration (dataset ``scale`` and sample caps from
``conftest``); the full-scale driver is ``results/run_table3.py``.
The assertions encode the paper's *shape* claims that survive the
synthetic-substrate substitution (see EXPERIMENTS.md):

* SSF-based methods are top-class (within a small margin of the best) on
  the sparse/medium networks;
* the bipartite Prosper network breaks common-neighbour heuristics
  (AUC ~0.5 or below) while SSF methods stay strong;
* the neural SSF variants beat WLNM on the majority of datasets.
"""

import json

import pytest

from conftest import bench_config, bench_network, write_result
from repro.experiments.runner import LinkPredictionExperiment
from repro.experiments.tables import format_table3

DATASET_NAMES = (
    "eu-email",
    "contact",
    "facebook",
    "co-author",
    "prosper",
    "slashdot",
    "digg",
)

_results_cache: dict = {}


def _run(name: str):
    if name not in _results_cache:
        experiment = LinkPredictionExperiment(bench_network(name), bench_config())
        _results_cache[name] = experiment.run_methods()
    return _results_cache[name]


@pytest.mark.parametrize("dataset", DATASET_NAMES)
def test_table3_dataset_column(benchmark, dataset):
    results = benchmark.pedantic(_run, args=(dataset,), rounds=1, iterations=1)
    assert len(results) == 15
    for result in results.values():
        assert 0.0 <= result.auc <= 1.0


def test_table3_render_and_shape(benchmark):
    """Render the full table and check the cross-dataset shape claims."""
    results = benchmark.pedantic(
        lambda: {name: _run(name) for name in DATASET_NAMES},
        rounds=1, iterations=1,
    )
    write_result("table3_bench.txt", format_table3(results))
    write_result(
        "table3_bench.json",
        json.dumps(
            {
                d: {m: {"auc": r.auc, "f1": r.f1} for m, r in methods.items()}
                for d, methods in results.items()
            },
            indent=1,
        ),
    )

    # bipartite prosper: CN-family collapses, SSF stays strong
    prosper = results["prosper"]
    assert prosper["CN"].auc < 0.6
    assert prosper["SSFLR"].auc > prosper["CN"].auc + 0.1
    assert prosper["SSFNM"].auc > prosper["CN"].auc + 0.1

    # SSF top-class on the sparse reply/wall networks
    for name in ("facebook", "slashdot", "digg"):
        column = results[name]
        best = max(r.auc for r in column.values())
        ssf_best = max(
            column[m].auc for m in ("SSFNM", "SSFLR", "SSFNM-W", "SSFLR-W")
        )
        assert ssf_best >= best - 0.05, f"{name}: {ssf_best:.3f} vs {best:.3f}"

    # structure combination helps: best SSF-NM variant >= WLNM on most sets
    wins = sum(
        max(results[d]["SSFNM"].auc, results[d]["SSFNM-W"].auc)
        >= results[d]["WLNM"].auc - 1e-9
        for d in DATASET_NAMES
    )
    assert wins >= 4

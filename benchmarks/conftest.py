"""Shared benchmark fixtures.

Benchmarks run each experiment once (``pedantic`` with one round): the
quantity of interest is the regenerated table/figure, not statistical
timing of a hot loop.  Rendered outputs are written to ``results/`` so a
benchmark run leaves the paper-comparison artefacts behind.

Scale: benchmarks default to reduced dataset scale / sample caps so the
whole suite stays in the minutes range.  ``results/run_table3.py`` is the
full-scale Table III driver used for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets.catalog import DATASETS
from repro.experiments.config import ExperimentConfig

#: benchmark-wide dataset scale (1.0 = the paper's Table II sizes)
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))
#: cap on positive samples per dataset split
BENCH_MAX_POSITIVES = int(os.environ.get("REPRO_BENCH_POSITIVES", "120"))
#: neural-machine epochs in benchmark runs
BENCH_EPOCHS = int(os.environ.get("REPRO_BENCH_EPOCHS", "60"))

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

_network_cache: dict = {}


def bench_config() -> ExperimentConfig:
    return ExperimentConfig(
        epochs=BENCH_EPOCHS, max_positives=BENCH_MAX_POSITIVES, seed=0
    )


def bench_network(name: str, scale: "float | None" = None, seed: int = 0):
    """Generate (and cache) one catalog dataset at benchmark scale."""
    scale = BENCH_SCALE if scale is None else scale
    key = (name, scale, seed)
    if key not in _network_cache:
        _network_cache[key] = DATASETS[name].generate(seed=seed, scale=scale)
    return _network_cache[key]


def write_result(filename: str, text: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / filename
    path.write_text(text + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def all_dataset_names():
    return list(DATASETS)

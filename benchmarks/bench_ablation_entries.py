"""Ablation — SSF adjacency entry modes.

Not a paper table, but the design decision DESIGN.md calls out: what the
K×K entries encode (binary connectivity, multi-link counts, Sec. V-B
distance relaxation, raw Eq. 4 influence, or the blended temporal
default).  Run on one sparse and one clustered dataset.
"""

import pytest

from conftest import bench_config, bench_network, write_result
from repro.core.feature import ENTRY_MODES, SSFConfig, SSFExtractor
from repro.metrics.classification import f1_score, roc_auc_score
from repro.models.linear import LinearRegressionModel
from repro.sampling.splits import build_link_prediction_task

ABLATION_DATASETS = ("co-author", "digg")

_cache: dict = {}


def _ablate(name: str):
    if name in _cache:
        return _cache[name]
    config = bench_config()
    task = build_link_prediction_task(
        bench_network(name), max_positives=config.max_positives, seed=0
    )
    rows = {}
    for mode in ENTRY_MODES:
        extractor = SSFExtractor(
            task.history,
            SSFConfig(k=config.k, theta=config.theta, entry_mode=mode),
            present_time=task.present_time,
        )
        x_train = extractor.extract_batch(task.train_pairs)
        x_test = extractor.extract_batch(task.test_pairs)
        model = LinearRegressionModel().fit(x_train, task.train_labels)
        scores = model.decision_scores(x_test)
        rows[mode] = (
            roc_auc_score(task.test_labels, scores),
            f1_score(task.test_labels, model.predict(x_test)),
        )
    _cache[name] = rows
    return rows


@pytest.mark.parametrize("dataset", ABLATION_DATASETS)
def test_ablation_entry_modes(benchmark, dataset):
    rows = benchmark.pedantic(_ablate, args=(dataset,), rounds=1, iterations=1)
    lines = [f"entry-mode ablation (SSFLR) on {dataset}:"]
    for mode, (auc, f1) in rows.items():
        lines.append(f"  {mode:20s} AUC={auc:.3f} F1={f1:.3f}")
    write_result(f"ablation_entries_{dataset}.txt", "\n".join(lines))

    # every mode carries signal; the structured modes beat coin flips
    for mode, (auc, _) in rows.items():
        assert auc > 0.5, mode

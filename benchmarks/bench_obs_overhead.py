"""Paired overhead benchmark — tracing + SLO + profiler vs. metrics-only.

The observability tentpole claims the request-scoped plane
(trace-context propagation, span recording, SLO burn-rate accounting
and the 101Hz continuous profiler) costs under 2% of serving
throughput.  The **baseline arm is the production serving posture** —
``obs.enable()`` with the metrics plane on, exactly how the CI serving
smoke runs (``--telemetry-port``) — because that is what the new
machinery is layered on top of; comparing against observability fully
off would charge this PR for the pre-existing metrics instrumentation.
The instrumented arm adds span recording, the default SLO objectives
and the continuous profiler.

Measurement is **paired, interleaved rounds** of the same replay
workload, compared by *median*, so a single noisy round (GC pause, CPU
migration) cannot fake a regression in either direction.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --nodes 400 --queries 400 --rounds 5 --out BENCH_obs_overhead.json

Exit status is 0 unless ``--max-overhead`` is given and the measured
median overhead exceeds it (the CI-gateable form).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

from repro import obs
from repro.obs.bench import synthetic_network
from repro.obs.contprof import ContinuousProfiler, supported
from repro.obs.slo import DEFAULT_SERVING_OBJECTIVES, configure_slo
from repro.serve.replay import run_replay

REPO_ROOT = Path(__file__).resolve().parent.parent


def _one_round(network, *, queries: int, seed: int, instrumented: bool) -> float:
    """Drive one replay round, returning measured serving seconds.

    Both arms run with the metrics plane enabled (the production
    serving posture); the instrumented arm additionally records spans,
    evaluates the default SLO objectives and samples the profiler.
    """
    profiler = None
    obs.enable()
    if instrumented:
        obs.record_spans(True)
        configure_slo(DEFAULT_SERVING_OBJECTIVES)
        if supported():
            profiler = ContinuousProfiler()
            profiler.start()
    else:
        obs.record_spans(False)
    try:
        result = run_replay(
            network,
            queries=queries,
            concurrency=8,
            top_n=5,
            max_events=40,
            events_per_batch=8,
            seed=seed,
        )
        return result.seconds
    finally:
        if profiler is not None:
            profiler.stop()
        configure_slo(None)
        obs.record_spans(False)
        obs.drain_span_records()
        obs.get_registry().reset()
        obs.disable()


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=400)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="BENCH_obs_overhead.json", help="result JSON path"
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail when median overhead exceeds this (e.g. 0.02 for 2%%)",
    )
    args = parser.parse_args(argv)

    network = synthetic_network(args.nodes, n_ts=20, seed=args.seed)
    base_seconds: "list[float]" = []
    instrumented_seconds: "list[float]" = []
    # warm-up round (both paths) so allocator/cache state is comparable
    _one_round(network, queries=args.queries, seed=args.seed, instrumented=False)
    _one_round(network, queries=args.queries, seed=args.seed, instrumented=True)
    for round_index in range(args.rounds):
        # interleave A/B so slow drift (thermal, noisy neighbours) hits
        # both arms equally instead of biasing whichever ran last
        base_seconds.append(
            _one_round(
                network, queries=args.queries, seed=args.seed, instrumented=False
            )
        )
        instrumented_seconds.append(
            _one_round(
                network, queries=args.queries, seed=args.seed, instrumented=True
            )
        )
        print(
            f"round {round_index + 1}/{args.rounds}: "
            f"base {base_seconds[-1]:.3f}s, "
            f"instrumented {instrumented_seconds[-1]:.3f}s"
        )

    base_median = statistics.median(base_seconds)
    instrumented_median = statistics.median(instrumented_seconds)
    overhead = (
        (instrumented_median - base_median) / base_median if base_median else 0.0
    )
    result = {
        "nodes": args.nodes,
        "queries": args.queries,
        "rounds": args.rounds,
        "seed": args.seed,
        "profiler_supported": supported(),
        "base_seconds": base_seconds,
        "instrumented_seconds": instrumented_seconds,
        "base_median_seconds": base_median,
        "instrumented_median_seconds": instrumented_median,
        "median_overhead": overhead,
    }
    out_path = Path(args.out)
    out_path.write_text(json.dumps(result, indent=1, sort_keys=True) + "\n")
    print(
        f"median overhead of tracing+SLO+profiler: {overhead:+.2%} "
        f"({base_median:.3f}s -> {instrumented_median:.3f}s), "
        f"written to {out_path}"
    )
    if args.max_overhead is not None and overhead > args.max_overhead:
        print(
            f"FAIL: overhead {overhead:.2%} exceeds the "
            f"{args.max_overhead:.2%} budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

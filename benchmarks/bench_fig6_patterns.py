"""Fig. 6 — most frequent K-structure-subgraph patterns.

Mines the patterns of randomly sampled links (the paper samples 2000 at
K = 10) on the Facebook and Co-author stand-ins and renders the most
frequent pattern of each, checking the figure's qualitative contrast:
the co-author pattern is denser (well-connected research groups) than
the hub-dominated Facebook pattern.
"""

import pytest

from conftest import BENCH_SCALE, bench_network, write_result
from repro.experiments.figures import mine_frequent_pattern
from repro.patterns.mining import mine_patterns, most_frequent_pattern

N_SAMPLES = 300  # paper: 2000 at full scale


_pattern_cache: dict = {}


def _mine(name: str):
    if name not in _pattern_cache:
        _pattern_cache[name] = mine_patterns(
            bench_network(name), n_samples=N_SAMPLES, k=10, seed=0
        )
    return _pattern_cache[name]


@pytest.mark.parametrize("dataset", ["facebook", "co-author"])
def test_fig6_pattern_mining(benchmark, dataset):
    stats = benchmark.pedantic(_mine, args=(dataset,), rounds=1, iterations=1)
    top = most_frequent_pattern(stats)
    assert top.count >= 2  # a genuinely recurring pattern
    _, rendering = mine_frequent_pattern(
        bench_network(dataset), n_samples=N_SAMPLES, k=10, seed=0
    )
    write_result(f"fig6_{dataset}.txt", rendering)


def test_fig6_density_contrast(benchmark):
    """The Fig. 6 qualitative contrast: the co-author pattern contains
    links BETWEEN non-end structure nodes (research groups interconnect)
    while Facebook's frequent pattern is a pure double star — every
    structure link attaches to one of the end nodes ("links are formed
    with nodes with high degree")."""
    fb, ca = benchmark.pedantic(
        lambda: (
            most_frequent_pattern(_mine("facebook")),
            most_frequent_pattern(_mine("co-author")),
        ),
        rounds=1, iterations=1,
    )

    def cross_links(stats):
        return sum(1 for m, n in stats.pattern if m > 2 and n > 2)

    assert cross_links(ca) > cross_links(fb)

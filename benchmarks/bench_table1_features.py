"""Table I — link-feature comparison.

Regenerates the feature table (formulas + universal/dynamic flags) and
*demonstrates* the flags on the Fig. 1 network: features marked
non-universal fail to separate the celebrity pair from the fan pair,
while SSF separates them.
"""

import numpy as np

from conftest import write_result
from repro.experiments.motivating import (
    format_motivating_table,
    motivating_comparison,
)
from repro.experiments.tables import format_table1


def test_table1_feature_comparison(benchmark):
    comparison = benchmark.pedantic(
        motivating_comparison, kwargs={"k": 6}, rounds=1, iterations=1
    )
    text = format_table1() + "\n\n" + format_motivating_table(comparison)
    write_result("table1.txt", text)

    # the paper's Table I claims, demonstrated:
    assert set(comparison["undistinguished"]) == {"CN", "AA", "RA", "rWRA"}
    assert comparison["ssf_distinguishes"]
    assert np.any(comparison["ssf_ab"] != comparison["ssf_xy"])

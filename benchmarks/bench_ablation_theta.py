"""Ablation — the influence damping factor θ (Eq. 2).

The paper fixes θ = 0.5 citing "average performance"; this sweep shows
how sensitive SSFLR is to the decay speed on a recency-driven dataset.
"""

from conftest import bench_config, bench_network, write_result
from repro.core.feature import SSFConfig, SSFExtractor
from repro.metrics.classification import roc_auc_score
from repro.models.linear import LinearRegressionModel
from repro.sampling.splits import build_link_prediction_task

THETAS = (0.05, 0.1, 0.25, 0.5, 0.75, 1.0)


def _sweep_theta():
    config = bench_config()
    task = build_link_prediction_task(
        bench_network("digg"), max_positives=config.max_positives, seed=0
    )
    rows = {}
    for theta in THETAS:
        extractor = SSFExtractor(
            task.history,
            SSFConfig(k=config.k, theta=theta),
            present_time=task.present_time,
        )
        x_train = extractor.extract_batch(task.train_pairs)
        x_test = extractor.extract_batch(task.test_pairs)
        model = LinearRegressionModel().fit(x_train, task.train_labels)
        rows[theta] = roc_auc_score(
            task.test_labels, model.decision_scores(x_test)
        )
    return rows


def test_ablation_theta(benchmark):
    rows = benchmark.pedantic(_sweep_theta, rounds=1, iterations=1)
    lines = ["theta ablation (SSFLR on digg):"]
    for theta, auc in rows.items():
        lines.append(f"  theta={theta:<5} AUC={auc:.3f}")
    write_result("ablation_theta.txt", "\n".join(lines))
    assert all(auc > 0.5 for auc in rows.values())
    # the paper's default must be competitive with the sweep's best
    assert rows[0.5] >= max(rows.values()) - 0.1

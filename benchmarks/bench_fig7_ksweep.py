"""Fig. 7 — SSFNM performance across K ∈ {5, 10, 15, 20}.

One panel per benchmarked dataset; the figure's claim is that moderate K
suffices (most peaks at K <= 15) — large K mostly adds noise, not
accuracy.
"""

import pytest

from conftest import bench_config, bench_network, write_result
from repro.experiments.figures import DEFAULT_K_VALUES, format_k_sweep, k_sweep

SWEEP_DATASETS = ("co-author", "digg", "prosper")

_sweep_cache: dict = {}


def _sweep(name: str):
    if name not in _sweep_cache:
        _sweep_cache[name] = k_sweep(
            bench_network(name),
            config=bench_config(),
            k_values=DEFAULT_K_VALUES,
            method="SSFNM",
        )
    return _sweep_cache[name]


@pytest.mark.parametrize("dataset", SWEEP_DATASETS)
def test_fig7_k_sweep(benchmark, dataset):
    results = benchmark.pedantic(_sweep, args=(dataset,), rounds=1, iterations=1)
    write_result(f"fig7_{dataset}.txt", format_k_sweep(results, dataset))
    assert set(results) == set(DEFAULT_K_VALUES)
    for result in results.values():
        assert 0.0 <= result.auc <= 1.0


def test_fig7_moderate_k_suffices(benchmark):
    """The best K is never *far* beyond 10: K=20 should not dominate
    K<=15 across all panels (the paper's 'no very large K needed')."""
    sweeps = benchmark.pedantic(
        lambda: {name: _sweep(name) for name in SWEEP_DATASETS},
        rounds=1, iterations=1,
    )
    advantage_of_20 = 0
    for name in SWEEP_DATASETS:
        results = sweeps[name]
        best_small = max(results[k].auc for k in (5, 10, 15))
        if results[20].auc > best_small + 0.02:
            advantage_of_20 += 1
    assert advantage_of_20 <= 1

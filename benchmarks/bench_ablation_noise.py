"""Ablation — robustness to missing and false links.

Tests the paper's Sec. VI-C4 noise narrative: real networks contain
missing and false links; features should degrade gracefully.  Sweeps
both noise kinds over a fixed split on the co-author stand-in and
additionally checks the claimed K interaction (larger K should be at
least as sensitive to false-link noise as K=10, since more of the
injected noise enters the feature).
"""

import pytest

from conftest import bench_config, bench_network, write_result
from repro.experiments.noise import format_noise_sweep, noise_sweep

NOISE_LEVELS = (0.0, 0.1, 0.2, 0.4)

_cache: dict = {}


def _sweep(kind: str):
    if kind not in _cache:
        _cache[kind] = noise_sweep(
            bench_network("co-author"),
            methods=("CN", "Katz", "SSFLR", "SSFNM"),
            noise_levels=NOISE_LEVELS,
            kind=kind,
            config=bench_config(),
        )
    return _cache[kind]


@pytest.mark.parametrize("kind", ["missing", "false"])
def test_noise_robustness(benchmark, kind):
    results = benchmark.pedantic(_sweep, args=(kind,), rounds=1, iterations=1)
    write_result(f"ablation_noise_{kind}.txt", format_noise_sweep(results, kind))

    clean = results[0.0]
    worst = results[max(NOISE_LEVELS)]
    for method in ("SSFLR", "SSFNM"):
        # graceful degradation: heavy noise costs < 0.25 AUC and the
        # feature still beats coin flipping
        assert worst[method].auc > 0.5
        assert clean[method].auc - worst[method].auc < 0.25


def test_noise_k_interaction(benchmark):
    """Sec. VI-C4's explanation of the Fig. 7 ceiling: larger K admits
    more of the injected noise into the feature.  Recorded as the AUC
    drop (clean minus 40%-false-links) per K; the assertion is
    deliberately weak — the sweep documents whether the substrate shows
    the claimed direction rather than forcing it."""
    from repro.experiments.noise import noise_sweep
    from dataclasses import replace

    def sweep_k():
        rows = {}
        for k in (5, 10, 15):
            results = noise_sweep(
                bench_network("co-author"),
                methods=("SSFLR",),
                noise_levels=(0.0, 0.4),
                kind="false",
                config=replace(bench_config(), k=k),
            )
            rows[k] = (
                results[0.0]["SSFLR"].auc,
                results[0.4]["SSFLR"].auc,
            )
        return rows

    rows = benchmark.pedantic(sweep_k, rounds=1, iterations=1)
    lines = [f"{'K':>4s} {'clean':>7s} {'noisy':>7s} {'drop':>7s}"]
    for k, (clean, noisy) in rows.items():
        lines.append(f"{k:4d} {clean:7.3f} {noisy:7.3f} {clean - noisy:7.3f}")
    write_result("ablation_noise_k.txt", "\n".join(lines))

    for clean, noisy in rows.values():
        assert 0.0 <= noisy <= clean + 0.15  # noise never *helps* much

"""Microbenchmarks — the cost of the extraction pipeline stages.

These ARE timing benchmarks (multiple rounds): per-link cost of
Algorithm 1 (structure combination), Algorithm 2 (Palette-WL) and
Algorithm 3 (full SSF extraction), plus the WLF baseline for comparison,
on a mid-size dataset.

A final (non-timing) pass re-runs extraction with observability enabled
and writes the registry snapshot to ``results/extraction_metrics.json``
— the machine-readable per-stage baseline later performance PRs diff
against.

Run as a script for the dict-vs-csr backend comparison (no
pytest-benchmark needed — this is what the CI bench smoke step runs)::

    PYTHONPATH=src python benchmarks/bench_extraction_perf.py \
        --nodes 5000 --pairs 200

which writes ``BENCH_extraction.json`` (pairs/sec per backend) at the
repository root.
"""

import argparse
import json
import time
from pathlib import Path

import numpy as np

import pytest

from conftest import RESULTS_DIR, bench_network
from repro import obs
from repro.baselines.wlf import WLFExtractor
from repro.core.feature import SSFConfig, SSFExtractor
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import combine_structures
from repro.core.subgraph import h_hop_node_set
from repro.graph.csr import CSRSnapshot
from repro.graph.temporal import DynamicNetwork

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def network():
    return bench_network("co-author")


@pytest.fixture(scope="module")
def sample_pairs(network):
    return list(network.pair_iter())[:20]


def test_perf_structure_combination(benchmark, network, sample_pairs):
    node_sets = [
        (a, b, h_hop_node_set(network, a, b, 1)) for a, b in sample_pairs
    ]

    def run():
        for a, b, nodes in node_sets:
            combine_structures(network, nodes, a, b)

    benchmark(run)


def test_perf_palette_wl(benchmark, network, sample_pairs):
    subgraphs = [
        combine_structures(network, h_hop_node_set(network, a, b, 1), a, b)
        for a, b in sample_pairs
    ]

    def run():
        for subgraph in subgraphs:
            palette_wl_order(subgraph)

    benchmark(run)


def test_perf_ssf_extraction(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10), backend="dict")

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_perf_ssf_extraction_csr(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10), backend="csr")

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_perf_ssf_multi_mode_shares_extraction(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10))

    def run():
        for a, b in sample_pairs:
            extractor.extract_multi(a, b, ("temporal", "count"))

    benchmark(run)


def test_perf_wlf_extraction(benchmark, network, sample_pairs):
    extractor = WLFExtractor(network, k=10)

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_extraction_metrics_snapshot(network, sample_pairs):
    """Emit the machine-readable per-stage baseline (not a timing test).

    Runs last in this module so the instrumented pass cannot perturb the
    timing benchmarks above.
    """
    registry = obs.get_registry()
    obs.enable()
    registry.reset()
    try:
        extractor = SSFExtractor(network, SSFConfig(k=10))
        for a, b in sample_pairs:
            extractor.extract(a, b)
        snapshot = registry.snapshot()
    finally:
        obs.disable()
        registry.reset()

    for stage in (
        "span.subgraph_growth",
        "span.structure_combination",
        "span.palette_wl",
        "span.influence_matrix",
    ):
        assert snapshot["histograms"][stage]["count"] > 0

    def scrub(obj):
        if isinstance(obj, dict):
            return {k: scrub(v) for k, v in obj.items()}
        if isinstance(obj, float) and obj != obj:
            return None
        return obj

    path = RESULTS_DIR / "extraction_metrics.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(scrub(snapshot), fh, indent=1, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# dict-vs-csr backend comparison (script mode — the CI bench smoke step)
# ----------------------------------------------------------------------
def synthetic_network(n_nodes: int, avg_degree: float = 4.0, n_ts: int = 100,
                      seed: int = 0) -> DynamicNetwork:
    """A random temporal multigraph at a chosen node count.

    Edges are uniform random pairs (about ``avg_degree / 2`` links per
    node) over ``n_ts`` distinct integer timestamps — enough collision
    density to exercise multi-links and duplicate stamps at scale.
    """
    rng = np.random.default_rng(seed)
    n_edges = int(n_nodes * avg_degree / 2)
    g = DynamicNetwork()
    endpoints = rng.integers(0, n_nodes, size=(n_edges, 2))
    stamps = rng.integers(1, n_ts + 1, size=n_edges)
    for (u, v), ts in zip(endpoints, stamps):
        if u != v:
            g.add_edge(int(u), int(v), float(ts))
    return g


def run_backend_comparison(
    n_nodes: int = 5000,
    n_pairs: int = 200,
    k: int = 10,
    seed: int = 0,
    out_path: "Path | None" = None,
) -> dict:
    """Time single-process SSF extraction on both backends, same pairs.

    The csr timing INCLUDES the one-off snapshot freeze (built once per
    observed window, amortised over the batch — exactly how the runner
    uses it).  Writes ``BENCH_extraction.json`` at the repo root.
    """
    network = synthetic_network(n_nodes, seed=seed)
    rng = np.random.default_rng(seed + 1)
    nodes = network.nodes
    pairs = []
    while len(pairs) < n_pairs:
        i, j = rng.integers(0, len(nodes), size=2)
        if i != j:
            pairs.append((nodes[int(i)], nodes[int(j)]))
    config = SSFConfig(k=k)

    started = time.perf_counter()
    dict_extractor = SSFExtractor(network, config, backend="dict")
    dict_features = [dict_extractor.extract(a, b) for a, b in pairs]
    dict_seconds = time.perf_counter() - started

    started = time.perf_counter()
    snapshot = CSRSnapshot.from_dynamic(network)
    build_seconds = time.perf_counter() - started
    csr_extractor = SSFExtractor(snapshot, config)
    csr_features = [csr_extractor.extract(a, b) for a, b in pairs]
    csr_seconds = time.perf_counter() - started

    identical = all(
        np.array_equal(d, c) for d, c in zip(dict_features, csr_features)
    )
    result = {
        "nodes": network.number_of_nodes(),
        "links": network.number_of_links(),
        "pairs": len(pairs),
        "k": k,
        "seed": seed,
        "bit_identical": identical,
        "backends": {
            "dict": {
                "seconds": round(dict_seconds, 4),
                "pairs_per_second": round(len(pairs) / dict_seconds, 2),
            },
            "csr": {
                "seconds": round(csr_seconds, 4),
                "snapshot_build_seconds": round(build_seconds, 4),
                "pairs_per_second": round(len(pairs) / csr_seconds, 2),
            },
        },
        "speedup": round(dict_seconds / csr_seconds, 2),
    }
    out_path = out_path or REPO_ROOT / "BENCH_extraction.json"
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return result


def main() -> int:
    parser = argparse.ArgumentParser(
        description="dict-vs-csr SSF extraction throughput comparison"
    )
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None)
    args = parser.parse_args()
    result = run_backend_comparison(
        n_nodes=args.nodes,
        n_pairs=args.pairs,
        k=args.k,
        seed=args.seed,
        out_path=args.out,
    )
    print(json.dumps(result, indent=1, sort_keys=True))
    if not result["bit_identical"]:
        print("FAIL: backends disagree")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

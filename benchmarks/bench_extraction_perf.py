"""Microbenchmarks — the cost of the extraction pipeline stages.

These ARE timing benchmarks (multiple rounds): per-link cost of
Algorithm 1 (structure combination), Algorithm 2 (Palette-WL) and
Algorithm 3 (full SSF extraction), plus the WLF baseline for comparison,
on a mid-size dataset.

A final (non-timing) pass re-runs extraction with observability enabled
and writes the registry snapshot to ``results/extraction_metrics.json``
— the machine-readable per-stage baseline later performance PRs diff
against.

Run as a script for the dict-vs-csr backend comparison (no
pytest-benchmark needed — this is what the CI bench smoke step runs)::

    PYTHONPATH=src python benchmarks/bench_extraction_perf.py \
        --nodes 5000 --pairs 200 --batch

which writes ``BENCH_extraction.json`` (pairs/sec per backend) at the
repository root and appends a stamped record (seed, git SHA, machine
fingerprint) to ``BENCH_history.jsonl`` — pass ``--no-history`` to skip
the append.  ``--batch`` adds a ``batched`` section timing one cold
``extract_batch`` call through the csr batched driver (``--batch-pairs``
pairs, default 5x ``--pairs``).  ``repro bench --compare BASELINE``
gates on regressions.
"""

import argparse
import json
from pathlib import Path

import pytest

from conftest import RESULTS_DIR, bench_network
from repro import obs
from repro.baselines.wlf import WLFExtractor
from repro.core.feature import SSFConfig, SSFExtractor
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import combine_structures
from repro.core.subgraph import h_hop_node_set

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def network():
    return bench_network("co-author")


@pytest.fixture(scope="module")
def sample_pairs(network):
    return list(network.pair_iter())[:20]


def test_perf_structure_combination(benchmark, network, sample_pairs):
    node_sets = [
        (a, b, h_hop_node_set(network, a, b, 1)) for a, b in sample_pairs
    ]

    def run():
        for a, b, nodes in node_sets:
            combine_structures(network, nodes, a, b)

    benchmark(run)


def test_perf_palette_wl(benchmark, network, sample_pairs):
    subgraphs = [
        combine_structures(network, h_hop_node_set(network, a, b, 1), a, b)
        for a, b in sample_pairs
    ]

    def run():
        for subgraph in subgraphs:
            palette_wl_order(subgraph)

    benchmark(run)


def test_perf_ssf_extraction(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10), backend="dict")

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_perf_ssf_extraction_csr(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10), backend="csr")

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_perf_ssf_multi_mode_shares_extraction(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10))

    def run():
        for a, b in sample_pairs:
            extractor.extract_multi(a, b, ("temporal", "count"))

    benchmark(run)


def test_perf_wlf_extraction(benchmark, network, sample_pairs):
    extractor = WLFExtractor(network, k=10)

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_extraction_metrics_snapshot(network, sample_pairs):
    """Emit the machine-readable per-stage baseline (not a timing test).

    Runs last in this module so the instrumented pass cannot perturb the
    timing benchmarks above.
    """
    registry = obs.get_registry()
    obs.enable()
    registry.reset()
    try:
        extractor = SSFExtractor(network, SSFConfig(k=10))
        for a, b in sample_pairs:
            extractor.extract(a, b)
        snapshot = registry.snapshot()
    finally:
        obs.disable()
        registry.reset()

    for stage in (
        "span.subgraph_growth",
        "span.structure_combination",
        "span.palette_wl",
        "span.influence_matrix",
    ):
        assert snapshot["histograms"][stage]["count"] > 0

    def scrub(obj):
        if isinstance(obj, dict):
            return {k: scrub(v) for k, v in obj.items()}
        if isinstance(obj, float) and obj != obj:
            return None
        return obj

    path = RESULTS_DIR / "extraction_metrics.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(scrub(snapshot), fh, indent=1, sort_keys=True)
        fh.write("\n")


# ----------------------------------------------------------------------
# dict-vs-csr backend comparison (script mode — the CI bench smoke step)
#
# The implementation lives in repro.obs.bench so the CLI (`repro bench`)
# and the history/regression tooling share it; these names stay as
# aliases for anyone driving the benchmark from this file.
# ----------------------------------------------------------------------
from repro.obs.bench import run_extraction_bench, synthetic_network  # noqa: E402,F401


def run_backend_comparison(
    n_nodes: int = 5000,
    n_pairs: int = 200,
    k: int = 10,
    seed: int = 0,
    out_path: "Path | None" = None,
    history_path: "Path | None" = None,
    tag: "str | None" = None,
    batch: bool = False,
    batch_pairs: "int | None" = None,
) -> dict:
    """Time single-process SSF extraction on both backends, same pairs.

    Delegates to :func:`repro.obs.bench.run_extraction_bench`.  Writes
    the latest result to ``BENCH_extraction.json`` at the repo root and
    appends a stamped record (seed, git SHA, machine fingerprint) to
    ``BENCH_history.jsonl`` unless ``history_path`` is explicitly
    disabled by the caller.  ``tag`` labels the record's experiment line
    (rendered per-tag in the run-report bench trajectory).  ``batch``
    adds the ``batched`` section (one cold ``extract_batch`` call over
    ``batch_pairs`` pairs, default ``5 * n_pairs``) — see
    :func:`repro.obs.bench.run_extraction_bench`.
    """
    return run_extraction_bench(
        n_nodes=n_nodes,
        n_pairs=n_pairs,
        k=k,
        seed=seed,
        out_path=out_path or REPO_ROOT / "BENCH_extraction.json",
        history_path=history_path,
        tag=tag,
        batch=batch,
        batch_pairs=batch_pairs,
    )


def main() -> int:
    parser = argparse.ArgumentParser(
        description="dict-vs-csr SSF extraction throughput comparison"
    )
    parser.add_argument("--nodes", type=int, default=5000)
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path, default=None)
    parser.add_argument(
        "--history",
        type=Path,
        default=REPO_ROOT / "BENCH_history.jsonl",
        help="JSONL trajectory file every run is appended to",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip the BENCH_history.jsonl append",
    )
    parser.add_argument(
        "--tag",
        metavar="LABEL",
        default=None,
        help="label this run's experiment line in BENCH_history.jsonl",
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="also time the csr batched driver (extract_batch) and write "
        "a 'batched' section; pairs default to 10x --pairs",
    )
    parser.add_argument(
        "--batch-pairs",
        type=int,
        default=None,
        metavar="N",
        help="pair count for the --batch section (default 10x --pairs)",
    )
    args = parser.parse_args()
    result = run_backend_comparison(
        n_nodes=args.nodes,
        n_pairs=args.pairs,
        k=args.k,
        seed=args.seed,
        out_path=args.out,
        history_path=None if args.no_history else args.history,
        tag=args.tag,
        batch=args.batch,
        batch_pairs=args.batch_pairs,
    )
    print(json.dumps(result, indent=1, sort_keys=True))
    if not result["bit_identical"]:
        print("FAIL: backends disagree")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

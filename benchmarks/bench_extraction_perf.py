"""Microbenchmarks — the cost of the extraction pipeline stages.

These ARE timing benchmarks (multiple rounds): per-link cost of
Algorithm 1 (structure combination), Algorithm 2 (Palette-WL) and
Algorithm 3 (full SSF extraction), plus the WLF baseline for comparison,
on a mid-size dataset.

A final (non-timing) pass re-runs extraction with observability enabled
and writes the registry snapshot to ``results/extraction_metrics.json``
— the machine-readable per-stage baseline later performance PRs diff
against.
"""

import json

import pytest

from conftest import RESULTS_DIR, bench_network
from repro import obs
from repro.baselines.wlf import WLFExtractor
from repro.core.feature import SSFConfig, SSFExtractor
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import combine_structures
from repro.core.subgraph import h_hop_node_set


@pytest.fixture(scope="module")
def network():
    return bench_network("co-author")


@pytest.fixture(scope="module")
def sample_pairs(network):
    return list(network.pair_iter())[:20]


def test_perf_structure_combination(benchmark, network, sample_pairs):
    node_sets = [
        (a, b, h_hop_node_set(network, a, b, 1)) for a, b in sample_pairs
    ]

    def run():
        for a, b, nodes in node_sets:
            combine_structures(network, nodes, a, b)

    benchmark(run)


def test_perf_palette_wl(benchmark, network, sample_pairs):
    subgraphs = [
        combine_structures(network, h_hop_node_set(network, a, b, 1), a, b)
        for a, b in sample_pairs
    ]

    def run():
        for subgraph in subgraphs:
            palette_wl_order(subgraph)

    benchmark(run)


def test_perf_ssf_extraction(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10))

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_perf_ssf_multi_mode_shares_extraction(benchmark, network, sample_pairs):
    extractor = SSFExtractor(network, SSFConfig(k=10))

    def run():
        for a, b in sample_pairs:
            extractor.extract_multi(a, b, ("temporal", "count"))

    benchmark(run)


def test_perf_wlf_extraction(benchmark, network, sample_pairs):
    extractor = WLFExtractor(network, k=10)

    def run():
        for a, b in sample_pairs:
            extractor.extract(a, b)

    benchmark(run)


def test_extraction_metrics_snapshot(network, sample_pairs):
    """Emit the machine-readable per-stage baseline (not a timing test).

    Runs last in this module so the instrumented pass cannot perturb the
    timing benchmarks above.
    """
    registry = obs.get_registry()
    obs.enable()
    registry.reset()
    try:
        extractor = SSFExtractor(network, SSFConfig(k=10))
        for a, b in sample_pairs:
            extractor.extract(a, b)
        snapshot = registry.snapshot()
    finally:
        obs.disable()
        registry.reset()

    for stage in (
        "span.subgraph_growth",
        "span.structure_combination",
        "span.palette_wl",
        "span.influence_matrix",
    ):
        assert snapshot["histograms"][stage]["count"] > 0

    def scrub(obj):
        if isinstance(obj, dict):
            return {k: scrub(v) for k, v in obj.items()}
        if isinstance(obj, float) and obj != obj:
            return None
        return obj

    path = RESULTS_DIR / "extraction_metrics.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(scrub(snapshot), fh, indent=1, sort_keys=True)
        fh.write("\n")

"""Extension bench — SSF vs. the trivially time-aware heuristics.

The paper never asks whether SSF's edge comes from the structure
subgraph or merely from using timestamps at all.  This bench compares
the SSF methods against the extension baselines that inject the same
Eq. 2 decay into classic heuristics (tCN, tRA, tPA), plus temporal NMF
and a spectral embedding, on two datasets with strong temporal signal.
"""

import pytest

from conftest import bench_config, bench_network, write_result
from repro.experiments.methods import EXTENDED_METHODS
from repro.experiments.runner import LinkPredictionExperiment

CORE_METHODS = ("CN", "SSFLR", "SSFNM")
DATASETS = ("co-author", "digg")

_cache: dict = {}


def _run(name: str):
    if name not in _cache:
        experiment = LinkPredictionExperiment(bench_network(name), bench_config())
        methods = CORE_METHODS + EXTENDED_METHODS
        _cache[name] = {m: experiment.run_method(m) for m in methods}
    return _cache[name]


@pytest.mark.parametrize("dataset", DATASETS)
def test_extended_method_comparison(benchmark, dataset):
    results = benchmark.pedantic(_run, args=(dataset,), rounds=1, iterations=1)
    lines = [f"{'method':9s} {'AUC':>7s} {'F1':>7s}   ({dataset})"]
    for name, result in results.items():
        lines.append(f"{name:9s} {result.auc:7.3f} {result.f1:7.3f}")
    write_result(f"extended_methods_{dataset}.txt", "\n".join(lines))

    for result in results.values():
        assert 0.0 <= result.auc <= 1.0


def test_temporal_heuristics_add_signal(benchmark):
    """What the ablation establishes (and honestly, its limits):

    * injecting the Eq. 2 decay into classic heuristics adds real signal
      (tCN beats CN on at least one dataset) — so "uses timestamps" alone
      explains part of SSF's advantage;
    * on the clustered co-author family the trivially-temporal heuristics
      are genuinely competitive with (at reduced benchmark scale, even
      ahead of) SSF — the paper's framing that no simple feature family
      is universal cuts both ways;
    * on the hub-drift reply network (digg) the SSF models stay ahead of
      every trivially-temporal heuristic.
    """
    all_results = benchmark.pedantic(
        lambda: {name: _run(name) for name in DATASETS},
        rounds=1, iterations=1,
    )
    improvements = 0
    ssf_wins = 0
    for name in DATASETS:
        results = all_results[name]
        if results["tCN"].auc > results["CN"].auc:
            improvements += 1
        best_trivial = max(results[m].auc for m in ("tCN", "tRA", "tPA"))
        best_ssf = max(results[m].auc for m in ("SSFLR", "SSFNM"))
        if best_ssf >= best_trivial:
            ssf_wins += 1
        assert best_ssf >= best_trivial - 0.15, name
    assert improvements >= 1
    assert ssf_wins >= 1

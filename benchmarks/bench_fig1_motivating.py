"""Fig. 1 — the motivating celebrity/fan example.

Scores the two target links (A–B between celebrities, X–Y between common
fans) with every heuristic from Fig. 1(b) and with SSF, and checks the
figure's narrative: the heuristics tie or mis-rank, SSF separates.
"""

from conftest import write_result
from repro.experiments.motivating import (
    TARGET_CELEBRITY,
    TARGET_FANS,
    build_celebrity_network,
    format_motivating_table,
    motivating_comparison,
)


def test_fig1_motivating_example(benchmark):
    comparison = benchmark.pedantic(
        motivating_comparison, kwargs={"k": 6}, rounds=1, iterations=1
    )
    write_result("fig1.txt", format_motivating_table(comparison))

    heuristics = comparison["heuristics"]
    # CN/AA/RA/rWRA identical for both pairs (the figure's tie)
    for name in ("CN", "AA", "RA", "rWRA"):
        ab, xy = heuristics[name]
        assert abs(ab - xy) < 1e-12, name
    # PA prefers the celebrity pair, Jaccard mis-ranks toward the fans
    assert heuristics["PA"][0] > heuristics["PA"][1]
    assert heuristics["Jac."][1] > heuristics["Jac."][0]
    # SSF separates
    assert comparison["ssf_distinguishes"]


def test_fig1_network_construction(benchmark):
    network = benchmark.pedantic(build_celebrity_network, rounds=1, iterations=1)
    a, b = TARGET_CELEBRITY
    x, y = TARGET_FANS
    # both targets share exactly the common neighbour C
    static = network.static_projection()
    assert static.common_neighbors(a, b) == {"C"}
    assert static.common_neighbors(x, y) == {"C"}

"""Table II — dataset statistics.

Generates every synthetic stand-in dataset at FULL scale and reports the
|V| / |E| / average-degree / time-span rows next to the paper's values.
"""

from conftest import write_result
from repro.datasets.catalog import DATASETS, dataset_statistics
from repro.experiments.tables import format_table2


def _generate_all():
    return {
        name: dataset_statistics(spec.generate(seed=0), spec.span)
        for name, spec in DATASETS.items()
    }


def test_table2_dataset_statistics(benchmark):
    rows = benchmark.pedantic(_generate_all, rounds=1, iterations=1)
    text = format_table2(rows)
    lines = [text, "", "paper values:"]
    for name, spec in DATASETS.items():
        lines.append(
            f"  {name:10s} |V|={spec.n_nodes} |E|={spec.n_links} "
            f"avg={spec.paper_average_degree:.2f} span={spec.span}"
        )
    write_result("table2.txt", "\n".join(lines))

    for name, spec in DATASETS.items():
        stats = rows[name]
        # link counts and time spans are pinned exactly; node counts may
        # drop slightly (nodes that never received a link).
        assert stats["links"] == spec.n_links
        assert stats["time_span"] == spec.span
        assert stats["nodes"] <= spec.n_nodes
        assert stats["nodes"] >= 0.8 * spec.n_nodes
        assert stats["avg_degree"] >= spec.paper_average_degree

"""Extension bench — hard (two-hop) negative sampling.

Link-prediction evaluations are sensitive to how fake links are drawn;
uniform negatives are mostly trivial.  This bench re-runs a method subset
with negatives that *share a neighbour* in the observed history and
checks the expected effects: common-neighbour heuristics lose most of
their margin, while the subgraph features retain a useful one.
"""

from conftest import bench_config, bench_network, write_result
from repro.experiments.runner import LinkPredictionExperiment
from repro.sampling.splits import build_link_prediction_task

METHODS = ("CN", "AA", "Katz", "SSFLR", "SSFNM")

_cache: dict = {}


def _run(strategy: str):
    if strategy not in _cache:
        config = bench_config()
        network = bench_network("co-author")
        task = build_link_prediction_task(
            network,
            negative_strategy=strategy,
            max_positives=config.max_positives,
            seed=0,
        )
        experiment = LinkPredictionExperiment(task.history, config, task=task)
        _cache[strategy] = {m: experiment.run_method(m) for m in METHODS}
    return _cache[strategy]


def test_hard_negative_evaluation(benchmark):
    hard = benchmark.pedantic(_run, args=("two_hop",), rounds=1, iterations=1)
    easy = _run("no_history")

    lines = [f"{'method':8s} {'easy-AUC':>9s} {'hard-AUC':>9s}"]
    for m in METHODS:
        lines.append(f"{m:8s} {easy[m].auc:9.3f} {hard[m].auc:9.3f}")
    write_result("hard_negatives.txt", "\n".join(lines))

    # CN loses most of its edge against structure-sharing negatives
    assert hard["CN"].auc < easy["CN"].auc - 0.1
    # the subgraph feature keeps a margin over chance
    assert max(hard["SSFLR"].auc, hard["SSFNM"].auc) > 0.55

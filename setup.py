"""Setuptools shim.

This offline environment lacks the `wheel` package, so `pip install -e .`
(PEP 660) cannot build editable wheels; `python setup.py develop` installs
the same editable package without it.  All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()

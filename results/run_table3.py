"""Full Table III run used to fill EXPERIMENTS.md (also run by the bench)."""
import json, time
from repro.experiments import ExperimentConfig, run_table3
from repro.experiments.tables import format_table3

t0 = time.time()
config = ExperimentConfig(epochs=120, max_positives=300, seed=0)
results = run_table3(config=config, seed=0)
print(format_table3(results))
payload = {
    d: {m: {"auc": r.auc, "f1": r.f1} for m, r in methods.items()}
    for d, methods in results.items()
}
with open("/root/repo/results/table3.json", "w") as fh:
    json.dump(payload, fh, indent=1)
print(f"\ntotal {time.time()-t0:.0f}s")

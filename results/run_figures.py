"""Full-scale Fig. 6 / Fig. 7 drivers used to fill EXPERIMENTS.md."""
import time
from repro.datasets import get_dataset
from repro.experiments import ExperimentConfig, k_sweep
from repro.experiments.figures import format_k_sweep, mine_frequent_pattern

t0 = time.time()
config = ExperimentConfig(epochs=120, max_positives=300, seed=0)

for name in ("eu-email", "contact", "facebook", "co-author", "prosper", "slashdot", "digg"):
    net = get_dataset(name).generate(seed=0)
    sweep = k_sweep(net, config=config, method="SSFNM")
    print(format_k_sweep(sweep, dataset=name))
    print()

for name in ("facebook", "co-author"):
    net = get_dataset(name).generate(seed=0)
    stats, text = mine_frequent_pattern(net, n_samples=2000, k=10, seed=0)
    print(f"=== fig6 {name} ===")
    print(text)
    print()

print(f"total {time.time()-t0:.0f}s")

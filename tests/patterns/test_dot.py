"""Tests for the DOT exports."""

import pytest

from repro.core.feature import SSFConfig, SSFExtractor
from repro.patterns import k_structure_to_dot, pattern_to_dot
from repro.patterns.mining import PatternStatistics, canonical_pattern


class TestKStructureToDot:
    def test_structure(self, fig3_network):
        ks = SSFExtractor(fig3_network, SSFConfig(k=5)).k_structure_subgraph(
            "A", "B"
        )
        dot = k_structure_to_dot(ks)
        assert dot.startswith("graph kstructure {")
        assert dot.rstrip().endswith("}")
        assert "n1 -- n2 [style=dashed" in dot
        # all 5 structure nodes declared
        for order in range(1, 6):
            assert f"n{order} [label=" in dot

    def test_edge_counts_labelled(self, fig3_network):
        ks = SSFExtractor(fig3_network, SSFConfig(k=5)).k_structure_subgraph(
            "A", "B"
        )
        dot = k_structure_to_dot(ks)
        assert 'label="3"' in dot  # the {G,H,I}-A structure link


class TestPatternToDot:
    def test_structure(self, fig3_network):
        ks = SSFExtractor(fig3_network, SSFConfig(k=5)).k_structure_subgraph(
            "A", "B"
        )
        stats = PatternStatistics(pattern=canonical_pattern(ks))
        stats.add(ks)
        dot = pattern_to_dot(stats, k=5)
        assert dot.startswith("graph pattern {")
        assert "penwidth=" in dot
        assert "n1 -- n2 [style=dashed" in dot

    def test_k_validation(self):
        with pytest.raises(ValueError):
            pattern_to_dot(PatternStatistics(pattern=frozenset()), k=1)

"""Tests for K-structure-subgraph pattern mining (Fig. 6)."""

import pytest

from repro.core.feature import SSFConfig, SSFExtractor
from repro.patterns.mining import (
    PatternStatistics,
    canonical_pattern,
    mine_patterns,
    most_frequent_pattern,
)


class TestCanonicalPattern:
    def test_excludes_target_pair(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        ks = ext.k_structure_subgraph("A", "B")
        pattern = canonical_pattern(ks)
        assert (1, 2) not in pattern

    def test_matches_structure_links(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        ks = ext.k_structure_subgraph("A", "B")
        pattern = canonical_pattern(ks)
        for m, n in pattern:
            assert ks.has_link(m, n)

    def test_same_topology_same_pattern(self):
        from repro.graph.temporal import DynamicNetwork

        g1 = DynamicNetwork([("a", "c", 1), ("b", "c", 2)])
        g2 = DynamicNetwork([("x", "z", 5), ("y", "z", 9), ("x", "z", 6)])
        p1 = canonical_pattern(
            SSFExtractor(g1, SSFConfig(k=3)).k_structure_subgraph("a", "b")
        )
        p2 = canonical_pattern(
            SSFExtractor(g2, SSFConfig(k=3)).k_structure_subgraph("x", "y")
        )
        assert p1 == p2  # multi-links and timestamps are ignored


class TestPatternStatistics:
    def test_accumulates(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        ks = ext.k_structure_subgraph("A", "B")
        stats = PatternStatistics(pattern=canonical_pattern(ks))
        stats.add(ks)
        stats.add(ks)
        assert stats.count == 2
        m, n = next(iter(stats.pattern))
        assert stats.average_link_multiplicity(m, n) == ks.link_count(m, n)
        assert stats.average_node_size(1) == 1.0

    def test_empty_statistics(self):
        stats = PatternStatistics(pattern=frozenset())
        assert stats.average_link_multiplicity(1, 3) == 0.0
        assert stats.average_node_size(1) == 0.0


class TestMinePatterns:
    def test_counts_sum_to_samples(self, small_dataset):
        stats = mine_patterns(small_dataset, n_samples=50, k=6, seed=0)
        assert sum(s.count for s in stats.values()) == 50

    def test_patterns_keyed_consistently(self, small_dataset):
        stats = mine_patterns(small_dataset, n_samples=30, k=6, seed=0)
        for pattern, entry in stats.items():
            assert entry.pattern == pattern

    def test_most_frequent(self, small_dataset):
        stats = mine_patterns(small_dataset, n_samples=50, k=6, seed=0)
        top = most_frequent_pattern(stats)
        assert top.count == max(s.count for s in stats.values())

    def test_deterministic(self, small_dataset):
        s1 = mine_patterns(small_dataset, n_samples=30, k=6, seed=1)
        s2 = mine_patterns(small_dataset, n_samples=30, k=6, seed=1)
        assert {p: s.count for p, s in s1.items()} == {
            p: s.count for p, s in s2.items()
        }

    def test_fewer_pairs_than_samples(self, fig3_network):
        stats = mine_patterns(fig3_network, n_samples=10_000, k=5, seed=0)
        assert sum(s.count for s in stats.values()) == fig3_network.number_of_pairs()

    def test_validation(self, fig3_network):
        from repro.graph.temporal import DynamicNetwork

        with pytest.raises(ValueError):
            mine_patterns(fig3_network, n_samples=0)
        with pytest.raises(ValueError):
            mine_patterns(DynamicNetwork(), n_samples=5)
        with pytest.raises(ValueError):
            most_frequent_pattern({})

"""Tests for the text pattern renderer."""

import pytest

from repro.patterns.mining import PatternStatistics, canonical_pattern, mine_patterns
from repro.patterns.render import render_pattern


class TestRenderPattern:
    def test_renders_grid(self, small_dataset):
        stats = mine_patterns(small_dataset, n_samples=20, k=6, seed=0)
        top = max(stats.values(), key=lambda s: s.count)
        text = render_pattern(top, k=6)
        assert "pattern frequency" in text
        assert "*" in text  # the target-link cell
        lines = text.splitlines()
        assert any(line.startswith(" 1 |") for line in lines)

    def test_marks_connections(self):
        stats = PatternStatistics(pattern=frozenset({(1, 3), (2, 3)}))
        stats.count = 1
        stats.link_mass = {(1, 3): 4, (2, 3): 2}
        stats.node_mass = {1: 1, 2: 1, 3: 3}
        text = render_pattern(stats, k=3)
        assert text.count("#") == 4  # two symmetric pairs
        assert "( 1, 3):   4.00" in text

    def test_k_validation(self):
        with pytest.raises(ValueError):
            render_pattern(PatternStatistics(pattern=frozenset()), k=1)

"""Shared fixtures: small hand-analysable networks used across the suite."""

from __future__ import annotations

import pytest

from repro.graph.temporal import DynamicNetwork


@pytest.fixture
def fig3_network() -> DynamicNetwork:
    """The paper's Fig. 3 example around target link A–B.

    A has leaf fans G, H, I (same structure -> one structure node),
    B has leaf fans D, E, and C is the common neighbour (with its own
    extra neighbour F at distance 2).
    """
    return DynamicNetwork(
        [
            ("A", "G", 1),
            ("A", "H", 2),
            ("A", "I", 3),
            ("A", "C", 4),
            ("B", "C", 5),
            ("B", "D", 6),
            ("B", "E", 7),
            ("C", "F", 8),
        ]
    )


@pytest.fixture
def triangle_network() -> DynamicNetwork:
    """Three nodes, a multi-link on one pair."""
    return DynamicNetwork([("x", "y", 1), ("y", "z", 2), ("x", "z", 3), ("x", "y", 4)])


@pytest.fixture
def path_network() -> DynamicNetwork:
    """A 6-node path a-b-c-d-e-f with increasing timestamps."""
    return DynamicNetwork(
        [("a", "b", 1), ("b", "c", 2), ("c", "d", 3), ("d", "e", 4), ("e", "f", 5)]
    )


@pytest.fixture
def two_components() -> DynamicNetwork:
    """Two disjoint edges — for unreachable-node paths."""
    return DynamicNetwork([("a", "b", 1), ("c", "d", 2)])


@pytest.fixture
def small_dataset() -> DynamicNetwork:
    """A small but non-trivial generated network for pipeline tests."""
    from repro.datasets.synthetic import EventModelConfig, generate_event_network

    config = EventModelConfig(
        n_nodes=60,
        n_links=600,
        span=20,
        repeat_prob=0.3,
        closure_prob=0.25,
        pa_prob=0.25,
        final_fraction=0.1,
    )
    return generate_event_network(config, seed=7)

"""Tests for the temporal event-model generator."""

import numpy as np
import pytest

from repro.datasets.synthetic import EventModelConfig, generate_event_network


def _config(**overrides):
    base = dict(n_nodes=50, n_links=400, span=20)
    base.update(overrides)
    return EventModelConfig(**base)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_nodes": 2},
            {"n_links": 0},
            {"span": 1},
            {"repeat_prob": 1.1},
            {"repeat_prob": 0.6, "closure_prob": 0.5},
            {"activity_exponent": -1},
            {"community_count": -1},
            {"community_bias": 2.0},
            {"final_fraction": 1.0},
            {"recency_bias": -0.1},
            {"recency_window": 0},
            {"group_event_prob": 1.5},
            {"group_size": 2},
            {"bipartite_fraction": 1.0},
            {"bipartite_fraction": 0.3, "closure_prob": 0.1},
            {"bipartite_fraction": 0.3, "closure_prob": 0.0, "group_event_prob": 0.5},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            _config(**kwargs)


class TestGeneration:
    def test_exact_link_count(self):
        net = generate_event_network(_config(), seed=0)
        assert net.number_of_links() == 400

    def test_deterministic(self):
        a = generate_event_network(_config(), seed=3)
        b = generate_event_network(_config(), seed=3)
        assert a == b

    def test_seeds_differ(self):
        a = generate_event_network(_config(), seed=1)
        b = generate_event_network(_config(), seed=2)
        assert a != b

    def test_timestamps_within_span(self):
        net = generate_event_network(_config(span=15), seed=0)
        assert net.first_timestamp() >= 1
        assert net.last_timestamp() == 15

    def test_final_fraction_mass(self):
        net = generate_event_network(_config(final_fraction=0.2), seed=0)
        at_final = sum(1 for _, _, ts in net.edges() if ts == 20)
        assert at_final == pytest.approx(0.2 * 400, abs=2)

    def test_no_self_loops(self):
        net = generate_event_network(_config(), seed=0)
        assert all(u != v for u, v, _ in net.edges())

    def test_repeats_create_multilinks(self):
        net = generate_event_network(
            _config(repeat_prob=0.9, closure_prob=0.0, pa_prob=0.05), seed=0
        )
        assert net.number_of_links() > net.number_of_pairs()

    def test_closure_creates_triangles(self):
        closed = generate_event_network(
            _config(repeat_prob=0.0, closure_prob=0.6, pa_prob=0.1), seed=0
        )
        open_ = generate_event_network(
            _config(repeat_prob=0.0, closure_prob=0.0, pa_prob=0.1), seed=0
        )
        assert _triangle_count(closed) > _triangle_count(open_)

    def test_pa_skews_degrees(self):
        hubby = generate_event_network(
            _config(repeat_prob=0.0, closure_prob=0.0, pa_prob=0.9,
                    activity_exponent=0.0),
            seed=0,
        )
        flat = generate_event_network(
            _config(repeat_prob=0.0, closure_prob=0.0, pa_prob=0.0,
                    activity_exponent=0.0),
            seed=0,
        )
        assert _max_degree(hubby) > _max_degree(flat)

    def test_bipartite_has_no_odd_structure(self):
        net = generate_event_network(
            _config(bipartite_fraction=0.4, closure_prob=0.0,
                    group_event_prob=0.0),
            seed=0,
        )
        assert _triangle_count(net) == 0

    def test_group_events_create_cliques(self):
        # a sparse regime, so incidental random triangles are rare
        sparse = dict(
            n_nodes=300, n_links=500, repeat_prob=0.1, closure_prob=0.0,
            pa_prob=0.1,
        )
        grouped = generate_event_network(
            _config(group_event_prob=0.6, **sparse), seed=0
        )
        plain = generate_event_network(_config(**sparse), seed=0)
        assert _triangle_count(grouped) > _triangle_count(plain)

    def test_communities_localise_links(self):
        # with strong communities, modular structure appears: a random
        # node's neighbours share community assignment more often.
        net = generate_event_network(
            _config(
                n_nodes=100,
                n_links=800,
                repeat_prob=0.0,
                closure_prob=0.0,
                pa_prob=0.0,
                community_count=5,
                community_bias=1.0,
            ),
            seed=0,
        )
        # 5 communities at bias 1.0 -> graph splits into >= 2 components
        # of community-local links far denser than random (20 per comm).
        static = net.static_projection()
        components = set()
        for node in static.nodes:
            components.add(frozenset(static.connected_component(node)))
        assert len(components) >= 2


def _triangle_count(net) -> int:
    g = net.static_projection()
    total = 0
    for u in g.nodes:
        nbrs = list(g.neighbor_view(u))
        for i in range(len(nbrs)):
            for j in range(i + 1, len(nbrs)):
                if g.has_edge(nbrs[i], nbrs[j]):
                    total += 1
    return total // 3


def _max_degree(net) -> int:
    return max(net.simple_degree(n) for n in net.nodes)

"""Tests for the named dataset catalog (Table II calibration)."""

import pytest

from repro.datasets.catalog import DATASETS, dataset_statistics, get_dataset
from repro.graph.temporal import DynamicNetwork


class TestCatalog:
    def test_seven_datasets(self):
        assert len(DATASETS) == 7
        assert set(DATASETS) == {
            "eu-email",
            "contact",
            "facebook",
            "co-author",
            "prosper",
            "slashdot",
            "digg",
        }

    def test_get_dataset_case_insensitive(self):
        assert get_dataset("Co-Author").name == "co-author"

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_dataset("bogus")

    def test_table2_statistics_pinned(self):
        expected = {
            "eu-email": (309, 61046, 803),
            "contact": (274, 28245, 96),
            "facebook": (4313, 42346, 366),
            "co-author": (744, 7034, 20),
            "prosper": (1264, 8874, 60),
            "slashdot": (2680, 9904, 240),
            "digg": (3215, 9618, 240),
        }
        for name, (nodes, links, span) in expected.items():
            spec = DATASETS[name]
            assert (spec.n_nodes, spec.n_links, spec.span) == (nodes, links, span)

    def test_paper_average_degree(self):
        spec = get_dataset("co-author")
        assert spec.paper_average_degree == pytest.approx(18.91, abs=0.01)


class TestGeneration:
    def test_scaled_generation_matches_config(self):
        spec = get_dataset("co-author")
        net = spec.generate(seed=0, scale=0.2)
        assert net.number_of_links() == spec.config(0.2).n_links
        assert net.last_timestamp() == spec.span

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            get_dataset("digg").config(scale=0.0)
        with pytest.raises(ValueError):
            get_dataset("digg").config(scale=1.5)

    def test_generation_deterministic(self):
        spec = get_dataset("slashdot")
        assert spec.generate(seed=5, scale=0.1) == spec.generate(seed=5, scale=0.1)

    def test_full_scale_link_counts(self):
        # cheap datasets only; the full sweep lives in the benchmarks
        for name in ("co-author", "prosper"):
            spec = get_dataset(name)
            net = spec.generate(seed=0)
            assert net.number_of_links() == spec.n_links
            assert net.number_of_nodes() <= spec.n_nodes


class TestStatistics:
    def test_statistics_keys(self):
        net = get_dataset("co-author").generate(seed=0, scale=0.1)
        stats = dataset_statistics(net, 20)
        assert set(stats) == {"nodes", "links", "pairs", "avg_degree", "time_span"}
        assert stats["time_span"] == 20

    def test_statistics_empty_network(self):
        stats = dataset_statistics(DynamicNetwork())
        assert stats["nodes"] == 0
        assert stats["time_span"] == 0

"""Tests for file loading and timestamp normalisation."""

import pytest

from repro.datasets.loaders import load_dataset_file, normalize_timestamps
from repro.graph.temporal import DynamicNetwork


class TestNormalizeTimestamps:
    def test_maps_to_grid(self):
        g = DynamicNetwork([("a", "b", 1000), ("b", "c", 2000), ("c", "d", 3000)])
        out = normalize_timestamps(g, span=5)
        assert out.timestamps("a", "b") == (1.0,)
        assert out.timestamps("c", "d") == (5.0,)
        assert out.timestamps("b", "c") == (3.0,)

    def test_constant_timestamps(self):
        g = DynamicNetwork([("a", "b", 7), ("b", "c", 7)])
        out = normalize_timestamps(g, span=10)
        assert out.timestamp_set() == {10.0}

    def test_preserves_multiplicity(self):
        g = DynamicNetwork([("a", "b", 10), ("a", "b", 20)])
        out = normalize_timestamps(g, span=3)
        assert out.multiplicity("a", "b") == 2

    def test_empty_network(self):
        out = normalize_timestamps(DynamicNetwork(), span=5)
        assert out.number_of_links() == 0

    def test_bad_span(self):
        with pytest.raises(ValueError):
            normalize_timestamps(DynamicNetwork(), span=0)


class TestLoadDatasetFile:
    def test_load_with_normalisation(self, tmp_path):
        path = tmp_path / "net.tsv"
        path.write_text("a b 1000000\nb c 1500000\nc d 2000000\n")
        net = load_dataset_file(path, span=10)
        assert net.first_timestamp() == 1.0
        assert net.last_timestamp() == 10.0

    def test_load_raw(self, tmp_path):
        path = tmp_path / "net.tsv"
        path.write_text("a b 5\n")
        net = load_dataset_file(path)
        assert net.timestamps("a", "b") == (5.0,)

    def test_konect_file(self, tmp_path):
        path = tmp_path / "out.loans"
        path.write_text("% directed\n1 2 1 100\n3 4 -1 200\n")
        net = load_dataset_file(path, span=4)
        assert net.number_of_links() == 2

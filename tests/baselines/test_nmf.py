"""Tests for the NMF factorisation and link predictor."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.baselines.nmf import NMFLinkPredictor, nmf_factorize
from repro.graph.temporal import DynamicNetwork


def _low_rank_matrix(n=20, r=3, seed=0):
    rng = np.random.default_rng(seed)
    w = rng.random((n, r))
    h = rng.random((n, r))
    return w @ h.T


class TestFactorize:
    @pytest.mark.parametrize("method", ["pg", "mu"])
    def test_reconstructs_low_rank(self, method):
        a = _low_rank_matrix()
        w, h = nmf_factorize(a, rank=3, method=method, max_iter=300, tol=1e-10)
        err = np.linalg.norm(a - w @ h.T) / np.linalg.norm(a)
        assert err < 0.05

    @pytest.mark.parametrize("method", ["pg", "mu"])
    def test_factors_nonnegative(self, method):
        a = _low_rank_matrix()
        w, h = nmf_factorize(a, rank=3, method=method, max_iter=50)
        assert (w >= 0).all()
        assert (h >= 0).all()

    def test_sparse_input(self):
        a = sp.random(30, 30, density=0.2, random_state=0)
        a = a + a.T
        w, h = nmf_factorize(a, rank=5, max_iter=30)
        assert w.shape == (30, 5)
        assert h.shape == (30, 5)

    def test_deterministic_given_seed(self):
        a = _low_rank_matrix()
        w1, h1 = nmf_factorize(a, rank=3, max_iter=10, seed=1)
        w2, h2 = nmf_factorize(a, rank=3, max_iter=10, seed=1)
        assert np.allclose(w1, w2)
        assert np.allclose(h1, h2)

    def test_negative_matrix_rejected(self):
        with pytest.raises(ValueError):
            nmf_factorize(np.array([[-1.0, 0.0], [0.0, 1.0]]), rank=1)

    def test_bad_rank_rejected(self):
        with pytest.raises(ValueError):
            nmf_factorize(np.eye(3), rank=0)

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError):
            nmf_factorize(np.eye(3), rank=1, method="bogus")

    def test_objective_decreases_mu(self):
        from repro.baselines.nmf import _multiplicative_step, _objective

        a = sp.csr_matrix(_low_rank_matrix())
        rng = np.random.default_rng(0)
        w, h = rng.random((20, 3)) + 0.1, rng.random((20, 3)) + 0.1
        losses = []
        for _ in range(10):
            losses.append(_objective(a, w, h))
            w, h = _multiplicative_step(a, w, h)
        assert losses == sorted(losses, reverse=True)


class TestNMFLinkPredictor:
    def test_predicts_structure(self):
        # two dense blocks; within-block pairs should outscore cross-block
        g = DynamicNetwork()
        block_a = [f"a{i}" for i in range(6)]
        block_b = [f"b{i}" for i in range(6)]
        ts = 1
        for block in (block_a, block_b):
            for i, u in enumerate(block):
                for j, v in enumerate(block[i + 1 :], start=i + 1):
                    if (i + j) % 4 != 0:  # drop a few to leave holes
                        g.add_edge(u, v, ts)
                        ts += 1
        scorer = NMFLinkPredictor(rank=4, max_iter=60).fit(g)
        within = scorer.score("a0", "a1")
        across = scorer.score("a0", "b1")
        assert within > across

    def test_unknown_node(self):
        g = DynamicNetwork([("a", "b", 1)])
        assert NMFLinkPredictor(rank=2).fit(g).score("a", "ghost") == 0.0

    def test_rank_capped_to_graph_size(self):
        g = DynamicNetwork([("a", "b", 1), ("b", "c", 2)])
        scorer = NMFLinkPredictor(rank=100, max_iter=5).fit(g)
        assert scorer._w.shape[1] <= 2

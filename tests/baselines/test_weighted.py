"""Tests for rWRA (reliable weighted resource allocation)."""

import pytest

from repro.baselines.weighted import ReliableWeightedResourceAllocation
from repro.graph.temporal import DynamicNetwork


class TestRWRA:
    def test_single_links_match_definition(self):
        g = DynamicNetwork([("u", "z", 1), ("v", "z", 2), ("z", "w", 3)])
        scorer = ReliableWeightedResourceAllocation().fit(g)
        # W(u,z)=W(v,z)=1, S(z)=3
        assert scorer.score("u", "v") == pytest.approx(1 / 3)

    def test_multi_links_increase_score(self):
        base = DynamicNetwork([("u", "z", 1), ("v", "z", 2)])
        multi = base.copy()
        multi.add_edge("u", "z", 5)
        s_base = ReliableWeightedResourceAllocation().fit(base).score("u", "v")
        s_multi = ReliableWeightedResourceAllocation().fit(multi).score("u", "v")
        # numerator doubles (W(u,z)=2) but S(z) grows 2->3
        assert s_multi == pytest.approx(2 / 3)
        assert s_base == pytest.approx(1 / 2)
        assert s_multi > s_base

    def test_no_common_neighbours(self):
        g = DynamicNetwork([("u", "x", 1), ("v", "y", 2)])
        assert ReliableWeightedResourceAllocation().fit(g).score("u", "v") == 0.0

    def test_unknown_nodes(self):
        g = DynamicNetwork([("u", "z", 1)])
        assert ReliableWeightedResourceAllocation().fit(g).score("u", "nope") == 0.0

    def test_dynamic_aware_vs_cn(self):
        """rWRA uses multiplicity, unlike CN (Table I's 'dynamic' flag)."""
        from repro.baselines.local import CommonNeighbors

        g1 = DynamicNetwork([("u", "z", 1), ("v", "z", 2)])
        g2 = DynamicNetwork([("u", "z", 1), ("u", "z", 2), ("v", "z", 3)])
        cn1 = CommonNeighbors().fit(g1).score("u", "v")
        cn2 = CommonNeighbors().fit(g2).score("u", "v")
        assert cn1 == cn2
        r1 = ReliableWeightedResourceAllocation().fit(g1).score("u", "v")
        r2 = ReliableWeightedResourceAllocation().fit(g2).score("u", "v")
        assert r1 != r2

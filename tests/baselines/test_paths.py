"""Tests for Katz and Local Path scorers."""

import numpy as np
import pytest

from repro.baselines.paths import Katz, LocalPath
from repro.graph.temporal import DynamicNetwork


@pytest.fixture
def kite() -> DynamicNetwork:
    """u-z-v plus a longer path u-p-q-v."""
    return DynamicNetwork(
        [("u", "z", 1), ("z", "v", 2), ("u", "p", 3), ("p", "q", 4), ("q", "v", 5)]
    )


class TestKatz:
    def test_counts_weighted_walks(self, kite):
        scorer = Katz(beta=0.1, max_length=3).fit(kite)
        # one 2-walk (u-z-v) and one 3-walk (u-p-q-v)
        expected = 0.1**2 * 1 + 0.1**3 * 1
        assert scorer.score("u", "v") == pytest.approx(expected)

    def test_direct_edge_dominates(self, kite):
        scorer = Katz(beta=0.01).fit(kite)
        assert scorer.score("u", "z") > scorer.score("u", "v")

    def test_symmetric(self, kite):
        scorer = Katz().fit(kite)
        assert scorer.score("u", "v") == pytest.approx(scorer.score("v", "u"))

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            Katz(beta=0.0)
        with pytest.raises(ValueError):
            Katz(beta=1.0)

    def test_max_length_validation(self):
        with pytest.raises(ValueError):
            Katz(max_length=1)

    def test_walk_cache_reused(self, kite):
        scorer = Katz().fit(kite)
        scorer.score("u", "v")
        counts = scorer._walk_cache["u"]
        scorer.score("u", "z")
        assert scorer._walk_cache["u"] is counts

    def test_unknown_node(self, kite):
        assert Katz().fit(kite).score("u", "ghost") == 0.0

    def test_longer_truncation_monotone(self, kite):
        short = Katz(beta=0.1, max_length=2).fit(kite).score("u", "v")
        long = Katz(beta=0.1, max_length=5).fit(kite).score("u", "v")
        assert long >= short


class TestLocalPath:
    def test_two_and_three_paths(self, kite):
        scorer = LocalPath(epsilon=0.5).fit(kite)
        assert scorer.score("u", "v") == pytest.approx(1 + 0.5 * 1)

    def test_reduces_to_cn_when_epsilon_zero(self, kite):
        scorer = LocalPath(epsilon=0.0).fit(kite)
        assert scorer.score("u", "v") == pytest.approx(1.0)  # (A^2)_{uv}

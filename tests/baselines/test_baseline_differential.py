"""Differential tests: every heuristic baseline against a brute-force
dense-numpy reference implementation on random graphs.

The library scorers use neighbour sets, cached sparse matvecs and lazy
strength sums; the references below recompute each definition directly
from a dense adjacency matrix.  Agreement on random multigraphs verifies
the optimised paths implement exactly the Table I formulas.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines import (
    AdamicAdar,
    CommonNeighbors,
    Jaccard,
    Katz,
    LocalRandomWalk,
    PreferentialAttachment,
    ReliableWeightedResourceAllocation,
    ResourceAllocation,
)
from repro.graph.temporal import DynamicNetwork


def _random_network(seed: int, n=18, edges=60) -> DynamicNetwork:
    rng = np.random.default_rng(seed)
    g = DynamicNetwork()
    for node in range(n):
        g.add_node(node)
    for _ in range(edges):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), float(rng.integers(1, 9)))
    return g


def _dense(network):
    """(binary adjacency, weight matrix, node->index) from a network."""
    index = {node: i for i, node in enumerate(network.nodes)}
    n = len(index)
    binary = np.zeros((n, n))
    weights = np.zeros((n, n))
    for u, v in network.pair_iter():
        i, j = index[u], index[v]
        binary[i, j] = binary[j, i] = 1.0
        weights[i, j] = weights[j, i] = network.multiplicity(u, v)
    return binary, weights, index


def _sample_pairs(network, seed, count=25):
    rng = np.random.default_rng(seed + 1000)
    nodes = network.nodes
    pairs = []
    while len(pairs) < count:
        i, j = rng.integers(0, len(nodes), size=2)
        if i != j:
            pairs.append((nodes[int(i)], nodes[int(j)]))
    return pairs


@pytest.mark.parametrize("seed", range(5))
class TestAgainstDenseReference:
    def test_common_neighbors(self, seed):
        net = _random_network(seed)
        a, _, index = _dense(net)
        scorer = CommonNeighbors().fit(net)
        squared = a @ a
        for u, v in _sample_pairs(net, seed):
            assert scorer.score(u, v) == squared[index[u], index[v]]

    def test_jaccard(self, seed):
        net = _random_network(seed)
        a, _, index = _dense(net)
        scorer = Jaccard().fit(net)
        for u, v in _sample_pairs(net, seed):
            i, j = index[u], index[v]
            inter = float(a[i] @ a[j])
            union = float(np.count_nonzero(a[i] + a[j]))
            expected = inter / union if union else 0.0
            assert scorer.score(u, v) == pytest.approx(expected)

    def test_preferential_attachment(self, seed):
        net = _random_network(seed)
        a, _, index = _dense(net)
        scorer = PreferentialAttachment().fit(net)
        degrees = a.sum(axis=1)
        for u, v in _sample_pairs(net, seed):
            assert scorer.score(u, v) == degrees[index[u]] * degrees[index[v]]

    def test_adamic_adar(self, seed):
        net = _random_network(seed)
        a, _, index = _dense(net)
        scorer = AdamicAdar().fit(net)
        degrees = a.sum(axis=1)
        for u, v in _sample_pairs(net, seed):
            i, j = index[u], index[v]
            expected = sum(
                1.0 / math.log(degrees[z])
                for z in np.flatnonzero(a[i] * a[j])
                if degrees[z] > 1
            )
            assert scorer.score(u, v) == pytest.approx(expected)

    def test_resource_allocation(self, seed):
        net = _random_network(seed)
        a, _, index = _dense(net)
        scorer = ResourceAllocation().fit(net)
        degrees = a.sum(axis=1)
        for u, v in _sample_pairs(net, seed):
            i, j = index[u], index[v]
            expected = sum(
                1.0 / degrees[z] for z in np.flatnonzero(a[i] * a[j])
            )
            assert scorer.score(u, v) == pytest.approx(expected)

    def test_rwra(self, seed):
        net = _random_network(seed)
        a, w, index = _dense(net)
        scorer = ReliableWeightedResourceAllocation().fit(net)
        strength = w.sum(axis=1)
        for u, v in _sample_pairs(net, seed):
            i, j = index[u], index[v]
            expected = sum(
                w[i, z] * w[j, z] / strength[z]
                for z in np.flatnonzero(a[i] * a[j])
                if strength[z] > 0
            )
            assert scorer.score(u, v) == pytest.approx(expected)

    def test_katz(self, seed):
        net = _random_network(seed)
        a, _, index = _dense(net)
        beta, length = 0.05, 4
        scorer = Katz(beta=beta, max_length=length).fit(net)
        total = np.zeros_like(a)
        power = np.eye(len(a))
        for step in range(1, length + 1):
            power = power @ a
            total += beta**step * power
        for u, v in _sample_pairs(net, seed):
            assert scorer.score(u, v) == pytest.approx(
                total[index[u], index[v]]
            )

    def test_local_random_walk(self, seed):
        net = _random_network(seed)
        a, _, index = _dense(net)
        steps = 3
        scorer = LocalRandomWalk(steps=steps).fit(net)
        degrees = a.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            transition = np.where(degrees[:, None] > 0, a / degrees[:, None], 0.0)
        walk = np.linalg.matrix_power(transition, steps)
        total_degree = degrees.sum()
        for u, v in _sample_pairs(net, seed):
            i, j = index[u], index[v]
            q_u = degrees[i] / total_degree
            q_v = degrees[j] / total_degree
            expected = q_u * walk[i, j] + q_v * walk[j, i]
            assert scorer.score(u, v) == pytest.approx(expected)

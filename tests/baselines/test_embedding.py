"""Tests for the TemporalNMF and SpectralEmbedding scorers."""

import pytest

from repro.baselines.embedding import SpectralEmbedding, TemporalNMF
from repro.graph.temporal import DynamicNetwork


def _two_blocks(with_recency=False) -> DynamicNetwork:
    """Two dense 6-node blocks; optionally one block is recent."""
    g = DynamicNetwork()
    ts_a = 9 if with_recency else 1
    for block, base_ts in (("a", ts_a), ("b", 1)):
        nodes = [f"{block}{i}" for i in range(6)]
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                if (i + len(v)) % 4 != 0:  # leave holes to predict
                    g.add_edge(u, v, base_ts)
    return g


class TestTemporalNMF:
    def test_block_structure_recovered(self):
        scorer = TemporalNMF(rank=4, max_iter=60).fit(_two_blocks())
        assert scorer.score("a0", "a1") > scorer.score("a0", "b1")

    def test_recent_block_weighted_up(self):
        g = _two_blocks(with_recency=True)
        scorer = TemporalNMF(rank=4, max_iter=60).fit(g)
        # within-block affinity of the recent block dominates the stale one
        assert scorer.score("a0", "a1") > scorer.score("b0", "b1")

    def test_unknown_nodes(self):
        scorer = TemporalNMF(rank=2).fit(_two_blocks())
        assert scorer.score("a0", "nope") == 0.0

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            TemporalNMF(theta=0.0)


class TestSpectralEmbedding:
    def test_block_structure_recovered(self):
        scorer = SpectralEmbedding(rank=4).fit(_two_blocks())
        assert scorer.score("a0", "a1") > scorer.score("a0", "b1")

    def test_rank_capped(self):
        g = DynamicNetwork([("a", "b", 1), ("b", "c", 2)])
        scorer = SpectralEmbedding(rank=100).fit(g)
        assert scorer._embedding.shape[1] <= 2

    def test_symmetric_scores(self):
        scorer = SpectralEmbedding(rank=4).fit(_two_blocks())
        assert scorer.score("a0", "a1") == pytest.approx(scorer.score("a1", "a0"))

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            SpectralEmbedding(rank=0)

    def test_unknown_nodes(self):
        scorer = SpectralEmbedding(rank=2).fit(_two_blocks())
        assert scorer.score("zzz", "a0") == 0.0

"""Tests for the time-aware heuristic scorers."""

import pytest

from repro.baselines.temporal import (
    RecentActivity,
    TemporalCommonNeighbors,
    TemporalResourceAllocation,
)
from repro.core.influence import normalized_influence
from repro.graph.temporal import DynamicNetwork


@pytest.fixture
def recency_pair() -> DynamicNetwork:
    """u-z-v recent; p-w-q identical but old."""
    return DynamicNetwork(
        [
            ("u", "z", 9),
            ("v", "z", 9),
            ("p", "w", 1),
            ("q", "w", 1),
        ]
    )


class TestTemporalCommonNeighbors:
    def test_recent_beats_old(self, recency_pair):
        scorer = TemporalCommonNeighbors().fit(recency_pair)
        assert scorer.score("u", "v") > scorer.score("p", "q")

    def test_value_matches_definition(self, recency_pair):
        scorer = TemporalCommonNeighbors().fit(recency_pair)
        present = recency_pair.last_timestamp() + 1.0
        expected = min(
            normalized_influence([9], present),
            normalized_influence([9], present),
        )
        assert scorer.score("u", "v") == pytest.approx(expected)

    def test_min_coupling(self):
        # a fresh link on one side cannot compensate a stale other side
        g = DynamicNetwork([("u", "z", 9), ("v", "z", 1)])
        scorer = TemporalCommonNeighbors().fit(g)
        present = g.last_timestamp() + 1.0
        assert scorer.score("u", "v") == pytest.approx(
            normalized_influence([1], present)
        )

    def test_no_common_neighbours(self):
        g = DynamicNetwork([("u", "x", 1), ("v", "y", 2)])
        assert TemporalCommonNeighbors().fit(g).score("u", "v") == 0.0

    def test_unknown_node(self, recency_pair):
        assert TemporalCommonNeighbors().fit(recency_pair).score("u", "no") == 0.0

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            TemporalCommonNeighbors(theta=0.0)


class TestTemporalResourceAllocation:
    def test_recent_beats_old(self, recency_pair):
        scorer = TemporalResourceAllocation().fit(recency_pair)
        assert scorer.score("u", "v") > scorer.score("p", "q")

    def test_busy_hub_penalised(self):
        quiet = DynamicNetwork([("u", "z", 9), ("v", "z", 9)])
        busy = quiet.copy()
        for i in range(8):
            busy.add_edge("z", f"extra{i}", 9)
        s_quiet = TemporalResourceAllocation().fit(quiet).score("u", "v")
        s_busy = TemporalResourceAllocation().fit(busy).score("u", "v")
        assert s_quiet > s_busy


class TestRecentActivity:
    def test_active_pair_scores_higher(self, recency_pair):
        scorer = RecentActivity().fit(recency_pair)
        assert scorer.score("u", "v") > scorer.score("p", "q")

    def test_zero_for_unknown(self, recency_pair):
        assert RecentActivity().fit(recency_pair).score("zz", "u") == 0.0


class TestRegistryIntegration:
    def test_extended_methods_runnable(self, small_dataset):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.methods import EXTENDED_METHODS
        from repro.experiments.runner import LinkPredictionExperiment

        experiment = LinkPredictionExperiment(
            small_dataset, ExperimentConfig().fast()
        )
        for name in EXTENDED_METHODS:
            result = experiment.run_method(name)
            assert 0.0 <= result.auc <= 1.0, name

"""Tests for the WLF (WLNM enclosing-subgraph) baseline feature."""

import numpy as np
import pytest

from repro.baselines.wlf import WLFExtractor, wlf_feature_dim
from repro.graph.temporal import DynamicNetwork


class TestFeatureDim:
    def test_matches_ssf_convention(self):
        assert wlf_feature_dim(10) == 44

    def test_small_k_rejected(self):
        with pytest.raises(ValueError):
            wlf_feature_dim(1)
        with pytest.raises(ValueError):
            WLFExtractor(DynamicNetwork(), k=2)


class TestExtraction:
    def test_length(self, fig3_network):
        ext = WLFExtractor(fig3_network, k=6)
        assert ext.extract("A", "B").shape == (wlf_feature_dim(6),)

    def test_binary_entries(self, fig3_network):
        vec = WLFExtractor(fig3_network, k=6).extract("A", "B")
        assert set(np.unique(vec)) <= {0.0, 1.0}

    def test_deterministic(self, small_dataset):
        ext = WLFExtractor(small_dataset, k=8)
        pairs = list(small_dataset.pair_iter())[:5]
        for a, b in pairs:
            assert np.allclose(ext.extract(a, b), ext.extract(a, b))

    def test_unknown_nodes_zero(self, fig3_network):
        ext = WLFExtractor(fig3_network, k=6)
        assert np.allclose(ext.extract("A", "ghost"), 0.0)

    def test_small_component_padded(self):
        g = DynamicNetwork([("x", "y", 1)])
        assert np.allclose(WLFExtractor(g, k=5).extract("x", "y"), 0.0)

    def test_ignores_timestamps(self):
        g1 = DynamicNetwork([("a", "c", 1), ("b", "c", 2)])
        g2 = DynamicNetwork([("a", "c", 9), ("b", "c", 9)])
        v1 = WLFExtractor(g1, k=3).extract("a", "b")
        v2 = WLFExtractor(g2, k=3).extract("a", "b")
        assert np.allclose(v1, v2)

    def test_ignores_multiplicity(self):
        g1 = DynamicNetwork([("a", "c", 1), ("b", "c", 2)])
        g2 = DynamicNetwork([("a", "c", 1), ("a", "c", 2), ("b", "c", 3)])
        v1 = WLFExtractor(g1, k=3).extract("a", "b")
        v2 = WLFExtractor(g2, k=3).extract("a", "b")
        assert np.allclose(v1, v2)

    def test_batch(self, fig3_network):
        ext = WLFExtractor(fig3_network, k=6)
        batch = ext.extract_batch([("A", "B"), ("A", "C")])
        assert batch.shape == (2, wlf_feature_dim(6))

    def test_no_structure_merging(self, fig3_network):
        """WLF keeps plain nodes: with K=8 on Fig. 3 all 8 one-hop nodes
        appear as distinct enclosing-subgraph nodes (unlike SSF's 5
        structure nodes)."""
        selected, sub = WLFExtractor(fig3_network, k=8)._enclosing_subgraph("A", "B")
        assert len(selected) == 8
        assert all(len(sub.nodes[i].members) == 1 for i in selected)

"""Tests for the local random walk scorer."""

import numpy as np
import pytest

from repro.baselines.randomwalk import LocalRandomWalk
from repro.graph.temporal import DynamicNetwork


@pytest.fixture
def line() -> DynamicNetwork:
    return DynamicNetwork([("a", "b", 1), ("b", "c", 2), ("c", "d", 3)])


class TestLocalRandomWalk:
    def test_distribution_sums_to_one(self, line):
        scorer = LocalRandomWalk(steps=3).fit(line)
        dist = scorer._distribution("a")
        assert dist.sum() == pytest.approx(1.0)

    def test_one_step_exact(self, line):
        scorer = LocalRandomWalk(steps=1).fit(line)
        dist = scorer._distribution("b")
        idx = scorer._index
        assert dist[idx["a"]] == pytest.approx(0.5)
        assert dist[idx["c"]] == pytest.approx(0.5)

    def test_symmetric_definition(self, line):
        scorer = LocalRandomWalk(steps=3).fit(line)
        assert scorer.score("a", "c") == pytest.approx(scorer.score("c", "a"))

    def test_near_beats_far(self, line):
        scorer = LocalRandomWalk(steps=3).fit(line)
        assert scorer.score("a", "b") > scorer.score("a", "d")

    def test_steps_validation(self):
        with pytest.raises(ValueError):
            LocalRandomWalk(steps=0)

    def test_unknown_node(self, line):
        assert LocalRandomWalk().fit(line).score("a", "ghost") == 0.0

    def test_detailed_balance(self, line):
        """q_x p_x^t[y] == q_y p_y^t[x] for an unweighted graph."""
        scorer = LocalRandomWalk(steps=2).fit(line)
        idx = scorer._index
        lhs = scorer._initial_weight["a"] * scorer._distribution("a")[idx["c"]]
        rhs = scorer._initial_weight["c"] * scorer._distribution("c")[idx["a"]]
        assert lhs == pytest.approx(rhs)

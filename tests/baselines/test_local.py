"""Tests for the local-neighbourhood heuristics (CN, Jaccard, PA, AA, RA)."""

import math

import pytest

from repro.baselines.local import (
    AdamicAdar,
    CommonNeighbors,
    Jaccard,
    PreferentialAttachment,
    ResourceAllocation,
)
from repro.graph.temporal import DynamicNetwork


@pytest.fixture
def star_pair() -> DynamicNetwork:
    """u and v share z1, z2; z1 has degree 2, z2 degree 3 (extra leaf w)."""
    return DynamicNetwork(
        [
            ("u", "z1", 1),
            ("v", "z1", 2),
            ("u", "z2", 3),
            ("v", "z2", 4),
            ("z2", "w", 5),
        ]
    )


class TestCommonNeighbors:
    def test_value(self, star_pair):
        scorer = CommonNeighbors().fit(star_pair)
        assert scorer.score("u", "v") == 2.0

    def test_no_common(self, star_pair):
        scorer = CommonNeighbors().fit(star_pair)
        # z1's neighbours {u, v} and w's {z2} are disjoint
        assert scorer.score("z1", "w") == 0.0

    def test_unknown_node_zero(self, star_pair):
        scorer = CommonNeighbors().fit(star_pair)
        assert scorer.score("u", "ghost") == 0.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            CommonNeighbors().score("u", "v")

    def test_ignores_multiplicity(self):
        g = DynamicNetwork([("u", "z", 1), ("u", "z", 2), ("v", "z", 3)])
        assert CommonNeighbors().fit(g).score("u", "v") == 1.0


class TestJaccard:
    def test_value(self, star_pair):
        scorer = Jaccard().fit(star_pair)
        # |{z1,z2}| / |{z1,z2}| = 1.0
        assert scorer.score("u", "v") == 1.0

    def test_partial_overlap(self):
        # u's neighbours {z, x}, v's {z}: intersection 1, union 2
        g = DynamicNetwork([("u", "z", 1), ("v", "z", 2), ("u", "x", 3)])
        assert Jaccard().fit(g).score("u", "v") == pytest.approx(1 / 2)

    def test_isolated_pair(self):
        g = DynamicNetwork([("u", "z", 1)])
        g.add_node("p")
        g.add_node("q")
        assert Jaccard().fit(g).score("p", "q") == 0.0


class TestPreferentialAttachment:
    def test_value(self, star_pair):
        scorer = PreferentialAttachment().fit(star_pair)
        assert scorer.score("u", "v") == 4.0  # 2 * 2

    def test_hub(self, star_pair):
        scorer = PreferentialAttachment().fit(star_pair)
        assert scorer.score("z2", "z1") == 6.0  # 3 * 2


class TestAdamicAdar:
    def test_value(self, star_pair):
        scorer = AdamicAdar().fit(star_pair)
        expected = 1 / math.log(2) + 1 / math.log(3)
        assert scorer.score("u", "v") == pytest.approx(expected)

    def test_score_pairs_vectorised(self, star_pair):
        scorer = AdamicAdar().fit(star_pair)
        scores = scorer.score_pairs([("u", "v"), ("u", "w")])
        assert scores.shape == (2,)
        assert scores[0] > scores[1]


class TestResourceAllocation:
    def test_value(self, star_pair):
        scorer = ResourceAllocation().fit(star_pair)
        assert scorer.score("u", "v") == pytest.approx(1 / 2 + 1 / 3)

    def test_penalises_hubs(self):
        small_hub = DynamicNetwork([("u", "z", 1), ("v", "z", 2)])
        big_hub = small_hub.copy()
        for i in range(10):
            big_hub.add_edge("z", f"extra{i}", 5 + i)
        assert (
            ResourceAllocation().fit(small_hub).score("u", "v")
            > ResourceAllocation().fit(big_hub).score("u", "v")
        )

"""Tests for the StaticGraph projection substrate."""

import numpy as np
import pytest

from repro.graph.static import StaticGraph


@pytest.fixture
def square() -> StaticGraph:
    """4-cycle a-b-c-d-a."""
    return StaticGraph([("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")])


class TestEdges:
    def test_add_idempotent(self):
        g = StaticGraph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.number_of_edges() == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            StaticGraph([(1, 1)])

    def test_remove(self, square):
        square.remove_edge("a", "b")
        assert not square.has_edge("a", "b")
        assert square.number_of_edges() == 3

    def test_remove_missing(self, square):
        with pytest.raises(KeyError):
            square.remove_edge("a", "c")

    def test_edges_each_once(self, square):
        assert len(list(square.edges())) == 4


class TestNeighborhoods:
    def test_neighbors_copy(self, square):
        nbrs = square.neighbors("a")
        nbrs.add("zzz")
        assert "zzz" not in square.neighbors("a")

    def test_common_neighbors(self, square):
        assert square.common_neighbors("a", "c") == {"b", "d"}

    def test_degree(self, square):
        assert square.degree("a") == 2

    def test_missing_node(self, square):
        with pytest.raises(KeyError):
            square.neighbors("nope")


class TestTraversal:
    def test_bfs_distances(self, square):
        dist = square.bfs_distances("a")
        assert dist == {"a": 0, "b": 1, "d": 1, "c": 2}

    def test_bfs_max_depth(self, square):
        dist = square.bfs_distances("a", max_depth=1)
        assert dist == {"a": 0, "b": 1, "d": 1}

    def test_connected_component(self):
        g = StaticGraph([("a", "b"), ("c", "d")])
        assert g.connected_component("a") == {"a", "b"}

    def test_bfs_missing_source(self, square):
        with pytest.raises(KeyError):
            square.bfs_distances("nope")


class TestLinearAlgebra:
    def test_adjacency_matrix_symmetric(self, square):
        mat = square.adjacency_matrix()
        assert np.allclose(mat, mat.T)
        assert mat.sum() == 8  # 4 edges * 2

    def test_node_index_stable(self, square):
        idx = square.node_index()
        assert sorted(idx.values()) == [0, 1, 2, 3]

    def test_adjacency_with_custom_index(self, square):
        index = {n: i for i, n in enumerate(sorted(square.nodes))}
        mat = square.adjacency_matrix(index)
        assert mat[index["a"], index["b"]] == 1.0
        assert mat[index["a"], index["c"]] == 0.0

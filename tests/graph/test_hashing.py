"""Tests for network fingerprinting."""

from repro.graph.hashing import network_fingerprint
from repro.graph.temporal import DynamicNetwork


class TestNetworkFingerprint:
    def test_insertion_order_invariant(self):
        g1 = DynamicNetwork([("a", "b", 1), ("b", "c", 2)])
        g2 = DynamicNetwork([("b", "c", 2), ("a", "b", 1)])
        assert network_fingerprint(g1) == network_fingerprint(g2)

    def test_direction_invariant(self):
        g1 = DynamicNetwork([("a", "b", 1)])
        g2 = DynamicNetwork([("b", "a", 1)])
        assert network_fingerprint(g1) == network_fingerprint(g2)

    def test_multiplicity_sensitive(self):
        g1 = DynamicNetwork([("a", "b", 1)])
        g2 = DynamicNetwork([("a", "b", 1), ("a", "b", 1)])
        assert network_fingerprint(g1) != network_fingerprint(g2)

    def test_timestamp_sensitive(self):
        g1 = DynamicNetwork([("a", "b", 1)])
        g2 = DynamicNetwork([("a", "b", 2)])
        assert network_fingerprint(g1) != network_fingerprint(g2)

    def test_isolated_nodes_counted(self):
        g1 = DynamicNetwork([("a", "b", 1)])
        g2 = DynamicNetwork([("a", "b", 1)])
        g2.add_node("lonely")
        assert network_fingerprint(g1) != network_fingerprint(g2)

    def test_empty_network_stable(self):
        assert network_fingerprint(DynamicNetwork()) == network_fingerprint(
            DynamicNetwork()
        )

    def test_equal_networks_equal_hash(self, small_dataset):
        assert network_fingerprint(small_dataset) == network_fingerprint(
            small_dataset.copy()
        )

"""Tests for edge-list reading/writing."""

import pytest

from repro.graph.io import EdgeListFormatError, read_edge_list, write_edge_list
from repro.graph.temporal import DynamicNetwork


class TestReadEdgeList:
    def test_plain_tsv(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("a b 1\nb c 2\na b 3\n")
        g = read_edge_list(path)
        assert g.number_of_links() == 3
        assert g.multiplicity("a", "b") == 2

    def test_konect_format(self, tmp_path):
        path = tmp_path / "out.network"
        path.write_text("% konect header\n1 2 1 86400\n2 3 1 172800\n")
        g = read_edge_list(path)
        assert g.number_of_links() == 2
        assert g.timestamps("1", "2") == (86400.0,)

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("# comment\n\n% other comment\na b 1\n")
        assert read_edge_list(path).number_of_links() == 1

    def test_self_loops_skipped(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("a a 1\na b 2\n")
        g = read_edge_list(path)
        assert g.number_of_links() == 1

    def test_self_loops_strict(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("a a 1\n")
        with pytest.raises(EdgeListFormatError):
            read_edge_list(path, skip_self_loops=False)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("a b\n")
        with pytest.raises(EdgeListFormatError, match=":1:"):
            read_edge_list(path)

    def test_bad_timestamp(self, tmp_path):
        path = tmp_path / "edges.tsv"
        path.write_text("a b xyz\n")
        with pytest.raises(EdgeListFormatError, match="timestamp"):
            read_edge_list(path)


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        g = DynamicNetwork([("a", "b", 1), ("b", "c", 2.5), ("a", "b", 7)])
        path = tmp_path / "round.tsv"
        write_edge_list(g, path)
        assert read_edge_list(path) == g

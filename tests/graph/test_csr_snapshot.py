"""Tests for the frozen CSR snapshot substrate."""

import numpy as np
import pytest

from repro.core.influence import influence_array, normalized_influence
from repro.graph.csr import CSRSnapshot, concatenate_neighbor_slices
from repro.graph.temporal import DynamicNetwork


@pytest.fixture()
def network() -> DynamicNetwork:
    g = DynamicNetwork(
        [
            ("a", "b", 1),
            ("a", "b", 3),  # multi-link
            ("b", "c", 2),
            ("c", "d", 2),  # duplicate timestamp across pairs
            ("a", "d", 5),
        ]
    )
    g.add_node("lonely")  # isolated node must survive the freeze
    return g


class TestConstruction:
    def test_counts_match(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        assert snap.number_of_nodes() == network.number_of_nodes()
        assert snap.number_of_links() == network.number_of_links()
        assert snap.number_of_pairs() == network.number_of_pairs()

    def test_labels_keep_insertion_order(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        assert list(snap.labels) == network.nodes
        for node in network.nodes:
            assert snap.label_of(snap.node_id(node)) == node

    def test_neighbor_slices_sorted(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        for node in network.nodes:
            nbrs = snap.neighbor_slice(snap.node_id(node))
            assert np.all(np.diff(nbrs) > 0)  # strictly ascending ids
            labels = {snap.label_of(int(i)) for i in nbrs}
            assert labels == network.neighbors(node)

    def test_pair_timestamps_match_dict(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        for u, v in network.pair_iter():
            assert snap.pair_timestamps(u, v) == network.timestamps(u, v)
        assert snap.pair_timestamps("a", "ghost") == ()

    def test_timestamp_extremes(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        assert snap.first_timestamp() == network.first_timestamp()
        assert snap.last_timestamp() == network.last_timestamp()

    def test_unknown_node(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        assert not snap.has_node("ghost")
        with pytest.raises(KeyError):
            snap.node_id("ghost")

    def test_empty_network(self):
        snap = CSRSnapshot.from_dynamic(DynamicNetwork())
        assert snap.number_of_nodes() == 0
        assert snap.number_of_links() == 0


class TestRoundtrip:
    def test_to_dynamic_equal(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        assert snap.to_dynamic() == network

    def test_shared_memory_roundtrip(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        handle = snap.to_shared()
        try:
            attached = CSRSnapshot.from_shared(handle)
            assert np.array_equal(attached.indptr, snap.indptr)
            assert np.array_equal(attached.indices, snap.indices)
            assert np.array_equal(attached.ts_indptr, snap.ts_indptr)
            assert np.array_equal(attached.ts, snap.ts)
            assert attached.labels == snap.labels
            assert attached.to_dynamic() == network
            del attached
        finally:
            handle.unlink()

    def test_shared_handle_pickles(self, network):
        import pickle

        snap = CSRSnapshot.from_dynamic(network)
        handle = snap.to_shared()
        try:
            clone = pickle.loads(pickle.dumps(handle))
            attached = CSRSnapshot.from_shared(clone)
            assert attached.to_dynamic() == network
            del attached
        finally:
            handle.unlink()


class TestInfluenceTable:
    def test_bit_parity_with_math_exp(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        present = network.last_timestamp() + 1.0
        table = snap.influence_table(present, 0.5)
        assert table.shape == snap.ts.shape
        for u, v in network.pair_iter():
            slot = snap.edge_slot(snap.node_id(u), snap.node_id(v))
            lo, hi = snap.ts_indptr[slot], snap.ts_indptr[slot + 1]
            total = 0.0
            for value in table[lo:hi].tolist():
                total += value
            assert total == normalized_influence(
                network.timestamps(u, v), present, 0.5
            )

    def test_cached_per_key(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        first = snap.influence_table(10.0, 0.5)
        assert snap.influence_table(10.0, 0.5) is first
        assert snap.influence_table(10.0, 0.25) is not first

    def test_influence_array_validates(self):
        with pytest.raises(ValueError):
            influence_array(np.array([5.0]), present_time=4.0)
        assert influence_array(np.zeros(0), present_time=1.0).size == 0

    def test_cache_bounded_lru(self, network):
        """A serving loop advances present_time per batch; without the
        LRU bound each distinct key pins one |ts|-sized table forever."""
        import repro.obs as obs
        from repro.graph.csr import INFLUENCE_TABLE_CACHE_SIZE
        from repro.obs.metrics import get_registry

        was_enabled = obs.enabled()
        get_registry().reset()
        obs.enable()
        try:
            snap = CSRSnapshot.from_dynamic(network)
            for step in range(INFLUENCE_TABLE_CACHE_SIZE + 5):
                snap.influence_table(10.0 + step, 0.5)
            assert len(snap._influence_tables) == INFLUENCE_TABLE_CACHE_SIZE
            counters = get_registry().snapshot()["counters"]
            assert counters["csr.influence_cache_evictions"] == 5.0
            # oldest key is gone, newest survives
            assert (10.0, 0.5) not in snap._influence_tables
            assert (
                10.0 + INFLUENCE_TABLE_CACHE_SIZE + 4,
                0.5,
            ) in snap._influence_tables
        finally:
            get_registry().reset()
            if not was_enabled:
                obs.disable()

    def test_cache_capacity_env_override(self, network, monkeypatch):
        monkeypatch.setenv("REPRO_CSR_INFLUENCE_CACHE", "2")
        snap = CSRSnapshot.from_dynamic(network)
        for step in range(5):
            snap.influence_table(10.0 + step, 0.5)
        assert len(snap._influence_tables) == 2
        monkeypatch.setenv("REPRO_CSR_INFLUENCE_CACHE", "not-a-number")
        snap.influence_table(99.0, 0.5)  # falls back to the default bound
        assert len(snap._influence_tables) == 3


class TestNeighborConcatenation:
    def test_matches_per_row_concat(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        frontier = np.array(
            [snap.node_id("a"), snap.node_id("c"), snap.node_id("lonely")],
            dtype=np.int64,
        )
        got = concatenate_neighbor_slices(snap, frontier)
        expected = np.concatenate(
            [snap.neighbor_slice(int(i)) for i in frontier]
        )
        assert np.array_equal(got, expected)

    def test_empty_frontier(self, network):
        snap = CSRSnapshot.from_dynamic(network)
        assert concatenate_neighbor_slices(
            snap, np.zeros(0, dtype=np.int64)
        ).size == 0

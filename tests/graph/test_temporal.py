"""Tests for the DynamicNetwork temporal multigraph substrate."""

import math

import pytest

from repro.graph.temporal import DynamicNetwork, TemporalEdge, average_degree


class TestAddEdge:
    def test_basic(self):
        g = DynamicNetwork()
        g.add_edge("a", "b", 1)
        assert g.has_edge("a", "b")
        assert g.has_edge("b", "a")
        assert g.number_of_links() == 1

    def test_multi_links(self):
        g = DynamicNetwork()
        g.add_edge("a", "b", 1)
        g.add_edge("a", "b", 5)
        g.add_edge("b", "a", 3)
        assert g.multiplicity("a", "b") == 3
        assert g.timestamps("a", "b") == (1.0, 3.0, 5.0)

    def test_same_timestamp_twice(self):
        g = DynamicNetwork()
        g.add_edge("a", "b", 2)
        g.add_edge("a", "b", 2)
        assert g.timestamps("a", "b") == (2.0, 2.0)

    def test_self_loop_rejected(self):
        g = DynamicNetwork()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge("a", "a", 1)

    def test_non_finite_timestamp_rejected(self):
        g = DynamicNetwork()
        with pytest.raises(ValueError):
            g.add_edge("a", "b", math.inf)

    def test_constructor_edges(self):
        g = DynamicNetwork([("a", "b", 1), ("b", "c", 2)])
        assert g.number_of_links() == 2
        assert set(g.nodes) == {"a", "b", "c"}


class TestRemoveEdge:
    def test_remove_latest(self):
        g = DynamicNetwork([("a", "b", 1), ("a", "b", 5)])
        g.remove_edge("a", "b")
        assert g.timestamps("a", "b") == (1.0,)

    def test_remove_specific(self):
        g = DynamicNetwork([("a", "b", 1), ("a", "b", 5)])
        g.remove_edge("a", "b", timestamp=1)
        assert g.timestamps("a", "b") == (5.0,)

    def test_remove_last_link_drops_pair(self):
        g = DynamicNetwork([("a", "b", 1)])
        g.remove_edge("a", "b")
        assert not g.has_edge("a", "b")
        assert g.number_of_links() == 0

    def test_missing_raises(self):
        g = DynamicNetwork([("a", "b", 1)])
        with pytest.raises(KeyError):
            g.remove_edge("a", "c")
        with pytest.raises(KeyError):
            g.remove_edge("a", "b", timestamp=9)


class TestQueries:
    def test_degrees(self, triangle_network):
        # x: links to y (x2 incl. multi) and z
        assert triangle_network.degree("x") == 3
        assert triangle_network.simple_degree("x") == 2

    def test_neighbors(self, triangle_network):
        assert triangle_network.neighbors("x") == {"y", "z"}

    def test_neighbors_missing_node(self, triangle_network):
        with pytest.raises(KeyError):
            triangle_network.neighbors("nope")

    def test_counts(self, triangle_network):
        assert triangle_network.number_of_nodes() == 3
        assert triangle_network.number_of_links() == 4
        assert triangle_network.number_of_pairs() == 3

    def test_edges_iteration_counts_multiplicity(self, triangle_network):
        edges = list(triangle_network.edges())
        assert len(edges) == 4
        assert all(isinstance(e, TemporalEdge) for e in edges)

    def test_pair_iter_unique(self, triangle_network):
        pairs = list(triangle_network.pair_iter())
        assert len(pairs) == 3
        assert len({frozenset(p) for p in pairs}) == 3

    def test_contains_and_len(self, triangle_network):
        assert "x" in triangle_network
        assert "w" not in triangle_network
        assert len(triangle_network) == 3

    def test_isolated_node(self):
        g = DynamicNetwork()
        g.add_node("lonely")
        assert g.has_node("lonely")
        assert g.degree("lonely") == 0


class TestTemporal:
    def test_first_last_timestamp(self, triangle_network):
        assert triangle_network.first_timestamp() == 1.0
        assert triangle_network.last_timestamp() == 4.0

    def test_timestamp_set(self, triangle_network):
        assert triangle_network.timestamp_set() == {1.0, 2.0, 3.0, 4.0}

    def test_slice_half_open(self, triangle_network):
        sliced = triangle_network.slice(1, 4)  # drops the ts=4 multi-link
        assert sliced.number_of_links() == 3
        assert sliced.multiplicity("x", "y") == 1

    def test_slice_drops_unlinked_nodes(self):
        g = DynamicNetwork([("a", "b", 1), ("c", "d", 9)])
        sliced = g.slice(1, 5)
        assert set(sliced.nodes) == {"a", "b"}

    def test_slice_empty_period_rejected(self, triangle_network):
        with pytest.raises(ValueError):
            triangle_network.slice(3, 3)


class TestDerived:
    def test_subgraph(self, fig3_network):
        sub = fig3_network.subgraph({"A", "B", "C"})
        assert set(sub.nodes) == {"A", "B", "C"}
        assert sub.has_edge("A", "C")
        assert sub.has_edge("B", "C")
        assert not sub.has_edge("A", "B")

    def test_subgraph_keeps_multiplicity(self, triangle_network):
        sub = triangle_network.subgraph({"x", "y"})
        assert sub.multiplicity("x", "y") == 2

    def test_subgraph_missing_node_raises(self, fig3_network):
        with pytest.raises(KeyError):
            fig3_network.subgraph({"A", "nope"})

    def test_static_projection(self, triangle_network):
        static = triangle_network.static_projection()
        assert static.number_of_edges() == 3
        assert static.has_edge("x", "y")

    def test_copy_equal_but_independent(self, triangle_network):
        clone = triangle_network.copy()
        assert clone == triangle_network
        clone.add_edge("x", "y", 99)
        assert clone != triangle_network

    def test_equality_ignores_direction(self):
        g1 = DynamicNetwork([("a", "b", 1)])
        g2 = DynamicNetwork([("b", "a", 1)])
        assert g1 == g2

    def test_equality_other_type(self):
        assert DynamicNetwork() != "not a network"


class TestAverageDegree:
    def test_empty(self):
        assert average_degree(DynamicNetwork()) == 0.0

    def test_counts_multiplicity(self, triangle_network):
        # 2 * 4 links / 3 nodes
        assert average_degree(triangle_network) == pytest.approx(8 / 3)

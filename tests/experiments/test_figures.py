"""Tests for the figure regenerators (K sweep, pattern report)."""

import pytest

from repro.datasets.catalog import get_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import format_k_sweep, k_sweep, mine_frequent_pattern


@pytest.fixture(scope="module")
def network():
    return get_dataset("co-author").generate(seed=0, scale=0.25)


class TestKSweep:
    def test_sweep_shape(self, network):
        results = k_sweep(
            network,
            config=ExperimentConfig().fast(),
            k_values=(5, 8),
            method="SSFLR",
        )
        assert set(results) == {5, 8}
        for result in results.values():
            assert 0.0 <= result.auc <= 1.0

    def test_format(self, network):
        results = k_sweep(
            network,
            config=ExperimentConfig().fast(),
            k_values=(5,),
            method="SSFLR",
        )
        text = format_k_sweep(results, dataset="demo")
        assert "demo" in text
        assert "   5" in text


class TestFrequentPattern:
    def test_mining_report(self, network):
        stats, rendering = mine_frequent_pattern(network, n_samples=40, k=6, seed=0)
        assert stats.count >= 1
        assert "pattern frequency" in rendering

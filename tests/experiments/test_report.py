"""Tests for the markdown report generator."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.report import (
    compute_report_sections,
    generate_report,
    render_report,
)


@pytest.fixture(scope="module")
def sections():
    from repro.datasets.catalog import get_dataset

    network = get_dataset("co-author").generate(seed=0, scale=0.25)
    return compute_report_sections(
        network,
        name="demo",
        config=ExperimentConfig().fast(),
        methods=("CN", "SSFLR"),
        k_values=(5, 8),
        pattern_samples=40,
    )


class TestComputeSections:
    def test_all_ingredients(self, sections):
        assert sections.name == "demo"
        assert set(sections.methods) == {"CN", "SSFLR"}
        assert set(sections.sweep) == {5, 8}
        assert "pattern frequency" in sections.pattern_rendering
        assert sections.task_summary["train_positive"] > 0

    def test_extension_methods_allowed(self):
        from repro.datasets.catalog import get_dataset

        network = get_dataset("co-author").generate(seed=0, scale=0.2)
        out = compute_report_sections(
            network,
            config=ExperimentConfig().fast(),
            methods=("tCN",),
            k_values=(5,),
            pattern_samples=20,
        )
        assert "tCN" in out.methods


class TestRender:
    def test_markdown_structure(self, sections):
        text = render_report(sections)
        assert text.startswith("# Link-prediction report: demo")
        for heading in (
            "## Network statistics",
            "## Method comparison",
            "## SSFLR across K",
            "## Most frequent K-structure-subgraph pattern",
        ):
            assert heading in text

    def test_method_table(self, sections):
        text = render_report(sections)
        assert "| method | AUC | F1 |" in text
        assert "| CN |" in text


class TestGenerateReport:
    def test_end_to_end(self):
        from repro.datasets.catalog import get_dataset

        network = get_dataset("co-author").generate(seed=0, scale=0.2)
        text = generate_report(
            network,
            name="tiny",
            config=ExperimentConfig().fast(),
            methods=("CN",),
        )
        assert "tiny" in text
        assert "CN" in text

"""Tests for the paired-bootstrap significance machinery."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.significance import (
    ComparisonResult,
    bootstrap_auc_difference,
    compare_methods,
)


def _labelled(seed=0, n=200):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    return rng, labels


class TestBootstrapAucDifference:
    def test_clearly_better_method_significant(self):
        rng, labels = _labelled()
        strong = labels + rng.normal(scale=0.3, size=len(labels))
        weak = rng.normal(size=len(labels))
        delta, lo, hi, p = bootstrap_auc_difference(
            labels, strong, weak, n_bootstrap=300, seed=0
        )
        assert delta > 0.2
        assert lo > 0.0
        assert p < 0.05

    def test_identical_scores_not_significant(self):
        rng, labels = _labelled(seed=1)
        scores = rng.normal(size=len(labels))
        delta, lo, hi, p = bootstrap_auc_difference(
            labels, scores, scores.copy(), n_bootstrap=100, seed=0
        )
        assert delta == 0.0
        assert lo <= 0.0 <= hi

    def test_antisymmetric(self):
        rng, labels = _labelled(seed=2)
        a = labels + rng.normal(scale=0.5, size=len(labels))
        b = rng.normal(size=len(labels))
        d_ab, *_ = bootstrap_auc_difference(labels, a, b, n_bootstrap=50, seed=0)
        d_ba, *_ = bootstrap_auc_difference(labels, b, a, n_bootstrap=50, seed=0)
        assert d_ab == pytest.approx(-d_ba)

    def test_deterministic(self):
        rng, labels = _labelled(seed=3)
        a = rng.normal(size=len(labels))
        b = rng.normal(size=len(labels))
        first = bootstrap_auc_difference(labels, a, b, n_bootstrap=50, seed=9)
        second = bootstrap_auc_difference(labels, a, b, n_bootstrap=50, seed=9)
        assert first == second

    def test_validation(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.arange(4.0)
        with pytest.raises(ValueError):
            bootstrap_auc_difference(labels, scores, scores[:3])
        with pytest.raises(ValueError):
            bootstrap_auc_difference(labels, scores, scores, n_bootstrap=5)


class TestCompareMethods:
    def test_end_to_end(self):
        from repro.datasets.catalog import get_dataset
        from repro.experiments.runner import LinkPredictionExperiment

        network = get_dataset("co-author").generate(seed=0, scale=0.25)
        experiment = LinkPredictionExperiment(network, ExperimentConfig().fast())
        comparison = compare_methods(
            experiment, "SSFLR", "PA", n_bootstrap=100, seed=0
        )
        assert comparison.method_a == "SSFLR"
        assert comparison.delta == pytest.approx(
            comparison.auc_a - comparison.auc_b
        )
        assert comparison.ci_low <= comparison.delta <= comparison.ci_high
        assert 0.0 <= comparison.p_value <= 1.0
        assert isinstance(comparison.significant, bool)
        assert "ΔAUC" in str(comparison)


class TestComparisonResult:
    def test_significance_flag(self):
        base = dict(
            method_a="A", method_b="B", auc_a=0.9, auc_b=0.7,
            delta=0.2, p_value=0.01, n_bootstrap=100,
        )
        sig = ComparisonResult(ci_low=0.1, ci_high=0.3, **base)
        not_sig = ComparisonResult(ci_low=-0.05, ci_high=0.3, **base)
        assert sig.significant
        assert not not_sig.significant

"""Tests for the table renderers."""

import pytest

from repro.experiments.methods import MethodResult
from repro.experiments.tables import (
    TABLE1_ROWS,
    format_table1,
    format_table2,
    format_table3,
)


class TestTable1:
    def test_ten_rows(self):
        assert len(TABLE1_ROWS) == 10

    def test_flags_match_paper(self):
        flags = {name: (universal, dynamic) for name, _, universal, dynamic in TABLE1_ROWS}
        assert flags["CN"] == (False, False)
        assert flags["rWRA"] == (False, True)
        assert flags["WLF"] == (True, False)
        assert flags["SSF (our work)"] == (True, True)

    def test_render(self):
        text = format_table1()
        assert "SSF (our work)" in text
        assert "universal" in text


class TestTable2:
    def test_render(self):
        rows = {
            "demo": {
                "nodes": 10,
                "links": 55,
                "pairs": 30,
                "avg_degree": 11.0,
                "time_span": 20,
            }
        }
        text = format_table2(rows)
        assert "demo" in text
        assert "55" in text


class TestTable3:
    def _results(self):
        return {
            "d1": {
                "CN": MethodResult("CN", auc=0.7, f1=0.6),
                "SSFNM": MethodResult("SSFNM", auc=0.9, f1=0.8),
            },
            "d2": {
                "CN": MethodResult("CN", auc=0.95, f1=0.9),
                "SSFNM": MethodResult("SSFNM", auc=0.8, f1=0.7),
            },
        }

    def test_best_marked(self):
        text = format_table3(self._results())
        lines = [line for line in text.splitlines() if line.startswith("SSFNM")]
        assert "0.900*" in lines[0]

    def test_method_order_respected(self):
        text = format_table3(self._results())
        assert text.index("CN") < text.index("SSFNM")

    def test_no_common_methods(self):
        with pytest.raises(ValueError):
            format_table3({"d1": {"CN": MethodResult("CN", 0.5, 0.5)}, "d2": {}})

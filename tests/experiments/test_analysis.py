"""Tests for the network-analysis statistics module."""

import numpy as np
import pytest

from repro.analysis import (
    burstiness,
    clustering_coefficient,
    degree_distribution,
    degree_gini,
    inter_event_times,
    network_report,
    temporal_activity,
)
from repro.graph.temporal import DynamicNetwork


@pytest.fixture
def triangle_plus_leaf() -> DynamicNetwork:
    return DynamicNetwork(
        [("a", "b", 1), ("b", "c", 2), ("a", "c", 3), ("c", "d", 4)]
    )


class TestDegreeStatistics:
    def test_distribution_sorted(self, triangle_plus_leaf):
        degrees = degree_distribution(triangle_plus_leaf)
        assert list(degrees) == sorted(degrees)
        assert degrees.sum() == 2 * 4  # link endpoints

    def test_simple_vs_multigraph(self):
        g = DynamicNetwork([("a", "b", 1), ("a", "b", 2)])
        assert degree_distribution(g).max() == 2
        assert degree_distribution(g, simple=True).max() == 1

    def test_gini_zero_for_regular(self):
        ring = DynamicNetwork(
            [("a", "b", 1), ("b", "c", 2), ("c", "d", 3), ("d", "a", 4)]
        )
        assert degree_gini(ring) == pytest.approx(0.0, abs=1e-9)

    def test_gini_positive_for_star(self):
        star = DynamicNetwork([("hub", f"leaf{i}", i + 1) for i in range(10)])
        assert degree_gini(star) > 0.3

    def test_gini_empty(self):
        assert degree_gini(DynamicNetwork()) == 0.0


class TestClustering:
    def test_triangle_value(self, triangle_plus_leaf):
        # a, b fully clustered (1.0); c has 3 nbrs, 1 link of 3 (1/3); d < 2 nbrs
        expected = (1.0 + 1.0 + 1 / 3 + 0.0) / 4
        assert clustering_coefficient(triangle_plus_leaf) == pytest.approx(expected)

    def test_tree_is_zero(self, path_network):
        assert clustering_coefficient(path_network) == 0.0

    def test_empty(self):
        assert clustering_coefficient(DynamicNetwork()) == 0.0

    def test_max_nodes_cap(self, triangle_plus_leaf):
        value = clustering_coefficient(triangle_plus_leaf, max_nodes=2)
        assert 0.0 <= value <= 1.0


class TestTemporalStatistics:
    def test_inter_event_times(self):
        g = DynamicNetwork([("a", "b", 1), ("a", "b", 4), ("a", "b", 6)])
        assert sorted(inter_event_times(g)) == [2.0, 3.0]

    def test_no_repeats_no_gaps(self, path_network):
        assert len(inter_event_times(path_network)) == 0

    def test_burstiness_regular_negative(self):
        g = DynamicNetwork([("a", "b", t) for t in range(1, 20, 2)])
        assert burstiness(g) == pytest.approx(-1.0)

    def test_burstiness_bursty_positive(self):
        stamps = [1, 1.1, 1.2, 1.3, 50, 50.1, 50.2, 99]
        g = DynamicNetwork([("a", "b", t) for t in stamps])
        assert burstiness(g) > 0.0

    def test_temporal_activity_bins(self):
        g = DynamicNetwork([("a", "b", t) for t in (1, 1, 1, 10)])
        counts = temporal_activity(g, bins=2)
        assert counts.tolist() == [3, 1]

    def test_temporal_activity_empty(self):
        assert temporal_activity(DynamicNetwork(), bins=3).tolist() == [0, 0, 0]

    def test_temporal_activity_validation(self, path_network):
        with pytest.raises(ValueError):
            temporal_activity(path_network, bins=0)


class TestNetworkReport:
    def test_report_fields(self, small_dataset):
        report = network_report(small_dataset)
        assert report.nodes == small_dataset.number_of_nodes()
        assert report.links == small_dataset.number_of_links()
        assert report.multiplicity_mean >= 1.0
        assert 0.0 <= report.clustering <= 1.0

    def test_format(self, small_dataset):
        text = network_report(small_dataset).format("demo")
        assert "demo" in text
        assert "burstiness" in text

    def test_empty_network(self):
        report = network_report(DynamicNetwork())
        assert report.nodes == 0
        assert report.time_span == 0.0

"""Tests for the link recommender."""

import pytest

from repro.graph.temporal import DynamicNetwork, median_timestamp_gap
from repro.recommend import LinkRecommender, Suggestion, hit_rate_at_n
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def network():
    from repro.datasets.catalog import get_dataset

    return get_dataset("co-author").generate(seed=0, scale=0.25)


@pytest.fixture(scope="module")
def recommender(network):
    return LinkRecommender.fit(network, model="linear", max_positives=60, seed=0)


class TestCandidates:
    def test_excludes_current_partners_and_self(self, network, recommender):
        user = max(network.nodes, key=network.degree)
        pool = recommender.candidates(user)
        partners = network.neighbors(user)
        assert user not in pool
        assert not partners & set(pool)

    def test_includes_friends_of_friends(self, network, recommender):
        user = max(network.nodes, key=network.degree)
        partners = network.neighbors(user)
        two_hop = set()
        for p in partners:
            two_hop |= network.neighbors(p)
        two_hop -= partners | {user}
        if two_hop:
            assert two_hop & set(recommender.candidates(user))

    def test_unknown_user(self, recommender):
        with pytest.raises(KeyError):
            recommender.candidates("nope")


class TestRecommend:
    def test_top_n_sorted(self, network, recommender):
        user = max(network.nodes, key=network.degree)
        suggestions = recommender.recommend(user, top_n=5)
        assert len(suggestions) <= 5
        assert all(isinstance(s, Suggestion) for s in suggestions)
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)

    def test_deterministic(self, network, recommender):
        user = max(network.nodes, key=network.degree)
        a = recommender.recommend(user, top_n=5)
        b = recommender.recommend(user, top_n=5)
        assert [s.node for s in a] == [s.node for s in b]

    def test_top_n_validation(self, network, recommender):
        user = network.nodes[0]
        with pytest.raises(ValueError):
            recommender.recommend(user, top_n=0)

    def test_model_validation(self, network):
        with pytest.raises(ValueError):
            LinkRecommender.fit(network, model="bogus")


class TestServingClock:
    """Regression: the serving extractor's present time must sit one
    *observed median gap* past the last stamp, not a hard-coded +1.0 —
    on decade-spaced stamps that off-by-nine makes exp(-θ·Δt) treat
    every link as far fresher than it is."""

    @staticmethod
    def _spaced_network(step):
        rng = ensure_rng(0)
        events = []
        for stamp in range(1, 9):
            for _ in range(6):
                u, v = rng.integers(0, 16, size=2)
                if u != v:
                    events.append((f"n{u}", f"n{v}", float(stamp * step)))
        return DynamicNetwork(events)

    def test_present_time_is_last_plus_median_gap(self):
        network = self._spaced_network(step=10.0)
        recommender = LinkRecommender.fit(network, max_positives=20, seed=0)
        expected = network.last_timestamp() + median_timestamp_gap(
            network.timestamp_set()
        )
        assert recommender.extractor.present_time == expected == 90.0

    def test_hit_rate_on_wide_spacing(self):
        """hit_rate_at_n on stamps spaced by 100: with the old +1.0
        clock every influence entry collapsed toward exp(-θ·100)≈0; the
        median-gap clock keeps the evaluation meaningful and bounded."""
        wide = self._spaced_network(step=100.0)
        rate = hit_rate_at_n(wide, top_n=5, n_users=8, seed=0)
        assert 0.0 <= rate <= 1.0


class TestHitRate:
    def test_in_unit_interval_and_better_than_nothing(self, network):
        rate = hit_rate_at_n(network, top_n=10, n_users=15, seed=0)
        assert 0.0 <= rate <= 1.0

    def test_larger_n_never_hurts(self, network):
        small = hit_rate_at_n(network, top_n=3, n_users=15, seed=0)
        large = hit_rate_at_n(network, top_n=30, n_users=15, seed=0)
        assert large >= small

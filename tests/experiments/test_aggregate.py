"""Tests for multi-seed aggregation."""

import pytest

from repro.experiments.aggregate import (
    AggregatedResult,
    format_aggregated,
    run_repeated,
)
from repro.experiments.config import ExperimentConfig


class TestAggregatedResult:
    def test_statistics(self):
        result = AggregatedResult(
            method="CN", auc_values=(0.8, 0.9), f1_values=(0.7, 0.7)
        )
        assert result.auc_mean == pytest.approx(0.85)
        assert result.auc_std == pytest.approx(0.05)
        assert result.f1_std == 0.0

    def test_str(self):
        result = AggregatedResult("CN", (0.8,), (0.7,))
        assert "CN" in str(result) and "1 seeds" in str(result)


class TestRunRepeated:
    @pytest.fixture(scope="class")
    def results(self):
        return run_repeated(
            "co-author",
            methods=("CN", "PA"),
            config=ExperimentConfig().fast(),
            n_seeds=2,
            scale=0.2,
        )

    def test_all_methods_present(self, results):
        assert set(results) == {"CN", "PA"}

    def test_seed_count(self, results):
        assert len(results["CN"].auc_values) == 2

    def test_values_in_range(self, results):
        for result in results.values():
            assert all(0.0 <= v <= 1.0 for v in result.auc_values)

    def test_seeds_vary_results(self, results):
        # two independent generations virtually never tie exactly
        aucs = results["CN"].auc_values
        assert aucs[0] != aucs[1]

    def test_format(self, results):
        text = format_aggregated(results)
        assert "CN" in text and "±" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            run_repeated("co-author", methods=(), n_seeds=1)
        with pytest.raises(ValueError):
            run_repeated("co-author", methods=("CN",), n_seeds=0)

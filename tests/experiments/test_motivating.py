"""Tests for the Fig. 1 motivating example."""

import numpy as np
import pytest

from repro.experiments.motivating import (
    build_celebrity_network,
    format_motivating_table,
    motivating_comparison,
)


class TestNetworkConstruction:
    def test_celebrities_have_fans(self):
        net = build_celebrity_network(fans_per_celebrity=5)
        assert net.simple_degree("A") == 6  # 5 fans + C
        assert net.simple_degree("C") == 9  # 5 fans + A, B, X, Y

    def test_common_users_only_know_c(self):
        net = build_celebrity_network()
        assert net.neighbors("X") == {"C"}
        assert net.neighbors("Y") == {"C"}

    def test_validation(self):
        with pytest.raises(ValueError):
            build_celebrity_network(fans_per_celebrity=0)


class TestComparison:
    def test_fig1b_reproduced(self):
        comparison = motivating_comparison()
        # CN, AA, RA, rWRA cannot separate A-B from X-Y...
        assert set(comparison["undistinguished"]) == {"CN", "AA", "RA", "rWRA"}
        # ...PA and Jaccard can, and so can SSF.
        pa_ab, pa_xy = comparison["heuristics"]["PA"]
        assert pa_ab > pa_xy
        assert comparison["ssf_distinguishes"]

    def test_jaccard_prefers_fans(self):
        """Jaccard actually ranks X-Y above A-B — the paper's point that
        differing is not the same as being right."""
        comparison = motivating_comparison()
        jac_ab, jac_xy = comparison["heuristics"]["Jac."]
        assert jac_xy > jac_ab

    def test_format(self):
        text = format_motivating_table(motivating_comparison())
        assert "SSF" in text
        assert "A-B" in text

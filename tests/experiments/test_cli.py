"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def _run(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])


class TestCommands:
    def test_table1(self, capsys):
        out = _run(capsys, "table1")
        assert "SSF (our work)" in out
        assert "A-B" in out

    def test_motivating(self, capsys):
        out = _run(capsys, "motivating")
        assert "SSF" in out

    def test_stats_dataset(self, capsys):
        out = _run(capsys, "stats", "--dataset", "co-author", "--scale", "0.1")
        assert "avg degree" in out

    def test_stats_file(self, capsys, tmp_path):
        path = tmp_path / "net.tsv"
        path.write_text("a b 1\nb c 2\na c 3\n")
        out = _run(capsys, "stats", "--file", str(path))
        assert "nodes" in out

    def test_stats_requires_source(self):
        with pytest.raises(SystemExit):
            main(["stats"])

    def test_table3_single_dataset(self, capsys):
        out = _run(
            capsys,
            "table3",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--epochs", "5",
            "--max-positives", "30",
            "--methods", "CN", "PA",
        )
        assert "CN" in out and "PA" in out

    def test_ksweep(self, capsys):
        out = _run(
            capsys,
            "ksweep",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--epochs", "5",
            "--max-positives", "30",
            "--method", "SSFLR",
            "--ks", "5", "6",
        )
        assert "K sweep" in out

    def test_patterns(self, capsys):
        out = _run(
            capsys,
            "patterns",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--samples", "20",
            "--k", "6",
        )
        assert "pattern frequency" in out

    def test_crossval(self, capsys):
        out = _run(
            capsys,
            "crossval",
            "--dataset", "co-author",
            "--scale", "0.2",
            "--epochs", "5",
            "--max-positives", "30",
            "--method", "CN",
            "--folds", "2",
        )
        assert "AUC" in out


class TestStreamCommand:
    def test_stream(self, capsys):
        out = _run(
            capsys,
            "stream",
            "--dataset", "co-author",
            "--scale", "0.2",
            "--k", "5",
        )
        assert "prequential" in out and "AUC" in out


class TestReportCommand:
    def test_report_to_stdout(self, capsys):
        out = _run(
            capsys,
            "report",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--epochs", "5",
            "--max-positives", "30",
        )
        assert "# Link-prediction report" in out

    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        out = _run(
            capsys,
            "report",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--epochs", "5",
            "--max-positives", "30",
            "--output", str(path),
        )
        assert "written to" in out
        assert path.read_text().startswith("# Link-prediction report")


class TestRecommendCommand:
    def test_recommend(self, capsys):
        out = _run(
            capsys,
            "recommend",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--user", "5",
            "--top", "3",
            "--k", "5",
        )
        assert "suggestions" in out and "score=" in out

    def test_unknown_user(self):
        with pytest.raises(SystemExit):
            main([
                "recommend",
                "--dataset", "co-author",
                "--scale", "0.15",
                "--user", "definitely-not-a-node",
            ])

"""Tests for the method registry."""

import pytest

from repro.baselines.base import LinkScorer
from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import (
    FEATURE_METHODS,
    METHOD_ORDER,
    RANKING_METHODS,
    MethodResult,
    validate_method_name,
)


class TestRegistry:
    def test_fifteen_methods(self):
        assert len(METHOD_ORDER) == 15

    def test_every_method_registered(self):
        for name in METHOD_ORDER:
            assert name in RANKING_METHODS or name in FEATURE_METHODS

    def test_no_overlap(self):
        assert not set(RANKING_METHODS) & set(FEATURE_METHODS)

    def test_ranking_factories_build_scorers(self):
        config = ExperimentConfig()
        for name, factory in RANKING_METHODS.items():
            scorer = factory(config)
            assert isinstance(scorer, LinkScorer), name

    def test_feature_method_kinds(self):
        kinds = {kind for kind, _ in FEATURE_METHODS.values()}
        assert kinds == {"wlf", "ssf", "ssf_w"}
        models = {model for _, model in FEATURE_METHODS.values()}
        assert models == {"linear", "neural"}

    def test_config_threading(self):
        config = ExperimentConfig(katz_beta=0.05, rw_steps=7)
        assert RANKING_METHODS["Katz"](config).beta == 0.05
        assert RANKING_METHODS["RW"](config).steps == 7

    def test_validate_method_name(self):
        assert validate_method_name("SSFNM") == "SSFNM"
        with pytest.raises(KeyError, match="SSFNM"):
            validate_method_name("bogus")


class TestMethodResult:
    def test_as_row_rounds(self):
        result = MethodResult(method="CN", auc=0.87654, f1=0.65432)
        assert result.as_row() == ("CN", 0.877, 0.654)

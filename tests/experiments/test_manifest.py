"""Tests for reproducibility manifests."""

import json

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.manifest import (
    build_manifest,
    verify_manifest,
    write_manifest,
)
from repro.sampling.splits import build_link_prediction_task


class TestBuildManifest:
    def test_fields(self, small_dataset):
        manifest = build_manifest(small_dataset, ExperimentConfig())
        assert manifest["manifest_version"] == 1
        assert manifest["config"]["k"] == 10
        assert manifest["network"]["links"] == small_dataset.number_of_links()
        assert len(manifest["network"]["fingerprint"]) == 64

    def test_with_task_and_extra(self, small_dataset):
        task = build_link_prediction_task(small_dataset, seed=0)
        manifest = build_manifest(
            small_dataset,
            ExperimentConfig(),
            task=task,
            extra={"note": "unit test"},
        )
        assert manifest["task"]["train_positive"] > 0
        assert manifest["extra"]["note"] == "unit test"

    def test_json_round_trip(self, small_dataset, tmp_path):
        manifest = build_manifest(small_dataset, ExperimentConfig())
        path = tmp_path / "manifest.json"
        write_manifest(manifest, path)
        assert json.loads(path.read_text()) == json.loads(
            json.dumps(manifest, default=str)
        )


class TestVerifyManifest:
    def test_clean_verification(self, small_dataset):
        manifest = build_manifest(small_dataset, ExperimentConfig())
        assert verify_manifest(manifest, small_dataset) == []

    def test_detects_network_change(self, small_dataset):
        manifest = build_manifest(small_dataset, ExperimentConfig())
        changed = small_dataset.copy()
        changed.add_edge("ghost1", "ghost2", 1)
        problems = verify_manifest(manifest, changed)
        assert any("fingerprint" in p for p in problems)

    def test_detects_version_drift(self, small_dataset):
        manifest = build_manifest(small_dataset, ExperimentConfig())
        manifest["repro_version"] = "0.0.1"
        problems = verify_manifest(manifest, small_dataset)
        assert any("version drift" in p for p in problems)

    def test_unsupported_manifest_version(self, small_dataset):
        problems = verify_manifest({"manifest_version": 99}, small_dataset)
        assert problems and "manifest version" in problems[0]

"""Tests for the top-level table harness helpers."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_table3
from repro.experiments.tables import format_table3


class TestRunTable3:
    @pytest.fixture(scope="class")
    def results(self):
        return run_table3(
            datasets=("co-author", "digg"),
            config=ExperimentConfig().fast(),
            methods=("CN", "SSFLR"),
            seed=0,
            scale=0.15,
        )

    def test_structure(self, results):
        assert set(results) == {"co-author", "digg"}
        for column in results.values():
            assert set(column) == {"CN", "SSFLR"}

    def test_renderable(self, results):
        text = format_table3(results, methods=("CN", "SSFLR"))
        assert "co-author" in text
        assert "digg" in text
        lines = text.splitlines()
        assert any(line.startswith("CN") for line in lines)

    def test_method_subset_order(self, results):
        text = format_table3(results, methods=("SSFLR", "CN"))
        # rendering respects METHOD_ORDER, not the requested order
        assert text.index("CN ") < text.index("SSFLR")

    def test_best_markers_present(self, results):
        text = format_table3(results)
        assert "*" in text


class TestRunnerWithParallelConfig:
    def test_n_jobs_smoke(self):
        """n_jobs=2 produces the same AUC as sequential extraction."""
        from repro.datasets.catalog import get_dataset
        from repro.experiments.runner import LinkPredictionExperiment

        network = get_dataset("co-author").generate(seed=0, scale=0.2)
        seq = LinkPredictionExperiment(
            network, ExperimentConfig(epochs=10, max_positives=80, n_jobs=1)
        ).run_method("SSFLR")
        par = LinkPredictionExperiment(
            network, ExperimentConfig(epochs=10, max_positives=80, n_jobs=2)
        ).run_method("SSFLR")
        assert seq.auc == par.auc
        assert seq.f1 == par.f1

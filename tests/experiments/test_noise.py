"""Tests for the noise-injection experiments."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.noise import (
    format_noise_sweep,
    noise_sweep,
    perturb_network,
)
from repro.graph.temporal import DynamicNetwork


class TestPerturbNetwork:
    def test_missing_drops_links(self, small_dataset):
        noisy = perturb_network(small_dataset, missing_fraction=0.3, seed=0)
        assert noisy.number_of_links() < small_dataset.number_of_links()
        assert noisy.number_of_links() == pytest.approx(
            0.7 * small_dataset.number_of_links(), rel=0.1
        )

    def test_false_adds_links(self, small_dataset):
        noisy = perturb_network(small_dataset, false_fraction=0.2, seed=0)
        added = noisy.number_of_links() - small_dataset.number_of_links()
        assert added == pytest.approx(0.2 * small_dataset.number_of_links(), rel=0.1)

    def test_false_links_use_existing_timestamps(self, small_dataset):
        noisy = perturb_network(small_dataset, false_fraction=0.2, seed=0)
        assert noisy.timestamp_set() <= small_dataset.timestamp_set()

    def test_nodes_preserved(self, small_dataset):
        noisy = perturb_network(small_dataset, missing_fraction=0.5, seed=0)
        assert set(noisy.nodes) == set(small_dataset.nodes)

    def test_zero_noise_is_identity(self, small_dataset):
        assert perturb_network(small_dataset) == small_dataset

    def test_deterministic(self, small_dataset):
        a = perturb_network(small_dataset, missing_fraction=0.3, seed=5)
        b = perturb_network(small_dataset, missing_fraction=0.3, seed=5)
        assert a == b

    def test_empty_network(self):
        assert perturb_network(DynamicNetwork()).number_of_links() == 0

    @pytest.mark.parametrize(
        "kwargs", [{"missing_fraction": 1.0}, {"false_fraction": -0.1}]
    )
    def test_validation(self, small_dataset, kwargs):
        with pytest.raises(ValueError):
            perturb_network(small_dataset, **kwargs)


class TestNoiseSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        from repro.datasets.synthetic import EventModelConfig, generate_event_network

        network = generate_event_network(
            EventModelConfig(
                n_nodes=60,
                n_links=600,
                span=20,
                repeat_prob=0.3,
                closure_prob=0.25,
                pa_prob=0.25,
                final_fraction=0.1,
            ),
            seed=7,
        )
        return noise_sweep(
            network,
            methods=("CN", "SSFLR"),
            noise_levels=(0.0, 0.3),
            kind="missing",
            config=ExperimentConfig().fast(),
        )

    def test_levels_present(self, sweep):
        assert set(sweep) == {0.0, 0.3}

    def test_noise_hurts_or_ties(self, sweep):
        # heavy missing-link noise should not *improve* CN markedly
        assert sweep[0.3]["CN"].auc <= sweep[0.0]["CN"].auc + 0.1

    def test_format(self, sweep):
        text = format_noise_sweep(sweep, kind="missing")
        assert "missing noise" in text
        assert "SSFLR" in text

    def test_kind_validation(self, small_dataset):
        with pytest.raises(ValueError):
            noise_sweep(small_dataset, kind="bogus")

"""Tests for ExperimentConfig."""

import pytest

from repro.experiments.config import ExperimentConfig


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.k == 10
        assert config.theta == 0.5
        assert config.learning_rate == 1e-3
        assert config.batch_size == 10
        assert config.train_fraction == 0.7
        assert config.katz_beta == 0.001

    def test_paper_settings_epochs(self):
        assert ExperimentConfig.paper_settings().epochs == 2000

    def test_with_k(self):
        config = ExperimentConfig().with_k(15)
        assert config.k == 15
        assert config.theta == 0.5  # everything else preserved

    def test_fast_variant(self):
        fast = ExperimentConfig().fast()
        assert fast.epochs < ExperimentConfig().epochs
        assert fast.max_positives is not None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 2},
            {"theta": 0.0},
            {"epochs": 0},
            {"train_fraction": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ExperimentConfig(**kwargs)

    def test_frozen(self):
        config = ExperimentConfig()
        with pytest.raises(AttributeError):
            config.k = 20

"""Tests for the experiment runner (feature cache, method evaluation)."""

import numpy as np
import pytest

from repro.datasets.catalog import get_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import LinkPredictionExperiment, run_dataset


@pytest.fixture(scope="module")
def experiment():
    net = get_dataset("co-author").generate(seed=0, scale=0.25)
    return LinkPredictionExperiment(net, ExperimentConfig().fast())


class TestFeatureCache:
    def test_shapes(self, experiment):
        for kind in ("ssf", "ssf_w", "wlf"):
            x_train, x_test = experiment.feature_matrices(kind)
            assert x_train.shape[0] == len(experiment.task.train_pairs)
            assert x_test.shape[0] == len(experiment.task.test_pairs)
            assert x_train.shape[1] == 44  # K=10

    def test_cache_identity(self, experiment):
        first = experiment.feature_matrices("ssf")
        second = experiment.feature_matrices("ssf")
        assert first[0] is second[0]

    def test_ssf_variants_differ(self, experiment):
        ssf = experiment.feature_matrices("ssf")[0]
        ssf_w = experiment.feature_matrices("ssf_w")[0]
        assert not np.allclose(ssf, ssf_w)

    def test_unknown_kind(self, experiment):
        with pytest.raises(ValueError):
            experiment.feature_matrices("bogus")


class TestRunMethod:
    @pytest.mark.parametrize("name", ["CN", "Katz", "RW", "NMF"])
    def test_ranking_methods(self, experiment, name):
        result = experiment.run_method(name)
        assert 0.0 <= result.auc <= 1.0
        assert 0.0 <= result.f1 <= 1.0
        assert "threshold" in result.extras

    @pytest.mark.parametrize("name", ["WLLR", "SSFLR", "SSFNM", "SSFNM-W"])
    def test_feature_methods(self, experiment, name):
        result = experiment.run_method(name)
        assert 0.0 <= result.auc <= 1.0
        assert result.method == name

    def test_unknown_method(self, experiment):
        with pytest.raises(KeyError):
            experiment.run_method("bogus")

    def test_run_methods_subset(self, experiment):
        results = experiment.run_methods(["CN", "PA"])
        assert set(results) == {"CN", "PA"}

    def test_better_than_chance(self, experiment):
        """SSFLR must beat chance on an easy synthetic dataset."""
        assert experiment.run_method("SSFLR").auc > 0.6


class TestRunDataset:
    def test_by_name(self):
        results = run_dataset(
            "co-author",
            config=ExperimentConfig().fast(),
            methods=["CN"],
            seed=0,
            scale=0.2,
        )
        assert "CN" in results

    def test_by_network(self, experiment):
        results = run_dataset(
            experiment.network,
            config=ExperimentConfig().fast(),
            methods=["PA"],
        )
        assert "PA" in results

    def test_reproducible(self):
        kwargs = dict(
            config=ExperimentConfig().fast(), methods=["CN"], seed=3, scale=0.2
        )
        r1 = run_dataset("digg", **kwargs)
        r2 = run_dataset("digg", **kwargs)
        assert r1["CN"].auc == r2["CN"].auc

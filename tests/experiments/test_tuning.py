"""Tests for the hyper-parameter grid search."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.tuning import GridSearchResult, grid_search


@pytest.fixture(scope="module")
def network():
    from repro.datasets.catalog import get_dataset

    return get_dataset("co-author").generate(seed=0, scale=0.3)


class TestGridSearch:
    @pytest.fixture(scope="class")
    def result(self, network):
        return grid_search(
            network,
            "SSFLR",
            {"k": (5, 8)},
            base_config=ExperimentConfig().fast(),
            n_folds=2,
            min_positives=5,
            seed=0,
        )

    def test_explores_whole_grid(self, result):
        assert len(result.table) == 2
        assert {params["k"] for params, _ in result.table} == {5, 8}

    def test_best_is_table_maximum(self, result):
        assert result.best_score == max(score for _, score in result.table)
        assert result.best_params == result.table[0][0]

    def test_scores_in_range(self, result):
        assert all(0.0 <= score <= 1.0 for _, score in result.table)

    def test_format(self, result):
        text = result.format()
        assert "SSFLR" in text and "best AUC" in text

    def test_multi_dimensional_grid(self, network):
        result = grid_search(
            network,
            "SSFLR",
            {"k": (5,), "theta": (0.25, 0.5)},
            base_config=ExperimentConfig().fast(),
            n_folds=1,
            min_positives=5,
        )
        assert len(result.table) == 2

    def test_validation(self, network):
        with pytest.raises(ValueError):
            grid_search(network, "SSFLR", {})
        with pytest.raises(ValueError):
            grid_search(network, "SSFLR", {"bogus_field": (1,)})
        with pytest.raises(ValueError):
            grid_search(network, "SSFLR", {"k": ()})

    def test_no_leakage_of_final_timestamp(self, network):
        """Validation folds must predict strictly before the last stamp."""
        from repro.sampling.temporal_cv import build_temporal_folds

        last = network.last_timestamp()
        development = network.slice(network.first_timestamp(), last)
        folds = build_temporal_folds(development, n_folds=2, min_positives=5)
        assert all(t < last for t in folds.prediction_times)

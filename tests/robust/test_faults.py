"""The fault-injection harness itself: arming, budgets, restoration."""

from __future__ import annotations

import os
import time

import pytest

from repro.robust import InjectedFault, inject
from repro.robust import faults


class TestInject:
    def test_sets_and_restores_env(self):
        assert "REPRO_FAULT_SHM_EXPORT" not in os.environ
        with inject("shm_export"):
            assert os.environ["REPRO_FAULT_SHM_EXPORT"] == "1"
        assert "REPRO_FAULT_SHM_EXPORT" not in os.environ

    def test_restores_previous_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SHM_EXPORT", "old")
        with inject("shm_export", "new"):
            assert os.environ["REPRO_FAULT_SHM_EXPORT"] == "new"
        assert os.environ["REPRO_FAULT_SHM_EXPORT"] == "old"

    def test_sets_budget_env(self, tmp_path):
        with inject("shm_export", fires=3, state_dir=str(tmp_path)):
            assert os.environ["REPRO_FAULT_SHM_EXPORT_FIRES"] == "3"
            assert os.environ["REPRO_FAULT_STATE_DIR"] == str(tmp_path)
        assert "REPRO_FAULT_SHM_EXPORT_FIRES" not in os.environ


class TestMaybeRaise:
    def test_unarmed_is_noop(self):
        faults.maybe_raise("shm_export")  # must not raise

    def test_armed_raises_injected_fault(self):
        with inject("shm_export"):
            with pytest.raises(InjectedFault):
                faults.maybe_raise("shm_export")

    def test_injected_fault_is_oserror(self):
        # Production shm error handling is `except OSError`; the injected
        # stand-in must travel the exact same path.
        assert issubclass(InjectedFault, OSError)

    def test_unlimited_without_state_dir(self):
        with inject("shm_attach"):
            for _ in range(5):
                with pytest.raises(InjectedFault):
                    faults.maybe_raise("shm_attach")

    def test_fire_budget_exhausts(self, tmp_path):
        with inject("shm_attach", fires=2, state_dir=str(tmp_path)):
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faults.maybe_raise("shm_attach")
            faults.maybe_raise("shm_attach")  # budget spent: no-op


class TestMaybeSlowChunk:
    def test_unarmed_is_noop(self):
        started = time.perf_counter()
        faults.maybe_slow_chunk(0)
        assert time.perf_counter() - started < 0.5

    def test_only_target_chunk_sleeps(self):
        with inject("slow_chunk", "3:0.05"):
            started = time.perf_counter()
            faults.maybe_slow_chunk(0)
            assert time.perf_counter() - started < 0.04
            started = time.perf_counter()
            faults.maybe_slow_chunk(3)
            assert time.perf_counter() - started >= 0.04


class TestMaybeCrashWorker:
    def test_unarmed_is_noop(self):
        faults.maybe_crash_worker(0)  # surviving this line is the assertion

    def test_other_indices_survive(self):
        with inject("worker_crash", "5"):
            faults.maybe_crash_worker(4)
            faults.maybe_crash_worker(6)
        # index 5 itself would os._exit(86) — exercised via a real pool in
        # test_parallel_retry.py, never in the test process.

    def test_exhausted_budget_survives(self, tmp_path):
        with inject("worker_crash", "5", fires=0, state_dir=str(tmp_path)):
            faults.maybe_crash_worker(5)

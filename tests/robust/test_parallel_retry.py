"""Fault-tolerant pool extraction: retries, fallback, chunking, policy.

Every recovery path must return features **bit-identical** to the
fault-free sequential run — that is the contract the experiments lean
on, and it holds because retries are pure re-execution of a
deterministic extraction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import parallel_extract_batch
from repro.robust import RetryPolicy, inject


def pooled(case, **kwargs):
    defaults = dict(
        present_time=case.present,
        workers=2,
        min_pairs=1,
        retry=RetryPolicy(max_retries=2, chunk_timeout=5.0),
    )
    defaults.update(kwargs)
    return parallel_extract_batch(case.history, case.config, case.pairs, **defaults)


class TestCrashRecovery:
    def test_single_crash_retried_bit_identical(
        self, extraction_case, tmp_path, metrics
    ):
        # The worker holding global pair index 3 dies hard exactly once;
        # the respawned pool re-runs only the lost chunk.
        with inject("worker_crash", "3", fires=1, state_dir=str(tmp_path)):
            result = pooled(extraction_case)
        assert np.array_equal(result, extraction_case.reference)
        assert metrics.counter("robust.retries") >= 1.0
        assert metrics.counter("robust.fallbacks") == 0.0

    def test_persistent_crash_falls_back_sequential(self, extraction_case, metrics):
        # No fire budget: the crash hits every pool round, so after
        # max_retries the parent must extract the stragglers itself —
        # slower, but complete and still bit-identical.
        with inject("worker_crash", "3"):
            result = pooled(
                extraction_case, retry=RetryPolicy(max_retries=1, chunk_timeout=3.0)
            )
        assert np.array_equal(result, extraction_case.reference)
        assert metrics.counter("robust.fallbacks") >= 1.0

    def test_hung_chunk_times_out_and_is_retried(
        self, extraction_case, tmp_path, metrics
    ):
        # Chunk 0 sleeps far past the timeout once; the round is declared
        # hung, the pool torn down, and the chunk re-run cleanly.
        with inject("slow_chunk", "0:30", fires=1, state_dir=str(tmp_path)):
            result = pooled(
                extraction_case, retry=RetryPolicy(max_retries=2, chunk_timeout=2.0)
            )
        assert np.array_equal(result, extraction_case.reference)
        assert metrics.counter("robust.retries") >= 1.0


class TestChunking:
    def test_chunksize_zero_rejected(self, extraction_case):
        # Regression: `if chunksize:` silently replaced an explicit 0
        # with the default; the guard must see it and refuse.
        with pytest.raises(ValueError, match="chunksize"):
            pooled(extraction_case, chunksize=0)

    def test_negative_chunksize_rejected(self, extraction_case):
        with pytest.raises(ValueError, match="chunksize"):
            pooled(extraction_case, chunksize=-2)

    def test_explicit_chunksize_bit_identical(self, extraction_case):
        result = pooled(extraction_case, chunksize=7)
        assert np.array_equal(result, extraction_case.reference)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(chunk_timeout=0.0)
        assert RetryPolicy(chunk_timeout=None).chunk_timeout is None

    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_MAX_RETRIES", raising=False)
        monkeypatch.delenv("REPRO_PARALLEL_CHUNK_TIMEOUT", raising=False)
        policy = RetryPolicy.from_env()
        assert policy == RetryPolicy()

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_PARALLEL_CHUNK_TIMEOUT", "12.5")
        policy = RetryPolicy.from_env()
        assert policy.max_retries == 5
        assert policy.chunk_timeout == pytest.approx(12.5)

    def test_from_env_none_disables_timeout(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_CHUNK_TIMEOUT", "none")
        assert RetryPolicy.from_env().chunk_timeout is None

    def test_explicit_args_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MAX_RETRIES", "5")
        monkeypatch.setenv("REPRO_PARALLEL_CHUNK_TIMEOUT", "12.5")
        policy = RetryPolicy.from_env(
            max_retries=1, chunk_timeout=None, use_timeout_arg=True
        )
        assert policy.max_retries == 1
        assert policy.chunk_timeout is None

"""Checkpoint/resume: cell persistence, exactness, and the resume flow.

The acceptance bar: a run killed partway and resumed into the same
directory must produce ``MethodResult``\\ s *equal* to an uninterrupted
run — exact float equality and bit-equal score arrays, not approximate.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.methods import MethodResult
from repro.experiments.runner import run_dataset, run_table3, table3_manifest
from repro.robust.checkpoint import CheckpointMismatchError, RunCheckpoint


def assert_results_equal(a: MethodResult, b: MethodResult) -> None:
    assert a.method == b.method
    # Exact equality on purpose: the checkpoint round-trips floats via
    # JSON shortest-repr and arrays via .npz, both bit-exact.
    assert a.auc == pytest.approx(b.auc, abs=0.0)
    assert a.f1 == pytest.approx(b.f1, abs=0.0)
    assert set(a.extras) == set(b.extras)
    for key, value in a.extras.items():
        other = b.extras[key]
        if isinstance(value, np.ndarray):
            assert other.dtype == value.dtype
            assert np.array_equal(other, value)
        else:
            assert other == pytest.approx(value, abs=0.0)


class TestRunCheckpoint:
    def test_result_roundtrip_exact(self, tmp_path):
        rng = np.random.default_rng(0)
        original = MethodResult(
            method="SSF+NM",
            auc=0.9134782964512347,
            f1=1.0 / 3.0,
            extras={"test_scores": rng.normal(size=37), "threshold": 0.125},
        )
        ckpt = RunCheckpoint(tmp_path)
        ckpt.save_result("co-author", original)
        restored = ckpt.load_result("co-author", "SSF+NM")
        assert restored is not None
        assert_results_equal(restored, original)
        assert ckpt.has_result("co-author", "SSF+NM")
        assert ckpt.completed_cells() == [("co-author", "SSF+NM")]

    def test_missing_cell_is_none(self, tmp_path):
        ckpt = RunCheckpoint(tmp_path)
        assert ckpt.load_result("co-author", "CN") is None
        assert not ckpt.has_result("co-author", "CN")

    def test_corrupt_cell_recomputed(self, tmp_path):
        ckpt = RunCheckpoint(tmp_path)
        ckpt.save_result("co-author", MethodResult("CN", 0.5, 0.5))
        path = tmp_path / "co-author" / "method_CN.json"
        path.write_text("{ not json", encoding="utf-8")
        assert ckpt.load_result("co-author", "CN") is None

    def test_mislabelled_cell_recomputed(self, tmp_path):
        # A cell file claiming to hold a different method is never trusted.
        ckpt = RunCheckpoint(tmp_path)
        ckpt.save_result("co-author", MethodResult("CN", 0.5, 0.5))
        src = tmp_path / "co-author" / "method_CN.json"
        (tmp_path / "co-author" / "method_AA.json").write_bytes(src.read_bytes())
        assert ckpt.load_result("co-author", "AA") is None

    def test_features_roundtrip_bit_exact(self, tmp_path):
        rng = np.random.default_rng(1)
        train, test = rng.normal(size=(10, 6)), rng.normal(size=(4, 6))
        ckpt = RunCheckpoint(tmp_path)
        ckpt.save_features("co-author", "ssf", train, test)
        loaded = ckpt.load_features("co-author", "ssf")
        assert loaded is not None
        assert np.array_equal(loaded[0], train) and loaded[0].dtype == train.dtype
        assert np.array_equal(loaded[1], test) and loaded[1].dtype == test.dtype
        assert ckpt.load_features("co-author", "wlf") is None

    def test_manifest_mismatch_refused(self, tmp_path):
        ckpt = RunCheckpoint(tmp_path)
        manifest = table3_manifest(["co-author"], ExperimentConfig(), ["CN"], 0, 1.0)
        ckpt.ensure_manifest(manifest)
        ckpt.ensure_manifest(manifest)  # identical settings: fine
        drifted = table3_manifest(["co-author"], ExperimentConfig(), ["CN"], 1, 1.0)
        with pytest.raises(CheckpointMismatchError):
            ckpt.ensure_manifest(drifted)


class TestResumeFlow:
    METHODS = ("CN", "SSFLR", "SSFNM")
    CONFIG = replace(ExperimentConfig().fast(), k=6)

    @pytest.fixture(scope="class")
    def baseline(self, toy_network):
        """The uninterrupted run every resumed run must reproduce."""
        return run_dataset(
            toy_network, config=self.CONFIG, methods=self.METHODS
        )

    def test_resumed_run_equals_uninterrupted(
        self, toy_network, baseline, tmp_path, metrics
    ):
        ckpt = RunCheckpoint(tmp_path)
        # "Kill" the run after two cells: only CN and SSFLR complete.
        partial = run_dataset(
            toy_network,
            config=self.CONFIG,
            methods=("CN", "SSFLR"),
            checkpoint=ckpt,
            dataset_name="toy",
        )
        assert sorted(ckpt.completed_cells()) == [("toy", "CN"), ("toy", "SSFLR")]
        for name, result in partial.items():
            assert_results_equal(result, baseline[name])

        # Resume the full method list into the same directory: completed
        # cells come off disk, SSFNM reuses the checkpointed feature
        # matrices, and everything equals the uninterrupted run exactly.
        resumed = run_dataset(
            toy_network,
            config=self.CONFIG,
            methods=self.METHODS,
            checkpoint=RunCheckpoint(tmp_path),
            dataset_name="toy",
        )
        for name in self.METHODS:
            assert_results_equal(resumed[name], baseline[name])
        assert metrics.counter("robust.resumed_cells") == 2.0
        # both ssf kinds restored instead of re-extracted
        assert metrics.counter("robust.resumed_features") >= 2.0

    def test_second_pass_is_fully_resumed(self, toy_network, baseline, tmp_path, metrics):
        ckpt_dir = tmp_path / "run"
        first = run_dataset(
            toy_network,
            config=self.CONFIG,
            methods=self.METHODS,
            checkpoint=RunCheckpoint(ckpt_dir),
            dataset_name="toy",
        )
        second = run_dataset(
            toy_network,
            config=self.CONFIG,
            methods=self.METHODS,
            checkpoint=RunCheckpoint(ckpt_dir),
            dataset_name="toy",
        )
        for name in self.METHODS:
            assert_results_equal(first[name], baseline[name])
            assert_results_equal(second[name], first[name])
        assert metrics.counter("robust.resumed_cells") == float(len(self.METHODS))


class TestTable3Checkpointing:
    def test_run_table3_resumes_and_guards_settings(self, tmp_path, metrics):
        config = replace(ExperimentConfig().fast(), k=6, max_positives=30)
        kwargs = dict(
            datasets=["co-author"],
            config=config,
            methods=["CN"],
            seed=0,
            scale=0.15,
        )
        first = run_table3(checkpoint_dir=str(tmp_path), **kwargs)
        assert (tmp_path / "manifest.json").exists()
        second = run_table3(checkpoint_dir=str(tmp_path), **kwargs)
        assert_results_equal(
            second["co-author"]["CN"], first["co-author"]["CN"]
        )
        assert metrics.counter("robust.resumed_cells") == 1.0
        with pytest.raises(CheckpointMismatchError):
            run_table3(checkpoint_dir=str(tmp_path), **dict(kwargs, seed=1))


class TestCLI:
    def test_resume_requires_existing_directory(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(
                [
                    "table3",
                    "--dataset",
                    "co-author",
                    "--resume",
                    str(tmp_path / "does-not-exist"),
                ]
            )

    def test_checkpoint_dir_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        run_dir = tmp_path / "run"
        argv = [
            "table3",
            "--dataset",
            "co-author",
            "--scale",
            "0.15",
            "--max-positives",
            "30",
            "--methods",
            "CN",
            "--checkpoint-dir",
            str(run_dir),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert (run_dir / "co-author" / "method_CN.json").exists()
        # --resume into the populated directory reproduces the table
        resumed_argv = argv[:-2] + ["--resume", str(run_dir)]
        assert main(resumed_argv) == 0
        assert capsys.readouterr().out == first

"""Shared fixtures for the robustness suite.

The parallel-extraction tests all need the same thing: a non-trivial
pair batch plus its fault-free sequential feature matrix to compare
against (every fault-tolerance guarantee is "bit-identical to the
fault-free run").  Both are session-scoped — the case is deterministic
and read-only.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro import obs
from repro.core.feature import SSFConfig
from repro.core.parallel import parallel_extract_batch
from repro.datasets.catalog import get_dataset
from repro.sampling.splits import build_link_prediction_task


@pytest.fixture(scope="session")
def extraction_case() -> SimpleNamespace:
    """A deterministic extraction batch and its sequential reference."""
    network = get_dataset("co-author").generate(seed=0, scale=0.25)
    task = build_link_prediction_task(network, max_positives=60, seed=0)
    config = SSFConfig(k=6)
    pairs = list(task.train_pairs)
    reference = parallel_extract_batch(
        task.history, config, pairs, present_time=task.present_time, workers=1
    )
    return SimpleNamespace(
        history=task.history,
        present=task.present_time,
        pairs=pairs,
        config=config,
        reference=reference,
    )


class MetricsProbe:
    """Counter lookups against a live registry (0.0 when never fired)."""

    def __init__(self, registry) -> None:
        self.registry = registry

    def counter(self, name: str) -> float:
        return self.registry.snapshot()["counters"].get(name, 0.0)


@pytest.fixture(scope="session")
def toy_network():
    """The ``small_dataset`` network, session-scoped for resume tests.

    The resume suite compares several full experiment runs against one
    shared baseline; a session scope keeps the (deterministic) network
    build out of every test.
    """
    from repro.datasets.synthetic import EventModelConfig, generate_event_network

    config = EventModelConfig(
        n_nodes=60,
        n_links=600,
        span=20,
        repeat_prob=0.3,
        closure_prob=0.25,
        pa_prob=0.25,
        final_fraction=0.1,
    )
    return generate_event_network(config, seed=7)


@pytest.fixture
def metrics():
    """A fresh, enabled metrics registry probe (restored afterwards)."""
    was_enabled = obs.enabled()
    obs.enable()
    registry = obs.get_registry()
    registry.reset()
    try:
        yield MetricsProbe(registry)
    finally:
        registry.reset()
        if not was_enabled:
            obs.disable()

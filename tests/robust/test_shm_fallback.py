"""Graceful degradation of the spawn-path shared-memory transport.

``REPRO_START_METHOD=spawn`` forces the pool onto the spawn start
method, which is the only path that uses ``multiprocessing.shared_memory``
— under fork the snapshot is inherited copy-on-write and shm never runs.
Export and attach failures are injected at their real call sites inside
:class:`~repro.graph.csr.CSRSnapshot`; every degradation must keep the
features bit-identical to the fault-free sequential run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.parallel import parallel_extract_batch
from repro.graph.csr import CSRSnapshot
from repro.robust import RetryPolicy, inject


@pytest.fixture(autouse=True)
def force_spawn(monkeypatch):
    monkeypatch.setenv("REPRO_START_METHOD", "spawn")


def pooled(case, network=None, **kwargs):
    defaults = dict(
        present_time=case.present,
        workers=2,
        min_pairs=1,
        backend="csr",
        retry=RetryPolicy(max_retries=1, chunk_timeout=60.0),
    )
    defaults.update(kwargs)
    return parallel_extract_batch(
        network if network is not None else case.history,
        case.config,
        case.pairs,
        **defaults,
    )


def test_spawn_shared_memory_bit_identical(extraction_case):
    # The healthy spawn/shm transport itself must match the reference.
    result = pooled(extraction_case)
    assert np.array_equal(result, extraction_case.reference)


def test_shm_export_failure_degrades_to_dict(extraction_case, metrics):
    # to_shared() fails in the parent before the pool starts: the batch
    # must fall back to the pickled dict payload, not abort.
    with inject("shm_export"):
        result = pooled(extraction_case)
    assert np.array_equal(result, extraction_case.reference)
    assert metrics.counter("robust.fallbacks") >= 1.0


def test_shm_attach_failure_degrades_without_spending_retries(
    extraction_case, tmp_path, metrics
):
    # from_shared() fails inside both workers: the parent must respawn
    # the pool with a degraded payload even with max_retries=0 — a
    # transport downgrade is not a retry.
    with inject("shm_attach", fires=2, state_dir=str(tmp_path)):
        result = pooled(
            extraction_case, retry=RetryPolicy(max_retries=0, chunk_timeout=60.0)
        )
    assert np.array_equal(result, extraction_case.reference)
    assert metrics.counter("robust.fallbacks") >= 1.0


def test_prebuilt_snapshot_degrades_to_pickled_csr(extraction_case, metrics):
    # A caller-provided CSRSnapshot has no dict twin, so the export
    # failure ships the snapshot pickled per worker instead.
    snapshot = CSRSnapshot.from_dynamic(extraction_case.history)
    with inject("shm_export"):
        result = pooled(extraction_case, network=snapshot)
    assert np.array_equal(result, extraction_case.reference)
    assert metrics.counter("robust.fallbacks") >= 1.0


def test_snapshot_pickle_roundtrip(extraction_case):
    # The degraded csr payload crosses the spawn boundary via pickle.
    import pickle

    snapshot = CSRSnapshot.from_dynamic(extraction_case.history)
    clone = pickle.loads(pickle.dumps(snapshot))
    assert list(clone.labels) == list(snapshot.labels)
    assert np.array_equal(clone.indptr, snapshot.indptr)
    assert np.array_equal(clone.indices, snapshot.indices)
    assert np.array_equal(clone.ts_indptr, snapshot.ts_indptr)
    assert np.array_equal(clone.ts, snapshot.ts)

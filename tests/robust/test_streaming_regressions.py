"""Regression pins for the streaming correctness fixes.

Three bugs, three pins:

1. ``_sample_negatives`` used to label historically-linked pairs as
   negatives, feeding the online model contradictory training data.
2. ``prequential_evaluate`` used to sample negatives from the *full*
   network's nodes, admitting future-only nodes whose empty-history
   features trivially rank last and inflate the AUC.
3. ``score()`` used to hard-code ``present = current_time + 1.0``,
   distorting the ``exp(-θ·Δt)`` influence on non-unit-spaced streams.
"""

from __future__ import annotations

import pytest

import repro.streaming.prequential as prequential
from repro.datasets.synthetic import EventModelConfig, generate_event_network
from repro.streaming.prequential import (
    StreamingSSFPredictor,
    prequential_evaluate,
)


class TestNegativeSamplingExcludesHistory:
    def test_negatives_never_linked_in_history(self):
        # A near-complete 8-node history: random pairs are almost always
        # linked, so a sampler without the history check cannot miss.
        predictor = StreamingSSFPredictor(seed=3)
        nodes = list(range(8))
        spared = {frozenset((0, 1)), frozenset((2, 3)), frozenset((4, 5))}
        edges = [
            (u, v, 1.0)
            for i, u in enumerate(nodes)
            for v in nodes[i + 1 :]
            if frozenset((u, v)) not in spared
        ]
        predictor.observe(edges)
        negatives = predictor._sample_negatives(3, positives=[])
        assert negatives, "dense history still has unlinked pairs to offer"
        for u, v in negatives:
            assert not predictor.history.has_edge(u, v)
            assert frozenset((u, v)) in spared

    def test_positives_of_the_stamp_still_excluded(self):
        predictor = StreamingSSFPredictor(seed=0)
        predictor.observe([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        positives = [(0, 3)]
        negatives = predictor._sample_negatives(5, positives)
        assert frozenset((0, 3)) not in {frozenset(p) for p in negatives}


class TestScoringTime:
    def make(self):
        return StreamingSSFPredictor(seed=0)

    def test_no_history_defaults_to_one(self):
        assert self.make().scoring_time() == pytest.approx(1.0)

    def test_single_stamp_steps_by_one(self):
        predictor = self.make()
        predictor.observe([(0, 1, 7.0)])
        assert predictor.scoring_time() == pytest.approx(8.0)

    def test_median_gap_replaces_hardcoded_unit_step(self):
        # Stamps 10, 20, 30: the old `+ 1.0` would score at 31 and treat
        # every link as ~one spacing fresher than the next real stamp.
        predictor = self.make()
        predictor.observe([(0, 1, 10.0)])
        predictor.observe([(1, 2, 20.0)])
        predictor.observe([(2, 3, 30.0)])
        assert predictor.scoring_time() == pytest.approx(40.0)

    def test_median_is_robust_to_burst_gaps(self):
        predictor = self.make()
        for i, stamp in enumerate((0.0, 1.0, 2.0, 3.0, 103.0)):
            predictor.observe([(i, i + 1, stamp)])
        assert predictor.scoring_time() == pytest.approx(104.0)


class TestEvaluateSamplesFromObservedNodes:
    FUTURE_BASE = 10_000

    def test_future_only_nodes_never_in_negative_pool(self, monkeypatch):
        config = EventModelConfig(
            n_nodes=40,
            n_links=400,
            span=16,
            repeat_prob=0.3,
            closure_prob=0.25,
            pa_prob=0.25,
            final_fraction=0.1,
        )
        network = generate_event_network(config, seed=11)
        # Nodes >= FUTURE_BASE exist only at a brand-new final stamp —
        # the regression admitted them into every window's negative pool.
        last = max(network.timestamp_set())
        for i in range(6):
            network.add_edge(
                self.FUTURE_BASE + i, self.FUTURE_BASE + i + 1, last + 1.0
            )

        pools: list[list] = []
        real_sampler = prequential._random_negatives

        def recording_sampler(nodes, count, forbidden, rng):
            pools.append(list(nodes))
            return real_sampler(nodes, count, forbidden, rng)

        monkeypatch.setattr(prequential, "_random_negatives", recording_sampler)
        result = prequential_evaluate(
            network,
            StreamingSSFPredictor(seed=0),
            warmup_fraction=0.4,
            min_positives=3,
            seed=0,
        )
        assert pools, "the stream must score at least one window"
        assert result.aucs
        for pool in pools:
            assert all(node < self.FUTURE_BASE for node in pool)

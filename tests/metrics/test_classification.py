"""Tests for the from-scratch classification metrics."""

import numpy as np
import pytest

from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)


class TestRocAucScore:
    def test_perfect(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted(self):
        assert roc_auc_score([1, 1, 0, 0], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=5000)
        scores = rng.random(5000)
        assert roc_auc_score(labels, scores) == pytest.approx(0.5, abs=0.03)

    def test_ties_half_credit(self):
        assert roc_auc_score([0, 1], [0.5, 0.5]) == 0.5

    def test_partial(self):
        # one inversion among 4 pos-neg pairs: AUC = 3/4
        assert roc_auc_score([0, 1, 0, 1], [0.1, 0.4, 0.5, 0.9]) == 0.75

    def test_matches_trapezoidal_area(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, size=300)
        scores = rng.random(300) + labels * 0.3
        fpr, tpr, _ = roc_curve(labels, scores)
        area = np.trapezoid(tpr, fpr)
        assert roc_auc_score(labels, scores) == pytest.approx(area)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score([1, 1], [0.5, 0.6])

    def test_non_binary_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score([0, 2], [0.5, 0.6])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc_score([0, 1], [0.5])


class TestConfusionAndDerived:
    def test_confusion_matrix(self):
        mat = confusion_matrix([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
        assert np.array_equal(mat, [[1, 1], [1, 2]])

    def test_precision(self):
        assert precision_score([0, 0, 1, 1, 1], [0, 1, 1, 1, 0]) == pytest.approx(2 / 3)

    def test_recall(self):
        assert recall_score([0, 0, 1, 1, 1], [0, 1, 1, 1, 0]) == pytest.approx(2 / 3)

    def test_f1_harmonic_mean(self):
        p = precision_score([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
        r = recall_score([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
        f1 = f1_score([0, 0, 1, 1, 1], [0, 1, 1, 1, 0])
        assert f1 == pytest.approx(2 * p * r / (p + r))

    def test_f1_zero_when_nothing_predicted(self):
        assert f1_score([1, 1], [0, 0]) == 0.0

    def test_precision_zero_division(self):
        assert precision_score([1, 0], [0, 0]) == 0.0

    def test_recall_no_positives(self):
        assert recall_score([0, 0], [0, 1]) == 0.0

    def test_accuracy(self):
        assert accuracy_score([0, 1, 1], [0, 1, 0]) == pytest.approx(2 / 3)

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestCurves:
    def test_roc_curve_endpoints(self):
        fpr, tpr, thresholds = roc_curve([0, 1, 0, 1], [0.1, 0.9, 0.4, 0.6])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_roc_curve_monotone(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=100)
        scores = rng.random(100)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert (np.diff(fpr) >= 0).all()
        assert (np.diff(tpr) >= 0).all()

    def test_pr_curve_final_recall_one(self):
        precision, recall, _ = precision_recall_curve(
            [0, 1, 1], [0.2, 0.8, 0.4]
        )
        assert recall[-1] == 1.0

    def test_pr_curve_needs_positive(self):
        with pytest.raises(ValueError):
            precision_recall_curve([0, 0], [0.2, 0.8])

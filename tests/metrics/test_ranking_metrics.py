"""Tests for the ranking metrics."""

import numpy as np
import pytest

from repro.metrics.ranking import (
    average_precision,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)

LABELS = np.array([1, 0, 1, 0, 0, 1])
SCORES = np.array([0.9, 0.8, 0.7, 0.6, 0.5, 0.4])
# ranking: pos, neg, pos, neg, neg, pos


class TestPrecisionAtK:
    def test_values(self):
        assert precision_at_k(LABELS, SCORES, 1) == 1.0
        assert precision_at_k(LABELS, SCORES, 2) == 0.5
        assert precision_at_k(LABELS, SCORES, 3) == pytest.approx(2 / 3)
        assert precision_at_k(LABELS, SCORES, 6) == 0.5

    def test_k_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(LABELS, SCORES, 0)
        with pytest.raises(ValueError):
            precision_at_k(LABELS, SCORES, 7)

    def test_perfect_ranking(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert precision_at_k(labels, scores, 2) == 1.0


class TestRecallAtK:
    def test_values(self):
        assert recall_at_k(LABELS, SCORES, 1) == pytest.approx(1 / 3)
        assert recall_at_k(LABELS, SCORES, 3) == pytest.approx(2 / 3)
        assert recall_at_k(LABELS, SCORES, 6) == 1.0

    def test_needs_positive(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros(3, dtype=int), np.arange(3), 1)


class TestAveragePrecision:
    def test_hand_computed(self):
        # positives at ranks 1, 3, 6: AP = (1/1 + 2/3 + 3/6) / 3
        expected = (1.0 + 2 / 3 + 0.5) / 3
        assert average_precision(LABELS, SCORES) == pytest.approx(expected)

    def test_perfect(self):
        labels = np.array([0, 1, 1])
        scores = np.array([0.1, 0.9, 0.8])
        assert average_precision(labels, scores) == 1.0

    def test_worst(self):
        labels = np.array([1, 0, 0])
        scores = np.array([0.1, 0.9, 0.8])
        assert average_precision(labels, scores) == pytest.approx(1 / 3)

    def test_needs_positive(self):
        with pytest.raises(ValueError):
            average_precision(np.zeros(3, dtype=int), np.arange(3))


class TestReciprocalRank:
    def test_first(self):
        assert reciprocal_rank(LABELS, SCORES) == 1.0

    def test_later(self):
        labels = np.array([0, 0, 1])
        scores = np.array([0.9, 0.8, 0.7])
        assert reciprocal_rank(labels, scores) == pytest.approx(1 / 3)

    def test_needs_positive(self):
        with pytest.raises(ValueError):
            reciprocal_rank(np.zeros(2, dtype=int), np.arange(2))

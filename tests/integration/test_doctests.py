"""Run the docstring examples of the documented public modules."""

import doctest

import pytest

import repro.core.feature
import repro.graph.temporal
import repro.models.linear
import repro.models.neural

MODULES = (
    repro.graph.temporal,
    repro.core.feature,
    repro.models.linear,
    repro.models.neural,
)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module.__name__}"
    assert result.attempted > 0  # the examples actually exist

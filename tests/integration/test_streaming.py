"""Tests for the prequential streaming evaluation."""

import numpy as np
import pytest

from repro.core.feature import SSFConfig
from repro.streaming import (
    PrequentialResult,
    StreamingSSFPredictor,
    prequential_evaluate,
)


class TestStreamingPredictor:
    def test_observe_builds_history(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        predictor.observe([("a", "b", 1.0), ("b", "c", 1.0)])
        predictor.observe([("c", "d", 2.0)])
        assert predictor.history.number_of_links() == 3

    def test_rejects_time_regression(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        predictor.observe([("a", "b", 2.0)])
        with pytest.raises(ValueError, match="advance"):
            predictor.observe([("b", "c", 1.0)])

    def test_rejects_mixed_timestamps(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        with pytest.raises(ValueError, match="single timestamp"):
            predictor.observe([("a", "b", 1.0), ("b", "c", 2.0)])

    def test_observe_skips_unknown_endpoint_positives(self):
        """Regression: a link whose endpoint first appears with this very
        stamp must not be harvested as a training positive — its features
        are the degenerate empty-history vector, and labelling it 1 while
        negatives come from observed nodes teaches 'degenerate ⇒ 1'."""
        predictor = StreamingSSFPredictor(SSFConfig(k=4), seed=0)
        predictor.observe([("a", "b", 1.0), ("b", "c", 1.0)])
        predictor.observe([("a", "c", 2.0), ("x", "y", 2.0), ("c", "z", 2.0)])
        positives = {
            pair
            for pair, label in zip(
                predictor._window_pairs, predictor._window_labels
            )
            if label == 1
        }
        assert ("a", "c") in positives
        assert ("x", "y") not in positives
        assert ("c", "z") not in positives
        # the new nodes still enter the history for future stamps
        assert predictor.history.has_node("x")
        assert predictor.history.has_node("z")

    def test_scores_zero_before_model_ready(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        predictor.observe([("a", "b", 1.0)])
        assert not predictor.is_ready
        assert np.allclose(predictor.score([("a", "b")]), 0.0)

    def test_becomes_ready_with_data(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=6), refit_every=1, seed=0
        )
        for stamp in sorted(small_dataset.timestamp_set()):
            edges = [
                (u, v, ts) for u, v, ts in small_dataset.edges() if ts == stamp
            ]
            predictor.observe(edges)
        assert predictor.is_ready
        scores = predictor.score(list(small_dataset.pair_iter())[:5])
        assert scores.shape == (5,)

    def test_window_bounded(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=5), window_size=40, refit_every=5, seed=0
        )
        for stamp in sorted(small_dataset.timestamp_set()):
            edges = [
                (u, v, ts) for u, v, ts in small_dataset.edges() if ts == stamp
            ]
            predictor.observe(edges)
        assert len(predictor._window_pairs) <= 40

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model": "bogus"},
            {"refit_every": 0},
            {"window_size": 5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamingSSFPredictor(SSFConfig(k=4), **kwargs)


class TestPrequentialEvaluate:
    def test_beats_chance_on_easy_stream(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=8), model="linear", refit_every=2, seed=0
        )
        result = prequential_evaluate(
            small_dataset, predictor, warmup_fraction=0.5, min_positives=5
        )
        assert len(result.aucs) >= 3
        assert result.mean_auc > 0.6

    def test_warmup_skips_early_stamps(self, small_dataset):
        predictor = StreamingSSFPredictor(SSFConfig(k=6), seed=0)
        result = prequential_evaluate(
            small_dataset, predictor, warmup_fraction=0.8, min_positives=5
        )
        stamps = sorted(small_dataset.timestamp_set())
        cutoff = stamps[int(len(stamps) * 0.8)]
        assert all(t > cutoff for t in result.timestamps)

    def test_validation(self, small_dataset):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        with pytest.raises(ValueError):
            prequential_evaluate(small_dataset, predictor, warmup_fraction=1.0)

    def test_empty_result_nan_mean(self):
        assert np.isnan(PrequentialResult().mean_auc)


class _ScriptedPredictor:
    """Duck-typed streaming predictor whose per-window quality is scripted.

    Scores the first ``good_windows`` scored windows perfectly (AUC 1.0)
    and inverts every later window (AUC 0.0) — a deterministic quality
    collapse for exercising the drift monitors.
    """

    is_ready = True

    def __init__(self, good_windows=2):
        from repro.graph import DynamicNetwork

        self.history = DynamicNetwork()
        self.good_windows = good_windows
        self.windows_scored = 0
        self._current_positives = set()

    def _new_positive_pairs(self, edges):
        seen, out = set(), []
        for u, v, _ in edges:
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                out.append((u, v))
        self._current_positives = seen
        return out

    def score(self, pairs):
        good = self.windows_scored < self.good_windows
        self.windows_scored += 1
        # drifted windows rank negatives above positives AND compress the
        # score distribution, so auc_drift and score_shift both move
        hit, miss = (1.0, 0.0) if good else (0.0, 0.2)
        return np.array(
            [
                hit if frozenset(p) in self._current_positives else miss
                for p in pairs
            ]
        )

    def observe(self, edges):
        self.history.add_edges_from(edges)


def _drifting_network():
    """Four stamps: a base graph, then three dense waves over its nodes."""
    from repro.graph import DynamicNetwork

    nodes = [f"n{i}" for i in range(12)]
    network = DynamicNetwork()
    for i in range(12):
        network.add_edge(nodes[i], nodes[(i + 1) % 12], 0.0)
    for stamp, offset in ((1.0, 2), (2.0, 3), (3.0, 4)):
        for i in range(6):
            network.add_edge(nodes[i], nodes[(i + offset) % 12], stamp)
    return network


class TestDriftMonitors:
    def _run(self, **kwargs):
        from repro import obs
        from repro.obs.metrics import get_registry

        obs.enable()
        get_registry().reset()
        try:
            result = prequential_evaluate(
                _drifting_network(),
                _ScriptedPredictor(good_windows=2),
                warmup_fraction=0.0,
                min_positives=5,
                seed=0,
                **kwargs,
            )
            snapshot = get_registry().snapshot()
        finally:
            obs.disable()
            get_registry().reset()
        return result, snapshot

    def test_collapse_fires_one_structured_alert(self):
        result, snapshot = self._run(drift_threshold=0.2)
        assert result.aucs == [1.0, 1.0, 0.0]
        assert len(result.alerts) == 1
        alert = result.alerts[0]
        assert alert["timestamp"] == 3.0
        assert alert["auc"] == 0.0
        assert alert["mean_auc"] == 1.0
        assert alert["drift"] == 1.0
        assert alert["threshold"] == 0.2
        assert snapshot["counters"]["stream.drift_alerts"] == 1.0
        assert snapshot["counters"]["obs.alerts.auc_drift"] == 1.0

    def test_gauges_track_the_last_window(self):
        _, snapshot = self._run(drift_threshold=0.2)
        gauges = snapshot["gauges"]
        assert gauges["stream.last_window_auc"] == 0.0
        assert gauges["stream.auc_drift"] == -1.0
        assert gauges["stream.positive_rate"] == 0.5
        assert gauges["stream.score_shift"] < 0
        assert snapshot["counters"]["stream.windows_scored"] == 3.0
        assert snapshot["histograms"]["stream.window_auc"]["count"] == 3

    def test_none_threshold_disables_alerting(self):
        result, snapshot = self._run(drift_threshold=None)
        assert result.aucs == [1.0, 1.0, 0.0]  # scoring is unchanged
        assert result.alerts == []
        assert "stream.drift_alerts" not in snapshot["counters"]

    def test_nonpositive_threshold_rejected(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            prequential_evaluate(
                _drifting_network(),
                _ScriptedPredictor(),
                drift_threshold=-0.5,
            )


class TestNeuralStreamingVariant:
    def test_neural_model_stream(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=5),
            model="neural",
            refit_every=5,
            epochs=10,
            seed=0,
        )
        result = prequential_evaluate(
            small_dataset, predictor, warmup_fraction=0.6, min_positives=5
        )
        assert predictor.is_ready
        assert all(0.0 <= auc <= 1.0 for auc in result.aucs)

"""Tests for the prequential streaming evaluation."""

import numpy as np
import pytest

from repro.core.feature import SSFConfig
from repro.streaming import (
    PrequentialResult,
    StreamingSSFPredictor,
    prequential_evaluate,
)


class TestStreamingPredictor:
    def test_observe_builds_history(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        predictor.observe([("a", "b", 1.0), ("b", "c", 1.0)])
        predictor.observe([("c", "d", 2.0)])
        assert predictor.history.number_of_links() == 3

    def test_rejects_time_regression(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        predictor.observe([("a", "b", 2.0)])
        with pytest.raises(ValueError, match="advance"):
            predictor.observe([("b", "c", 1.0)])

    def test_rejects_mixed_timestamps(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        with pytest.raises(ValueError, match="single timestamp"):
            predictor.observe([("a", "b", 1.0), ("b", "c", 2.0)])

    def test_scores_zero_before_model_ready(self):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        predictor.observe([("a", "b", 1.0)])
        assert not predictor.is_ready
        assert np.allclose(predictor.score([("a", "b")]), 0.0)

    def test_becomes_ready_with_data(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=6), refit_every=1, seed=0
        )
        for stamp in sorted(small_dataset.timestamp_set()):
            edges = [
                (u, v, ts) for u, v, ts in small_dataset.edges() if ts == stamp
            ]
            predictor.observe(edges)
        assert predictor.is_ready
        scores = predictor.score(list(small_dataset.pair_iter())[:5])
        assert scores.shape == (5,)

    def test_window_bounded(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=5), window_size=40, refit_every=5, seed=0
        )
        for stamp in sorted(small_dataset.timestamp_set()):
            edges = [
                (u, v, ts) for u, v, ts in small_dataset.edges() if ts == stamp
            ]
            predictor.observe(edges)
        assert len(predictor._window_pairs) <= 40

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"model": "bogus"},
            {"refit_every": 0},
            {"window_size": 5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            StreamingSSFPredictor(SSFConfig(k=4), **kwargs)


class TestPrequentialEvaluate:
    def test_beats_chance_on_easy_stream(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=8), model="linear", refit_every=2, seed=0
        )
        result = prequential_evaluate(
            small_dataset, predictor, warmup_fraction=0.5, min_positives=5
        )
        assert len(result.aucs) >= 3
        assert result.mean_auc > 0.6

    def test_warmup_skips_early_stamps(self, small_dataset):
        predictor = StreamingSSFPredictor(SSFConfig(k=6), seed=0)
        result = prequential_evaluate(
            small_dataset, predictor, warmup_fraction=0.8, min_positives=5
        )
        stamps = sorted(small_dataset.timestamp_set())
        cutoff = stamps[int(len(stamps) * 0.8)]
        assert all(t > cutoff for t in result.timestamps)

    def test_validation(self, small_dataset):
        predictor = StreamingSSFPredictor(SSFConfig(k=4))
        with pytest.raises(ValueError):
            prequential_evaluate(small_dataset, predictor, warmup_fraction=1.0)

    def test_empty_result_nan_mean(self):
        assert np.isnan(PrequentialResult().mean_auc)


class TestNeuralStreamingVariant:
    def test_neural_model_stream(self, small_dataset):
        predictor = StreamingSSFPredictor(
            SSFConfig(k=5),
            model="neural",
            refit_every=5,
            epochs=10,
            seed=0,
        )
        result = prequential_evaluate(
            small_dataset, predictor, warmup_fraction=0.6, min_positives=5
        )
        assert predictor.is_ready
        assert all(0.0 <= auc <= 1.0 for auc in result.aucs)

"""Property-based tests: graph algebra and SSF temporal invariances."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.temporal import DynamicNetwork

_nodes = st.integers(min_value=0, max_value=9)


@st.composite
def temporal_graphs(draw, min_edges=2, max_edges=30):
    n_edges = draw(st.integers(min_edges, max_edges))
    network = DynamicNetwork()
    for _ in range(n_edges):
        u = draw(_nodes)
        v = draw(_nodes)
        if u == v:
            v = (v + 1) % 10
        network.add_edge(u, v, draw(st.integers(1, 15)))
    return network


@st.composite
def graph_and_target(draw):
    network = draw(temporal_graphs())
    nodes = network.nodes
    a = nodes[0]
    b = next((n for n in nodes if n != a), None)
    if b is None:
        network.add_edge(a, 99, 1)
        b = 99
    return network, a, b


# --------------------------------------------------------------------------
# graph algebra
# --------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(temporal_graphs(), st.integers(1, 15), st.integers(1, 15))
def test_slice_composition(network, t1, t2):
    """Slicing twice equals slicing to the intersection of the windows."""
    lo, hi = min(t1, t2), max(t1, t2) + 1
    once = network.slice(lo, hi)
    twice = network.slice(1, hi).slice(lo, hi)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(temporal_graphs())
def test_subgraph_idempotent(network):
    nodes = set(network.nodes[: max(1, len(network.nodes) // 2)])
    first = network.subgraph(nodes)
    second = first.subgraph(nodes)
    assert first == second


@settings(max_examples=60, deadline=None)
@given(temporal_graphs())
def test_static_projection_commutes_with_subgraph(network):
    nodes = set(network.nodes[: max(1, len(network.nodes) // 2)])
    via_dynamic = network.subgraph(nodes).static_projection()
    full_static = network.static_projection()
    for u in sorted(nodes):
        expected = {v for v in full_static.neighbor_view(u) if v in nodes}
        assert via_dynamic.neighbor_view(u) == expected


@settings(max_examples=60, deadline=None)
@given(temporal_graphs())
def test_copy_roundtrip_and_counts(network):
    clone = network.copy()
    assert clone == network
    assert clone.number_of_links() == network.number_of_links()
    assert sum(network.degree(n) for n in network.nodes) == 2 * network.number_of_links()


@settings(max_examples=60, deadline=None)
@given(temporal_graphs())
def test_pair_iter_matches_multiplicity_sum(network):
    total = sum(network.multiplicity(u, v) for u, v in network.pair_iter())
    assert total == network.number_of_links()


# --------------------------------------------------------------------------
# SSF temporal invariances
# --------------------------------------------------------------------------


def _shift(network: DynamicNetwork, delta: float) -> DynamicNetwork:
    out = DynamicNetwork()
    for node in network.nodes:
        out.add_node(node)
    for u, v, ts in network.edges():
        out.add_edge(u, v, ts + delta)
    return out


@settings(max_examples=40, deadline=None)
@given(graph_and_target(), st.integers(1, 50))
def test_ssf_time_translation_invariance(case, delta):
    """Shifting every timestamp AND the present time leaves SSF unchanged
    (Eq. 2 depends only on differences)."""
    network, a, b = case
    present = network.last_timestamp() + 1.0
    base = SSFExtractor(network, SSFConfig(k=6), present_time=present)
    shifted = SSFExtractor(
        _shift(network, delta), SSFConfig(k=6), present_time=present + delta
    )
    assert np.allclose(base.extract(a, b), shifted.extract(a, b))


@settings(max_examples=40, deadline=None)
@given(graph_and_target())
def test_count_mode_ignores_timestamp_values(case):
    """SSF-W depends only on WHICH links exist, not when."""
    network, a, b = case
    config = SSFConfig(k=6, entry_mode="count", ordering="hops")
    scrambled = DynamicNetwork()
    for u, v, ts in network.edges():
        scrambled.add_edge(u, v, ((ts * 7) % 13) + 1)  # deterministic scramble
    v1 = SSFExtractor(network, config).extract(a, b)
    v2 = SSFExtractor(scrambled, config).extract(a, b)
    assert np.allclose(v1, v2)


@settings(max_examples=40, deadline=None)
@given(graph_and_target(), st.floats(0.1, 0.9))
def test_entries_monotone_in_theta(case, theta):
    """Raw influence entries never grow when decay speeds up."""
    network, a, b = case
    slow = SSFExtractor(
        network,
        SSFConfig(k=6, entry_mode="influence", compress=False, theta=theta),
    ).extract(a, b)
    fast = SSFExtractor(
        network,
        SSFConfig(
            k=6, entry_mode="influence", compress=False, theta=min(1.0, theta + 0.1)
        ),
    ).extract(a, b)
    # orderings may differ between extractors; compare sorted multisets
    assert np.sort(fast).sum() <= np.sort(slow).sum() + 1e-12

"""Property-based tests for the model stack and the event generator."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import EventModelConfig, generate_event_network
from repro.models.linear import LinearRegressionModel
from repro.models.losses import softmax
from repro.models.ranking import best_f1_threshold
from repro.metrics.classification import f1_score

# --------------------------------------------------------------------------
# linear regression
# --------------------------------------------------------------------------


@st.composite
def linear_problems(draw):
    n = draw(st.integers(10, 60))
    dim = draw(st.integers(1, 5))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim))
    w = rng.normal(size=dim)
    b = float(rng.normal())
    return x, w, b


@settings(max_examples=60, deadline=None)
@given(linear_problems())
def test_linear_recovers_exact_functions(problem):
    """On noiseless targets, unregularised least squares is exact."""
    x, w, b = problem
    y = x @ w + b
    model = LinearRegressionModel(ridge=0.0).fit(x, y)
    assert np.allclose(model.decision_scores(x), y, atol=1e-6)


@settings(max_examples=60, deadline=None)
@given(linear_problems(), st.floats(0.1, 100.0))
def test_ridge_monotonically_shrinks(problem, ridge):
    x, w, b = problem
    y = x @ w + b
    free = LinearRegressionModel(ridge=0.0).fit(x, y)
    shrunk = LinearRegressionModel(ridge=ridge).fit(x, y)
    assert (
        np.linalg.norm(shrunk.weights) <= np.linalg.norm(free.weights) + 1e-9
    )


@settings(max_examples=60, deadline=None)
@given(linear_problems())
def test_prediction_affine_in_inputs(problem):
    """The fitted predictor is affine: f(ax) = a f(x) + (1-a) f(0)."""
    x, w, b = problem
    y = x @ w + b
    model = LinearRegressionModel(ridge=0.0).fit(x, y)
    zero = model.decision_scores(np.zeros((1, x.shape[1])))[0]
    doubled = model.decision_scores(2 * x)
    assert np.allclose(doubled, 2 * model.decision_scores(x) - zero, atol=1e-6)


# --------------------------------------------------------------------------
# softmax / thresholds
# --------------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(-50, 50), min_size=3, max_size=3),
        min_size=1,
        max_size=20,
    )
)
def test_softmax_is_distribution(rows):
    logits = np.array(rows)
    probs = softmax(logits)
    assert np.all(probs >= 0)
    assert np.allclose(probs.sum(axis=1), 1.0)


@settings(max_examples=80, deadline=None)
@given(st.integers(0, 5_000))
def test_best_f1_threshold_is_optimal(seed):
    """The chosen threshold's F1 dominates every other cut point."""
    rng = np.random.default_rng(seed)
    n = 40
    labels = rng.integers(0, 2, size=n)
    scores = rng.normal(size=n) + labels
    threshold = best_f1_threshold(scores, labels)
    best = f1_score(labels, (scores >= threshold).astype(int))
    for cut in np.unique(scores):
        for candidate in (cut - 1e-9, cut + 1e-9):
            other = f1_score(labels, (scores >= candidate).astype(int))
            assert best >= other - 1e-12


# --------------------------------------------------------------------------
# event generator
# --------------------------------------------------------------------------


@st.composite
def generator_configs(draw):
    repeat = draw(st.floats(0.0, 0.5))
    closure = draw(st.floats(0.0, 0.3))
    # the three mechanism probabilities must sum to at most 1.0
    pa = draw(st.floats(0.0, min(0.3, 1.0 - repeat - closure)))
    return EventModelConfig(
        n_nodes=draw(st.integers(5, 40)),
        n_links=draw(st.integers(10, 150)),
        span=draw(st.integers(2, 25)),
        repeat_prob=repeat,
        closure_prob=closure,
        pa_prob=pa,
        activity_exponent=draw(st.floats(0.0, 1.5)),
        final_fraction=draw(st.floats(0.0, 0.3)),
        recency_bias=draw(st.floats(0.0, 1.0)),
    )


@settings(max_examples=60, deadline=None)
@given(generator_configs(), st.integers(0, 1_000))
def test_generator_invariants(config, seed):
    network = generate_event_network(config, seed=seed)
    assert network.number_of_links() == config.n_links
    assert network.number_of_nodes() <= config.n_nodes
    assert network.first_timestamp() >= 1
    assert network.last_timestamp() <= config.span
    assert all(u != v for u, v, _ in network.edges())
    # determinism
    assert network == generate_event_network(config, seed=seed)

"""Differential tests: the optimized (lazy) extraction path against the
materialised-subgraph path.

``combine_structures`` and the SSF extractor never copy the h-hop
subgraph — they restrict neighbourhoods of the parent network on the fly
and resolve structure-link timestamps lazily.  These tests verify, on
randomly generated networks, that running the identical algorithms on a
*materialised* copy of the h-hop subgraph (a different code path through
the graph substrate) produces exactly the same structure partition,
structure-link timestamps, Palette-WL orders and SSF vectors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feature import SSFConfig, SSFExtractor
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import combine_structures
from repro.core.subgraph import extract_h_hop_subgraph, h_hop_node_set
from repro.graph.temporal import DynamicNetwork


def _random_network(seed: int, n_nodes=25, n_edges=80) -> DynamicNetwork:
    rng = np.random.default_rng(seed)
    g = DynamicNetwork()
    for _ in range(n_edges):
        u, v = rng.integers(0, n_nodes, size=2)
        if u != v:
            g.add_edge(int(u), int(v), float(rng.integers(1, 12)))
    return g


def _cases():
    for seed in range(8):
        network = _random_network(seed)
        pairs = list(network.pair_iter())
        yield network, pairs[seed % len(pairs)]


@pytest.mark.parametrize("case", list(_cases()), ids=lambda c: repr(c[1]))
class TestLazyVsMaterialised:
    def test_structure_partition_identical(self, case):
        network, (a, b) = case
        nodes = h_hop_node_set(network, a, b, 2)
        lazy = combine_structures(network, nodes, a, b)
        materialised = combine_structures(
            extract_h_hop_subgraph(network, a, b, 2), nodes, a, b
        )
        assert {n.members for n in lazy.nodes} == {
            n.members for n in materialised.nodes
        }

    def test_structure_link_timestamps_identical(self, case):
        network, (a, b) = case
        nodes = h_hop_node_set(network, a, b, 2)
        lazy = combine_structures(network, nodes, a, b)
        materialised = combine_structures(
            extract_h_hop_subgraph(network, a, b, 2), nodes, a, b
        )
        lookup = {n.members: i for i, n in enumerate(materialised.nodes)}
        for i, j in lazy.structure_link_pairs():
            mi = lookup[lazy.nodes[i].members]
            mj = lookup[lazy.nodes[j].members]
            assert lazy.link_timestamps(i, j) == materialised.link_timestamps(
                mi, mj
            )

    def test_palette_orders_identical(self, case):
        network, (a, b) = case
        nodes = h_hop_node_set(network, a, b, 2)
        lazy = combine_structures(network, nodes, a, b)
        materialised = combine_structures(
            extract_h_hop_subgraph(network, a, b, 2), nodes, a, b
        )
        order_by_members_lazy = {
            lazy.nodes[i].members: o for i, o in enumerate(palette_wl_order(lazy))
        }
        order_by_members_mat = {
            materialised.nodes[i].members: o
            for i, o in enumerate(palette_wl_order(materialised))
        }
        assert order_by_members_lazy == order_by_members_mat

    def test_ssf_vectors_identical(self, case):
        network, (a, b) = case
        present = network.last_timestamp() + 1.0
        config = SSFConfig(k=8)
        # the "materialised" extractor sees only the 3-hop ball, which
        # covers every node the K=8 extraction can reach on these graphs
        ball = network.subgraph(h_hop_node_set(network, a, b, 3))
        lazy_vec = SSFExtractor(network, config, present_time=present).extract(a, b)
        mat_vec = SSFExtractor(
            ball, config, present_time=present
        ).extract(a, b)
        # identical UNLESS the 3-hop ball truncated the growth; detect
        # that case and skip rather than assert a falsehood
        reachable = h_hop_node_set(network, a, b, 3)
        if len(reachable) == len(h_hop_node_set(network, a, b, 10)):
            assert np.allclose(lazy_vec, mat_vec)

"""Property-based tests (hypothesis) on the core invariants.

Random temporal multigraphs are generated from edge-triple lists; the
properties asserted here are the load-bearing guarantees of the pipeline:
structure-combination soundness, Palette-WL anchoring/permutation, SSF
shape/determinism, influence monotonicity and metric identities.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feature import SSFConfig, SSFExtractor, ssf_feature_dim
from repro.core.influence import normalized_influence
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import combine_structures
from repro.core.subgraph import h_hop_node_set
from repro.graph.temporal import DynamicNetwork
from repro.metrics.classification import (
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    roc_auc_score,
)

# --------------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------------

_nodes = st.integers(min_value=0, max_value=11)


@st.composite
def temporal_graphs(draw, min_edges=1, max_edges=40):
    """A random DynamicNetwork with integer timestamps 1..20."""
    n_edges = draw(st.integers(min_edges, max_edges))
    network = DynamicNetwork()
    for _ in range(n_edges):
        u = draw(_nodes)
        v = draw(_nodes)
        if u == v:
            v = (v + 1) % 12
        ts = draw(st.integers(1, 20))
        network.add_edge(u, v, ts)
    return network


@st.composite
def graph_with_target(draw):
    """A network plus a target pair whose ends both exist and differ."""
    network = draw(temporal_graphs(min_edges=2))
    nodes = network.nodes
    a = draw(st.sampled_from(nodes))
    b = draw(st.sampled_from(nodes))
    if a == b:
        others = [n for n in nodes if n != a]
        if not others:
            network.add_edge(a, 99, 1)
            others = [99]
        b = others[0]
    return network, a, b


# --------------------------------------------------------------------------
# structure combination
# --------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(graph_with_target())
def test_structure_partition_is_exact(case):
    """Structure nodes partition V_h: disjoint, covering, endpoints pinned."""
    network, a, b = case
    node_set = h_hop_node_set(network, a, b, 2)
    sub = combine_structures(network, node_set, a, b)
    members = [set(n.members) for n in sub.nodes]
    union = set().union(*members)
    assert union == node_set
    assert sum(len(m) for m in members) == len(node_set)
    assert members[0] == {a} and members[1] == {b}


@settings(max_examples=60, deadline=None)
@given(graph_with_target())
def test_merged_nodes_share_restricted_neighbourhood(case):
    network, a, b = case
    node_set = h_hop_node_set(network, a, b, 2)
    sub = combine_structures(network, node_set, a, b)
    for node in sub.nodes:
        restricted = {
            frozenset(m for m in network.neighbor_view(member) if m in node_set)
            for member in node.members
        }
        assert len(restricted) == 1


@settings(max_examples=60, deadline=None)
@given(graph_with_target())
def test_structure_links_conserve_all_links(case):
    """Every induced link lands in exactly one structure link (Def. 5)."""
    network, a, b = case
    node_set = h_hop_node_set(network, a, b, 2)
    sub = combine_structures(network, node_set, a, b)
    total = sum(sub.link_count(i, j) for i, j in sub.structure_link_pairs())
    induced = network.subgraph(node_set).number_of_links()
    assert total == induced


@settings(max_examples=60, deadline=None)
@given(graph_with_target())
def test_no_internal_structure_links(case):
    """Members of a structure node are never adjacent (self-loop argument)."""
    network, a, b = case
    node_set = h_hop_node_set(network, a, b, 2)
    sub = combine_structures(network, node_set, a, b)
    for node in sub.nodes:
        members = list(node.members)
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                assert not network.has_edge(u, v)


# --------------------------------------------------------------------------
# palette-WL
# --------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(graph_with_target())
def test_palette_wl_is_anchored_permutation(case):
    network, a, b = case
    node_set = h_hop_node_set(network, a, b, 2)
    sub = combine_structures(network, node_set, a, b)
    order = palette_wl_order(sub)
    assert sorted(order) == list(range(1, len(order) + 1))
    assert order[0] == 1 and order[1] == 2


# --------------------------------------------------------------------------
# SSF feature
# --------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(graph_with_target(), st.integers(3, 8))
def test_ssf_shape_and_determinism(case, k):
    network, a, b = case
    extractor = SSFExtractor(network, SSFConfig(k=k))
    vec = extractor.extract(a, b)
    assert vec.shape == (ssf_feature_dim(k),)
    assert np.isfinite(vec).all()
    assert (vec >= 0).all()
    assert np.allclose(vec, extractor.extract(a, b))


@settings(max_examples=40, deadline=None)
@given(graph_with_target())
def test_ssf_matrix_symmetric_zero_target(case):
    network, a, b = case
    extractor = SSFExtractor(network, SSFConfig(k=6))
    mat = extractor.adjacency_matrix(a, b)
    assert np.allclose(mat, mat.T)
    assert mat[0, 1] == 0.0
    assert np.allclose(np.diag(mat), 0.0)


@settings(max_examples=30, deadline=None)
@given(temporal_graphs(min_edges=3))
def test_ssf_invariant_to_member_relabelling(network):
    """Renaming nodes (other than the target ends) leaves SSF unchanged
    up to the tie-break on genuinely symmetric nodes — here we assert the
    weaker, always-true property: sorted entry multiset is preserved."""
    nodes = network.nodes
    a, b = nodes[0], nodes[-1] if nodes[-1] != nodes[0] else None
    if b is None:
        return
    mapping = {n: f"x{n}" for n in nodes if n not in (a, b)}
    renamed = DynamicNetwork()
    for u, v, ts in network.edges():
        renamed.add_edge(mapping.get(u, u), mapping.get(v, v), ts)
    v1 = SSFExtractor(network, SSFConfig(k=6)).extract(a, b)
    v2 = SSFExtractor(renamed, SSFConfig(k=6)).extract(a, b)
    assert np.allclose(np.sort(v1), np.sort(v2))


# --------------------------------------------------------------------------
# influence
# --------------------------------------------------------------------------


@settings(max_examples=100)
@given(
    st.lists(st.floats(0, 100), min_size=0, max_size=20),
    st.floats(0.01, 1.0),
)
def test_influence_bounds_and_monotonicity(stamps, theta):
    present = 100.0
    value = normalized_influence(stamps, present, theta)
    assert 0.0 <= value <= len(stamps)
    shifted = normalized_influence([s * 0.5 for s in stamps], present, theta)
    assert shifted <= value + 1e-12  # older links never add influence


@settings(max_examples=100)
@given(st.lists(st.floats(0, 99), min_size=1, max_size=10))
def test_influence_additive(stamps):
    present = 100.0
    total = normalized_influence(stamps, present)
    parts = sum(normalized_influence([s], present) for s in stamps)
    assert math.isclose(total, parts, rel_tol=1e-9)


# --------------------------------------------------------------------------
# metrics
# --------------------------------------------------------------------------


@st.composite
def labelled_scores(draw):
    n = draw(st.integers(4, 60))
    labels = draw(
        st.lists(st.integers(0, 1), min_size=n, max_size=n).filter(
            lambda ls: 0 < sum(ls) < len(ls)
        )
    )
    # A coarse 0.01 grid keeps monotone float transforms (exp below)
    # injective — ultra-close doubles would otherwise collapse into ties.
    scores = draw(
        st.lists(st.integers(-1000, 1000), min_size=n, max_size=n)
    )
    return np.array(labels), np.array(scores, dtype=np.float64) / 100.0


@settings(max_examples=80)
@given(labelled_scores())
def test_auc_complement_symmetry(case):
    """AUC(scores) + AUC(-scores) == 1 (ties contribute half to both)."""
    labels, scores = case
    forward = roc_auc_score(labels, scores)
    backward = roc_auc_score(labels, -scores)
    assert math.isclose(forward + backward, 1.0, abs_tol=1e-9)


@settings(max_examples=80)
@given(labelled_scores())
def test_auc_invariant_to_monotone_transform(case):
    labels, scores = case
    transformed = np.exp(scores / 5.0)
    assert math.isclose(
        roc_auc_score(labels, scores),
        roc_auc_score(labels, transformed),
        abs_tol=1e-9,
    )


@settings(max_examples=80)
@given(labelled_scores())
def test_f1_matches_precision_recall_identity(case):
    labels, scores = case
    predictions = (scores >= 0).astype(int)
    p = precision_score(labels, predictions)
    r = recall_score(labels, predictions)
    f1 = f1_score(labels, predictions)
    if p + r == 0:
        assert f1 == 0.0
    else:
        assert math.isclose(f1, 2 * p * r / (p + r), abs_tol=1e-12)


@settings(max_examples=80)
@given(labelled_scores())
def test_confusion_matrix_totals(case):
    labels, scores = case
    predictions = (scores >= 0).astype(int)
    mat = confusion_matrix(labels, predictions)
    assert mat.sum() == len(labels)
    assert mat[1].sum() == labels.sum()

"""Robustness: the full pipeline on adversarial/extreme topologies.

Each case is a topology that historically breaks subgraph-extraction
code: giant stars (huge merged structure nodes), long paths (deep h
growth), complete graphs (no merging, dense ties), twin components,
self-similar trees, and networks with exotic node labels.
"""

import numpy as np
import pytest

from repro.baselines.wlf import WLFExtractor
from repro.core.feature import SSFConfig, SSFExtractor, ssf_feature_dim
from repro.core.kstructure import extract_k_structure_subgraph
from repro.graph.temporal import DynamicNetwork


def _extract_ok(network, a, b, k=10):
    extractor = SSFExtractor(network, SSFConfig(k=k))
    vec = extractor.extract(a, b)
    assert vec.shape == (ssf_feature_dim(k),)
    assert np.isfinite(vec).all()
    return vec


class TestExtremeTopologies:
    def test_giant_star(self):
        """10k leaves merge into ONE structure node; extraction stays fast."""
        g = DynamicNetwork()
        for i in range(10_000):
            g.add_edge("hub", f"leaf{i}", (i % 50) + 1)
        ks = extract_k_structure_subgraph(g, "leaf0", "leaf1", 5)
        # hub + two end leaves + one merged leaf blob
        assert ks.source.number_of_structure_nodes() == 4
        _extract_ok(g, "leaf0", "leaf1", k=5)

    def test_long_path_deep_growth(self):
        g = DynamicNetwork(
            [(f"n{i}", f"n{i+1}", i + 1) for i in range(200)]
        )
        ks = extract_k_structure_subgraph(g, "n0", "n1", 12)
        assert ks.number_selected() == 12
        assert ks.h >= 5  # had to grow far along the path
        _extract_ok(g, "n0", "n1", k=12)

    def test_complete_graph(self):
        g = DynamicNetwork()
        nodes = [f"v{i}" for i in range(20)]
        ts = 1
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                g.add_edge(u, v, ts)
                ts += 1
        vec = _extract_ok(g, "v0", "v1")
        assert (vec > 0).sum() > 10  # rich structure captured

    def test_two_identical_components(self):
        g = DynamicNetwork()
        for prefix in ("a", "b"):
            g.add_edge(f"{prefix}1", f"{prefix}2", 1)
            g.add_edge(f"{prefix}2", f"{prefix}3", 2)
        # target link across components: balls never meet
        vec = _extract_ok(g, "a1", "b1", k=6)
        ks = extract_k_structure_subgraph(g, "a1", "b1", 6)
        distances = ks.source.distances_to_target()
        assert all(d >= 0 for d in distances)  # both sides BFS-rooted

    def test_binary_tree(self):
        # node i has children 2i and 2i+1
        g = DynamicNetwork()
        for i in range(1, 32):
            g.add_edge(f"t{i}", f"t{2 * i}", i)
            g.add_edge(f"t{i}", f"t{2 * i + 1}", i)
        _extract_ok(g, "t2", "t3")

    def test_multigraph_extreme_multiplicity(self):
        g = DynamicNetwork()
        for i in range(500):
            g.add_edge("a", "c", (i % 10) + 1)
        g.add_edge("b", "c", 5)
        vec = _extract_ok(g, "a", "b", k=3)
        assert np.isfinite(vec).all()

    def test_exotic_node_labels(self):
        labels = [("tuple", 1), frozenset({"x"}), 3.5, "unicode-λ", b"bytes"]
        g = DynamicNetwork()
        for i, label in enumerate(labels[1:], start=1):
            g.add_edge(labels[0], label, i)
        _extract_ok(g, labels[1], labels[2], k=4)

    def test_timestamps_with_float_jitter(self):
        g = DynamicNetwork(
            [("a", "c", 1.0000001), ("b", "c", 1.0000002), ("c", "d", 2.5)]
        )
        _extract_ok(g, "a", "b", k=4)


class TestWLFRobustness:
    def test_giant_star(self):
        g = DynamicNetwork()
        for i in range(2_000):
            g.add_edge("hub", f"leaf{i}", (i % 50) + 1)
        vec = WLFExtractor(g, k=6).extract("leaf0", "leaf1")
        assert np.isfinite(vec).all()

    def test_long_path(self):
        g = DynamicNetwork([(f"n{i}", f"n{i+1}", i + 1) for i in range(100)])
        vec = WLFExtractor(g, k=8).extract("n0", "n1")
        assert np.isfinite(vec).all()


class TestDeterminismUnderStress:
    def test_repeated_extraction_identical(self):
        g = DynamicNetwork()
        rng = np.random.default_rng(0)
        for _ in range(400):
            u, v = rng.integers(0, 40, size=2)
            if u != v:
                g.add_edge(int(u), int(v), float(rng.integers(1, 20)))
        extractor = SSFExtractor(g, SSFConfig(k=10))
        pairs = list(g.pair_iter())[:10]
        first = [extractor.extract(a, b) for a, b in pairs]
        second = [extractor.extract(a, b) for a, b in pairs]
        for x, y in zip(first, second):
            assert np.array_equal(x, y)

"""End-to-end integration tests: full pipeline on generated datasets."""

import numpy as np
import pytest

from repro.datasets.catalog import get_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import k_sweep, mine_frequent_pattern
from repro.experiments.methods import METHOD_ORDER
from repro.experiments.runner import LinkPredictionExperiment


@pytest.fixture(scope="module")
def coauthor_experiment():
    net = get_dataset("co-author").generate(seed=0, scale=0.4)
    return LinkPredictionExperiment(
        net, ExperimentConfig(epochs=40, max_positives=100)
    )


class TestFullMethodSweep:
    def test_all_fifteen_methods_run(self, coauthor_experiment):
        results = coauthor_experiment.run_methods()
        assert set(results) == set(METHOD_ORDER)
        for name, result in results.items():
            assert 0.0 <= result.auc <= 1.0, name
            assert 0.0 <= result.f1 <= 1.0, name

    def test_informed_methods_beat_chance(self, coauthor_experiment):
        """On an easy synthetic dataset every structural method should be
        meaningfully better than coin flipping."""
        for name in ("CN", "Katz", "RW", "SSFLR", "SSFLR-W"):
            result = coauthor_experiment.run_method(name)
            assert result.auc > 0.55, f"{name} at {result.auc:.3f}"


class TestBipartiteShape:
    def test_prosper_breaks_cn_not_ssf(self):
        """The paper's striking Prosper result: common-neighbour scores
        collapse on a bipartite network while SSF keeps working."""
        net = get_dataset("prosper").generate(seed=0, scale=0.5)
        exp = LinkPredictionExperiment(
            net, ExperimentConfig(epochs=40, max_positives=120)
        )
        cn = exp.run_method("CN")
        ssflr = exp.run_method("SSFLR")
        assert cn.auc < 0.6
        assert ssflr.auc > cn.auc + 0.1


class TestFigureRegeneration:
    def test_k_sweep_runs(self, coauthor_experiment):
        results = k_sweep(
            coauthor_experiment.network,
            config=ExperimentConfig(epochs=20, max_positives=60),
            k_values=(5, 10),
            method="SSFLR",
        )
        assert set(results) == {5, 10}

    def test_pattern_mining_runs(self, coauthor_experiment):
        stats, text = mine_frequent_pattern(
            coauthor_experiment.network, n_samples=60, k=10, seed=0
        )
        assert stats.count >= 1
        assert "pattern frequency" in text


class TestFileRoundTrip:
    def test_save_load_evaluate(self, tmp_path, coauthor_experiment):
        """Networks written to disk rebuild the identical task."""
        from repro.graph.io import read_edge_list, write_edge_list

        path = tmp_path / "net.tsv"
        write_edge_list(coauthor_experiment.network, path)
        reloaded = read_edge_list(path)
        # node labels become strings after IO; counts must be identical
        assert reloaded.number_of_links() == coauthor_experiment.network.number_of_links()
        assert reloaded.number_of_nodes() == coauthor_experiment.network.number_of_nodes()
        exp2 = LinkPredictionExperiment(
            reloaded, ExperimentConfig(epochs=10, max_positives=40)
        )
        result = exp2.run_method("CN")
        assert 0.0 <= result.auc <= 1.0

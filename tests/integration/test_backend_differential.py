"""Differential tests: the CSR array backend against the dict reference.

The ``backend="csr"`` pipeline (array BFS, array structure combination,
precomputed influence table) promises **bit-identical** SSF features to
the dict-of-dict reference path.  These property-style tests generate
randomized networks sweeping the regimes that historically break
array/dict parity — density extremes, heavy multi-links, duplicate
timestamps, isolated components — and assert exact ``np.array_equal``
(not allclose) for every entry mode, both backends, both argument orders
of the target pair.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feature import ENTRY_MODES, SSFConfig, SSFExtractor
from repro.graph.csr import CSRSnapshot
from repro.graph.temporal import DynamicNetwork

#: (name, n_nodes, n_edges, n_timestamps) — density / collision regimes
REGIMES = [
    ("sparse", 40, 50, 40),
    ("medium", 30, 120, 25),
    ("dense", 18, 200, 20),
    ("multilink", 12, 160, 4),  # few stamps → many duplicate timestamps
]


def _random_network(seed: int, n_nodes: int, n_edges: int, n_ts: int) -> DynamicNetwork:
    rng = np.random.default_rng(seed)
    g = DynamicNetwork()
    for _ in range(n_edges):
        u, v = rng.integers(0, n_nodes, size=2)
        if u != v:
            g.add_edge(int(u), int(v), float(rng.integers(1, n_ts + 1)))
    g.add_node("isolated")  # known node with zero links
    return g


def _sample_pairs(network: DynamicNetwork, seed: int, count: int = 8):
    rng = np.random.default_rng(seed + 1000)
    nodes = [n for n in network.nodes if n != "isolated"]
    pairs = []
    for _ in range(count):
        a, b = rng.choice(len(nodes), size=2, replace=False)
        pairs.append((nodes[int(a)], nodes[int(b)]))
    return pairs


@pytest.mark.parametrize("regime", REGIMES, ids=[r[0] for r in REGIMES])
@pytest.mark.parametrize("seed", range(4))
def test_csr_matches_dict_bit_for_bit(regime, seed):
    _, n_nodes, n_edges, n_ts = regime
    network = _random_network(seed, n_nodes, n_edges, n_ts)
    pairs = _sample_pairs(network, seed)
    for mode in ENTRY_MODES:
        config = SSFConfig(k=6, entry_mode=mode)
        dict_ex = SSFExtractor(network, config, backend="dict")
        csr_ex = SSFExtractor(network, config, backend="csr")
        assert dict_ex.backend == "dict"
        assert csr_ex.backend == "csr"
        for a, b in pairs:
            expected = dict_ex.extract(a, b)
            got = csr_ex.extract(a, b)
            assert np.array_equal(expected, got), (mode, a, b)
            # pair-order invariance must hold identically on both paths
            assert np.array_equal(dict_ex.extract(b, a), csr_ex.extract(b, a))


@pytest.mark.parametrize("seed", range(3))
def test_extract_multi_parity(seed):
    network = _random_network(seed, 25, 100, 12)
    pairs = _sample_pairs(network, seed, count=5)
    config = SSFConfig(k=6)
    dict_ex = SSFExtractor(network, config, backend="dict")
    snapshot = CSRSnapshot.from_dynamic(network)
    csr_ex = SSFExtractor(snapshot, config)
    for a, b in pairs:
        expected = dict_ex.extract_multi(a, b, ENTRY_MODES)
        got = csr_ex.extract_multi(a, b, ENTRY_MODES)
        for mode in ENTRY_MODES:
            assert np.array_equal(expected[mode], got[mode]), (mode, a, b)


def test_adjacency_matrix_parity():
    network = _random_network(7, 20, 90, 10)
    config = SSFConfig(k=6)
    dict_ex = SSFExtractor(network, config, backend="dict")
    csr_ex = SSFExtractor(network, config, backend="csr")
    for a, b in _sample_pairs(network, 7, count=5):
        assert np.array_equal(
            dict_ex.adjacency_matrix(a, b), csr_ex.adjacency_matrix(a, b)
        )


def test_isolated_and_unknown_endpoints():
    network = _random_network(2, 20, 60, 8)
    config = SSFConfig(k=6)
    dict_ex = SSFExtractor(network, config, backend="dict")
    csr_ex = SSFExtractor(network, config, backend="csr")
    some = next(iter(network.pair_iter()))[0]
    for pair in [
        ("isolated", some),  # known node, no links
        (some, "isolated"),
        ("ghost", some),  # unknown endpoint → all-zero feature
        ("ghost", "phantom"),
    ]:
        expected = dict_ex.extract(*pair)
        got = csr_ex.extract(*pair)
        assert np.array_equal(expected, got), pair


def test_hops_ordering_parity():
    network = _random_network(5, 22, 100, 10)
    config = SSFConfig(k=6, ordering="hops")
    dict_ex = SSFExtractor(network, config, backend="dict")
    csr_ex = SSFExtractor(network, config, backend="csr")
    for a, b in _sample_pairs(network, 5, count=5):
        assert np.array_equal(dict_ex.extract(a, b), csr_ex.extract(a, b))


def test_max_hop_parity():
    network = _random_network(9, 30, 70, 10)
    config = SSFConfig(k=6, max_hop=2)
    dict_ex = SSFExtractor(network, config, backend="dict")
    csr_ex = SSFExtractor(network, config, backend="csr")
    for a, b in _sample_pairs(network, 9, count=5):
        assert np.array_equal(dict_ex.extract(a, b), csr_ex.extract(a, b))


def test_auto_backend_threshold(monkeypatch):
    network = _random_network(0, 25, 100, 12)
    monkeypatch.setenv("REPRO_AUTO_CSR_MIN_LINKS", "1")
    assert SSFExtractor(network, SSFConfig(k=6), backend="auto").backend == "csr"
    monkeypatch.setenv(
        "REPRO_AUTO_CSR_MIN_LINKS", str(network.number_of_links() + 1)
    )
    assert SSFExtractor(network, SSFConfig(k=6), backend="auto").backend == "dict"


@pytest.mark.parametrize("regime", REGIMES, ids=[r[0] for r in REGIMES])
def test_delta_snapshot_matches_dict_bit_for_bit(regime):
    """Three-way differential: features over a delta-ingested snapshot
    must match both the full CSR rebuild and the dict reference."""
    from repro.serve.delta import DeltaCSRSnapshot

    _, n_nodes, n_edges, n_ts = regime
    source = _random_network(17, n_nodes, n_edges, n_ts)
    edges = sorted(source.edges(), key=lambda e: (e[2], repr(e[0]), repr(e[1])))
    cut = len(edges) // 2
    delta = DeltaCSRSnapshot.from_dynamic(DynamicNetwork(edges[:cut]))
    delta.apply(edges[cut:])
    # the dict reference replays the SAME event order the delta saw, so
    # node insertion order (and with it id-based tie-breaks) agrees
    network = DynamicNetwork(edges)
    pairs = _sample_pairs(network, 17)
    present = float(network.last_timestamp()) + 1.0
    for mode in ENTRY_MODES:
        config = SSFConfig(k=6, entry_mode=mode)
        dict_ex = SSFExtractor(
            network, config, backend="dict", present_time=present
        )
        delta_ex = SSFExtractor(delta.snapshot(), config, present_time=present)
        for a, b in pairs:
            assert np.array_equal(
                dict_ex.extract(a, b), delta_ex.extract(a, b)
            ), (mode, a, b)


def test_dict_backend_rejects_snapshot():
    network = _random_network(0, 10, 20, 5)
    snapshot = CSRSnapshot.from_dynamic(network)
    with pytest.raises(ValueError):
        SSFExtractor(snapshot, SSFConfig(k=6), backend="dict")

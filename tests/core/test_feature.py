"""Tests for SSF extraction (Algorithm 3, Def. 10)."""

import math

import numpy as np
import pytest

from repro.core.feature import ENTRY_MODES, SSFConfig, SSFExtractor, ssf_feature_dim
from repro.graph.temporal import DynamicNetwork


class TestFeatureDim:
    @pytest.mark.parametrize("k,expected", [(3, 2), (5, 9), (10, 44), (20, 189)])
    def test_formula(self, k, expected):
        assert ssf_feature_dim(k) == expected

    def test_k_too_small(self):
        with pytest.raises(ValueError):
            ssf_feature_dim(1)


class TestSSFConfig:
    def test_defaults(self):
        config = SSFConfig()
        assert config.k == 10
        assert config.theta == 0.5
        assert config.entry_mode == "temporal"
        assert config.feature_dim == 44

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 2},
            {"theta": 0.0},
            {"theta": 1.5},
            {"entry_mode": "bogus"},
            {"ordering": "bogus"},
            {"max_hop": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SSFConfig(**kwargs)


class TestAdjacencyMatrix:
    def test_symmetric_with_zero_diagonal(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        mat = ext.adjacency_matrix("A", "B")
        assert np.allclose(mat, mat.T)
        assert np.allclose(np.diag(mat), 0.0)

    def test_target_entry_zero(self):
        # even with historical a-b links, A(1,2) is forced to 0 (Eq. 4)
        g = DynamicNetwork([("a", "b", 1), ("a", "c", 2), ("b", "c", 3)])
        ext = SSFExtractor(g, SSFConfig(k=3))
        mat = ext.adjacency_matrix("a", "b")
        assert mat[0, 1] == 0.0
        assert mat[1, 0] == 0.0

    def test_influence_values(self, fig3_network):
        config = SSFConfig(k=5, entry_mode="influence", compress=False)
        ext = SSFExtractor(fig3_network, config)
        present = ext.present_time
        mat = ext.adjacency_matrix("A", "B")
        # A(1, c) where c is the order of C: the single A-C link at ts=4
        expected = math.exp(-0.5 * (present - 4.0))
        assert np.isclose(mat[0], expected).any()

    def test_zero_padding_small_component(self):
        g = DynamicNetwork([("x", "y", 1)])
        ext = SSFExtractor(g, SSFConfig(k=6))
        assert np.allclose(ext.adjacency_matrix("x", "y"), 0.0)

    def test_unknown_nodes_zero(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        assert np.allclose(ext.adjacency_matrix("A", "zzz"), 0.0)


class TestExtract:
    def test_length(self, fig3_network):
        for k in (4, 5, 8):
            ext = SSFExtractor(fig3_network, SSFConfig(k=k))
            assert ext.extract("A", "B").shape == (ssf_feature_dim(k),)

    def test_unfolding_matches_matrix(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        mat = ext.adjacency_matrix("A", "B")
        vec = ext.extract("A", "B")
        expected = []
        for n in range(3, 6):  # 1-based columns
            expected.extend(mat[: n - 1, n - 1])
        assert np.allclose(vec, expected)

    def test_deterministic(self, small_dataset):
        ext = SSFExtractor(small_dataset, SSFConfig(k=8))
        pairs = list(small_dataset.pair_iter())[:5]
        for a, b in pairs:
            assert np.allclose(ext.extract(a, b), ext.extract(a, b))

    def test_batch_stacks(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        batch = ext.extract_batch([("A", "B"), ("A", "C")])
        assert batch.shape == (2, 9)
        assert np.allclose(batch[0], ext.extract("A", "B"))

    def test_batch_empty(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        assert ext.extract_batch([]).shape == (0, 9)


class TestEntryModes:
    def test_count_mode_counts(self, fig3_network):
        ext = SSFExtractor(
            fig3_network, SSFConfig(k=5, entry_mode="count", compress=False)
        )
        vec = ext.extract("A", "B")
        assert 3.0 in vec  # the {G,H,I}-A structure link combines 3 links

    def test_compress_applies_log1p(self, fig3_network):
        raw = SSFExtractor(
            fig3_network, SSFConfig(k=5, entry_mode="count", compress=False)
        ).extract("A", "B")
        squashed = SSFExtractor(
            fig3_network, SSFConfig(k=5, entry_mode="count", compress=True)
        ).extract("A", "B")
        assert np.allclose(squashed, np.log1p(raw))

    def test_binary_mode(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5, entry_mode="binary"))
        vec = ext.extract("A", "B")
        assert set(np.unique(vec)) <= {0.0, 1.0}

    def test_distance_entries_bounded(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=6, entry_mode="distance"))
        vec = ext.extract("A", "B")
        assert vec.max() <= 1.0
        assert vec.min() >= 0.0

    def test_temporal_mode_lower_bounded_when_present(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5, entry_mode="temporal"))
        mat = ext.adjacency_matrix("A", "B")
        present_entries = mat[mat > 0]
        # (1 + log1p(inf)) / d >= 1/d >= 1/diameter > 0
        assert present_entries.min() > 0.2

    def test_extract_multi_consistent(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        multi = ext.extract_multi("A", "B", ("temporal", "count", "binary"))
        assert np.allclose(multi["temporal"], ext.extract("A", "B"))
        count_ext = SSFExtractor(fig3_network, SSFConfig(k=5, entry_mode="count"))
        assert np.allclose(multi["count"], count_ext.extract("A", "B"))

    def test_extract_multi_unknown_mode(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        with pytest.raises(ValueError):
            ext.extract_multi("A", "B", ("bogus",))

    def test_extract_multi_unseen_nodes(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        out = ext.extract_multi("A", "zzz", ("temporal", "count"))
        for vec in out.values():
            assert np.allclose(vec, 0.0)

    def test_all_modes_run(self, fig3_network):
        for mode in ENTRY_MODES:
            ext = SSFExtractor(fig3_network, SSFConfig(k=5, entry_mode=mode))
            assert ext.extract("A", "B").shape == (9,)


class TestTemporalSensitivity:
    def test_recent_links_increase_entries(self):
        old = DynamicNetwork([("a", "c", 1), ("b", "c", 1)])
        recent = DynamicNetwork([("a", "c", 9), ("b", "c", 9)])
        cfg = SSFConfig(k=3, entry_mode="influence", compress=False)
        v_old = SSFExtractor(old, cfg, present_time=10).extract("a", "b")
        v_recent = SSFExtractor(recent, cfg, present_time=10).extract("a", "b")
        assert v_recent.sum() > v_old.sum()

    def test_ssf_w_ignores_time(self):
        old = DynamicNetwork([("a", "c", 1), ("b", "c", 1)])
        recent = DynamicNetwork([("a", "c", 9), ("b", "c", 9)])
        cfg = SSFConfig(k=3, entry_mode="count")
        v_old = SSFExtractor(old, cfg, present_time=10).extract("a", "b")
        v_recent = SSFExtractor(recent, cfg, present_time=10).extract("a", "b")
        assert np.allclose(v_old, v_recent)

    def test_default_present_time_is_after_last(self, fig3_network):
        ext = SSFExtractor(fig3_network, SSFConfig(k=5))
        assert ext.present_time == fig3_network.last_timestamp() + 1.0

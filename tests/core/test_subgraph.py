"""Tests for h-hop subgraph extraction (Def. 3)."""

import pytest

from repro.core.subgraph import extract_h_hop_subgraph, h_hop_node_set


class TestHHopNodeSet:
    def test_zero_hop_is_endpoints(self, fig3_network):
        assert h_hop_node_set(fig3_network, "A", "B", 0) == {"A", "B"}

    def test_one_hop(self, fig3_network):
        expected = {"A", "B", "C", "D", "E", "G", "H", "I"}
        assert h_hop_node_set(fig3_network, "A", "B", 1) == expected

    def test_two_hop_includes_f(self, fig3_network):
        assert "F" in h_hop_node_set(fig3_network, "A", "B", 2)

    def test_negative_hop_rejected(self, fig3_network):
        with pytest.raises(ValueError):
            h_hop_node_set(fig3_network, "A", "B", -1)


class TestExtractHHopSubgraph:
    def test_induced_links_kept(self, fig3_network):
        sub = extract_h_hop_subgraph(fig3_network, "A", "B", 1)
        assert sub.has_edge("A", "C")
        assert sub.has_edge("B", "D")
        # C-F leaves the 1-hop set, so the link is dropped with F
        assert not sub.has_node("F")

    def test_timestamps_preserved(self, fig3_network):
        sub = extract_h_hop_subgraph(fig3_network, "A", "B", 1)
        assert sub.timestamps("A", "C") == fig3_network.timestamps("A", "C")

    def test_multiplicities_preserved(self, triangle_network):
        sub = extract_h_hop_subgraph(triangle_network, "x", "z", 1)
        assert sub.multiplicity("x", "y") == 2

    def test_historical_target_links_kept(self):
        from repro.graph.temporal import DynamicNetwork

        g = DynamicNetwork([("a", "b", 1), ("a", "b", 2), ("a", "c", 3)])
        sub = extract_h_hop_subgraph(g, "a", "b", 1)
        assert sub.multiplicity("a", "b") == 2

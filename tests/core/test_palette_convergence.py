"""Palette-WL behaviour on crafted symmetric and regular graphs."""

import pytest

from repro.core.palette_wl import _dense_rank, _initial_colors, palette_wl_order
from repro.core.structure import combine_structures
from repro.core.subgraph import h_hop_node_set
from repro.graph.temporal import DynamicNetwork


def _order(network, a, b, h=3):
    nodes = h_hop_node_set(network, a, b, h)
    sub = combine_structures(network, nodes, a, b)
    return sub, palette_wl_order(sub)


class TestRegularGraphs:
    def test_cycle_graph(self):
        """On a cycle every non-end node pair equidistant from the link is
        symmetric; orders must still be a valid anchored permutation."""
        n = 8
        g = DynamicNetwork(
            [(f"c{i}", f"c{(i + 1) % n}", i + 1) for i in range(n)]
        )
        sub, order = _order(g, "c0", "c1")
        assert sorted(order) == list(range(1, len(order) + 1))
        assert order[0] == 1 and order[1] == 2

    def test_cycle_symmetric_nodes_rank_adjacent(self):
        """The two distance-1 neighbours (c7 and c2) are mirror images;
        WL cannot split them, so they take the next two orders (3, 4) in
        tie-break order."""
        n = 8
        g = DynamicNetwork(
            [(f"c{i}", f"c{(i + 1) % n}", i + 1) for i in range(n)]
        )
        sub, order = _order(g, "c0", "c1")
        o_c7 = order[sub.structure_node_of("c7")]
        o_c2 = order[sub.structure_node_of("c2")]
        assert {o_c7, o_c2} == {3, 4}

    def test_complete_bipartite(self):
        """K_{3,3} minus the target link: heavy symmetry, must terminate."""
        g = DynamicNetwork()
        ts = 1
        for u in ("u1", "u2", "u3"):
            for v in ("v1", "v2", "v3"):
                if (u, v) != ("u1", "v1"):
                    g.add_edge(u, v, ts)
                    ts += 1
        sub, order = _order(g, "u1", "v1")
        assert sorted(order) == list(range(1, len(order) + 1))

    def test_petersen_like_regular(self):
        """3-regular circulant graph: WL ties abound, result is stable."""
        n = 10
        g = DynamicNetwork()
        for i in range(n):
            g.add_edge(f"p{i}", f"p{(i + 1) % n}", 1)
            g.add_edge(f"p{i}", f"p{(i + 2) % n}", 2)
        sub1, order1 = _order(g, "p0", "p1")
        sub2, order2 = _order(g, "p0", "p1")
        assert order1 == order2


class TestRefinementInternals:
    def test_dense_rank_ties(self):
        assert _dense_rank([3.0, 1.0, 3.0, 2.0]) == [3, 1, 3, 2]

    def test_dense_rank_tolerance(self):
        ranks = _dense_rank([1.0, 1.0 + 1e-12, 2.0])
        assert ranks[0] == ranks[1]

    def test_initial_colors_band_structure(self):
        colors = _initial_colors([0.0, 0.0, 2.0, 2.0, 3.0, -1.0])
        assert colors[:2] == [1, 2]
        assert colors[2] == colors[3]
        assert colors[4] > colors[2]
        assert colors[5] > colors[4]  # unreachable last

    def test_refinement_splits_distance_ties(self, fig3_network):
        """{G,H,I} (order-1 fans of A) and {D,E} (fans of B) and C all sit
        in the same distance band yet receive distinct final orders."""
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        order = palette_wl_order(sub)
        non_end = [order[i] for i in range(2, len(order))]
        assert len(set(non_end)) == len(non_end)

"""Tests for multiprocess feature extraction (determinism + fallbacks)."""

import numpy as np
import pytest

from repro.core.feature import SSFConfig, SSFExtractor
from repro.core.parallel import (
    MIN_PAIRS_FOR_POOL,
    min_pairs_for_pool,
    parallel_extract_batch,
)
from repro.graph.csr import CSRSnapshot


@pytest.fixture(scope="module")
def case():
    from repro.datasets.catalog import get_dataset
    from repro.sampling.splits import build_link_prediction_task

    network = get_dataset("co-author").generate(seed=0, scale=0.25)
    task = build_link_prediction_task(network, max_positives=60, seed=0)
    return task.history, task.present_time, list(task.train_pairs)


class TestSequentialPath:
    def test_matches_extractor(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        via_parallel = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=1
        )
        direct = SSFExtractor(history, config, present_time=present).extract_batch(
            pairs
        )
        assert np.array_equal(via_parallel, direct)

    def test_small_batch_never_pools(self, case):
        history, present, pairs = case
        few = pairs[: MIN_PAIRS_FOR_POOL - 1]
        out = parallel_extract_batch(
            history, SSFConfig(k=6), few, present_time=present, workers=8
        )
        assert out.shape[0] == len(few)

    def test_empty_batch(self, case):
        history, present, _ = case
        out = parallel_extract_batch(
            history, SSFConfig(k=6), [], present_time=present, workers=2
        )
        assert out.shape == (0, SSFConfig(k=6).feature_dim)

    def test_multi_mode_shapes(self, case):
        history, present, pairs = case
        out = parallel_extract_batch(
            history,
            SSFConfig(k=6),
            pairs[:10],
            present_time=present,
            modes=("temporal", "count"),
            workers=1,
        )
        assert set(out) == {"temporal", "count"}
        assert out["temporal"].shape == (10, SSFConfig(k=6).feature_dim)


class TestPooledPath:
    def test_workers_bit_identical(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        sequential = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=1
        )
        pooled = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=2
        )
        assert np.array_equal(sequential, pooled)

    def test_workers_multi_mode_identical(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        kwargs = dict(present_time=present, modes=("temporal", "count"))
        sequential = parallel_extract_batch(
            history, config, pairs, workers=1, **kwargs
        )
        pooled = parallel_extract_batch(
            history, config, pairs, workers=2, **kwargs
        )
        for mode in sequential:
            assert np.array_equal(sequential[mode], pooled[mode])


class TestCsrBackend:
    def test_csr_pool_bit_identical(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        sequential = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=1, backend="dict"
        )
        pooled = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=2, backend="csr"
        )
        assert np.array_equal(sequential, pooled)

    def test_prebuilt_snapshot_reused(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        snapshot = CSRSnapshot.from_dynamic(history)
        sequential = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=1, backend="dict"
        )
        pooled = parallel_extract_batch(
            snapshot, config, pairs, present_time=present, workers=2
        )
        assert np.array_equal(sequential, pooled)

    def test_csr_multi_mode_identical(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        kwargs = dict(present_time=present, modes=("temporal", "count"))
        sequential = parallel_extract_batch(
            history, config, pairs, workers=1, backend="dict", **kwargs
        )
        pooled = parallel_extract_batch(
            history, config, pairs, workers=2, backend="csr", **kwargs
        )
        for mode in sequential:
            assert np.array_equal(sequential[mode], pooled[mode])


class TestPoolThresholds:
    def test_min_pairs_override(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        few = pairs[:10]
        sequential = parallel_extract_batch(
            history, config, few, present_time=present, workers=1
        )
        pooled = parallel_extract_batch(
            history,
            config,
            few,
            present_time=present,
            workers=2,
            min_pairs=4,
            chunksize=2,
        )
        assert np.array_equal(sequential, pooled)

    def test_env_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_MIN_PAIRS_FOR_POOL", raising=False)
        assert min_pairs_for_pool() == MIN_PAIRS_FOR_POOL
        monkeypatch.setenv("REPRO_MIN_PAIRS_FOR_POOL", "7")
        assert min_pairs_for_pool() == 7
        assert min_pairs_for_pool(99) == 99

    def test_negative_override_rejected(self):
        with pytest.raises(ValueError):
            min_pairs_for_pool(-1)


class TestConfigIntegration:
    def test_n_jobs_threads_through_runner(self, case):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(n_jobs=0)
        assert ExperimentConfig(n_jobs=2).n_jobs == 2

    def test_backend_validated(self):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(backend="sparse")
        assert ExperimentConfig(backend="csr").backend == "csr"
        assert ExperimentConfig().backend == "auto"

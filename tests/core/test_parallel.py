"""Tests for multiprocess feature extraction (determinism + fallbacks)."""

import numpy as np
import pytest

from repro.core.feature import SSFConfig, SSFExtractor
from repro.core.parallel import MIN_PAIRS_FOR_POOL, parallel_extract_batch


@pytest.fixture(scope="module")
def case():
    from repro.datasets.catalog import get_dataset
    from repro.sampling.splits import build_link_prediction_task

    network = get_dataset("co-author").generate(seed=0, scale=0.25)
    task = build_link_prediction_task(network, max_positives=60, seed=0)
    return task.history, task.present_time, list(task.train_pairs)


class TestSequentialPath:
    def test_matches_extractor(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        via_parallel = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=1
        )
        direct = SSFExtractor(history, config, present_time=present).extract_batch(
            pairs
        )
        assert np.array_equal(via_parallel, direct)

    def test_small_batch_never_pools(self, case):
        history, present, pairs = case
        few = pairs[: MIN_PAIRS_FOR_POOL - 1]
        out = parallel_extract_batch(
            history, SSFConfig(k=6), few, present_time=present, workers=8
        )
        assert out.shape[0] == len(few)

    def test_empty_batch(self, case):
        history, present, _ = case
        out = parallel_extract_batch(
            history, SSFConfig(k=6), [], present_time=present, workers=2
        )
        assert out.shape == (0, SSFConfig(k=6).feature_dim)

    def test_multi_mode_shapes(self, case):
        history, present, pairs = case
        out = parallel_extract_batch(
            history,
            SSFConfig(k=6),
            pairs[:10],
            present_time=present,
            modes=("temporal", "count"),
            workers=1,
        )
        assert set(out) == {"temporal", "count"}
        assert out["temporal"].shape == (10, SSFConfig(k=6).feature_dim)


class TestPooledPath:
    def test_workers_bit_identical(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        sequential = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=1
        )
        pooled = parallel_extract_batch(
            history, config, pairs, present_time=present, workers=2
        )
        assert np.array_equal(sequential, pooled)

    def test_workers_multi_mode_identical(self, case):
        history, present, pairs = case
        config = SSFConfig(k=6)
        kwargs = dict(present_time=present, modes=("temporal", "count"))
        sequential = parallel_extract_batch(
            history, config, pairs, workers=1, **kwargs
        )
        pooled = parallel_extract_batch(
            history, config, pairs, workers=2, **kwargs
        )
        for mode in sequential:
            assert np.array_equal(sequential[mode], pooled[mode])


class TestConfigIntegration:
    def test_n_jobs_threads_through_runner(self, case):
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ValueError):
            ExperimentConfig(n_jobs=0)
        assert ExperimentConfig(n_jobs=2).n_jobs == 2

"""Tests for the Palette-WL ordering (Algorithm 2)."""

import pytest

from repro.core.palette_wl import (
    bilateral_distance_scores,
    palette_wl_order,
)
from repro.core.structure import combine_structures
from repro.core.subgraph import h_hop_node_set


def _fig3_subgraph(fig3_network, h=1):
    nodes = h_hop_node_set(fig3_network, "A", "B", h)
    return combine_structures(fig3_network, nodes, "A", "B")


class TestEndpointAnchoring:
    def test_endpoints_orders_1_and_2(self, fig3_network):
        sub = _fig3_subgraph(fig3_network)
        order = palette_wl_order(sub)
        assert order[0] == 1
        assert order[1] == 2

    def test_anchoring_on_generated_graph(self, small_dataset):
        pairs = list(small_dataset.pair_iter())[:10]
        for a, b in pairs:
            nodes = h_hop_node_set(small_dataset, a, b, 1)
            sub = combine_structures(small_dataset, nodes, a, b)
            order = palette_wl_order(sub)
            assert order[0] == 1 and order[1] == 2


class TestOrderProperties:
    def test_strict_permutation(self, fig3_network):
        sub = _fig3_subgraph(fig3_network, h=2)
        order = palette_wl_order(sub)
        assert sorted(order) == list(range(1, len(order) + 1))

    def test_deterministic(self, fig3_network):
        sub = _fig3_subgraph(fig3_network, h=2)
        assert palette_wl_order(sub) == palette_wl_order(sub)

    def test_common_neighbour_before_one_sided(self, fig3_network):
        """The bilateral init ranks C (adjacent to both ends) first."""
        sub = _fig3_subgraph(fig3_network)
        order = palette_wl_order(sub)
        c_idx = sub.structure_node_of("C")
        for other in range(2, len(order)):
            if other != c_idx:
                assert order[c_idx] < order[other]

    def test_farther_nodes_higher_order(self, fig3_network):
        sub = _fig3_subgraph(fig3_network, h=2)
        order = palette_wl_order(sub)
        f_idx = sub.structure_node_of("F")
        c_idx = sub.structure_node_of("C")
        assert order[f_idx] > order[c_idx]

    def test_tie_break_scores_reorder_ties(self, two_components):
        # c-d component unreachable: two singleton structure nodes tied.
        from repro.graph.temporal import DynamicNetwork

        g = DynamicNetwork([("a", "b", 1), ("a", "x", 2), ("a", "y", 3)])
        # make x and y symmetric twins -> they merge into one structure
        # node, so build an asymmetric tie instead via distances:
        sub = combine_structures(g, {"a", "b", "x", "y"}, "a", "b")
        n = sub.number_of_structure_nodes()
        baseline = palette_wl_order(sub)
        flipped = palette_wl_order(sub, tie_break=[0.0] * n)
        assert baseline == flipped  # zero tie-break is a no-op

    def test_initial_scores_length_checked(self, fig3_network):
        sub = _fig3_subgraph(fig3_network)
        with pytest.raises(ValueError):
            palette_wl_order(sub, initial_scores=[1.0, 2.0])

    def test_tie_break_length_checked(self, fig3_network):
        sub = _fig3_subgraph(fig3_network)
        with pytest.raises(ValueError):
            palette_wl_order(sub, tie_break=[0.0])


class TestBilateralScores:
    def test_common_neighbour_scores_two(self, fig3_network):
        sub = _fig3_subgraph(fig3_network)
        scores = bilateral_distance_scores(sub)
        c_idx = sub.structure_node_of("C")
        assert scores[c_idx] == 2.0  # 1 + 1

    def test_one_sided_scores_more(self, fig3_network):
        sub = _fig3_subgraph(fig3_network)
        scores = bilateral_distance_scores(sub)
        g_idx = sub.structure_node_of("G")
        assert scores[g_idx] > 2.0

    def test_unreachable_penalised(self, two_components):
        sub = combine_structures(two_components, {"a", "b", "c", "d"}, "a", "b")
        scores = bilateral_distance_scores(sub)
        c_idx = sub.structure_node_of("c")
        assert scores[c_idx] > scores[0]

    def test_weighted_variant(self, fig3_network):
        sub = _fig3_subgraph(fig3_network)
        scores = bilateral_distance_scores(sub, edge_length=lambda i, j: 0.1)
        c_idx = sub.structure_node_of("C")
        assert scores[c_idx] == pytest.approx(0.2)


class TestSymmetry:
    def test_symmetric_twins_get_adjacent_orders(self):
        """Structurally identical one-sided fans merge, so each remaining
        structure node is distinguishable — orders are stable under
        relabelling of members within a structure node."""
        from repro.graph.temporal import DynamicNetwork

        g1 = DynamicNetwork([("a", "c", 1), ("b", "c", 2), ("a", "p", 3), ("a", "q", 4)])
        g2 = DynamicNetwork([("a", "c", 1), ("b", "c", 2), ("a", "q", 3), ("a", "p", 4)])
        sub1 = combine_structures(g1, {"a", "b", "c", "p", "q"}, "a", "b")
        sub2 = combine_structures(g2, {"a", "b", "c", "p", "q"}, "a", "b")
        assert palette_wl_order(sub1) == palette_wl_order(sub2)

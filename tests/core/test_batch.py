"""Differential tests for the batched multi-pair extraction engine.

The batched CSR driver (:mod:`repro.core.batch`) must be *bit-identical*
to the untouched dict reference over every entry mode, every entry
point, and every pool path — these tests enforce the contract with
randomized networks plus the edge cases the driver special-cases
(empty batches, duplicate pairs, unseen endpoints interleaved with
valid ones).
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import obs
from repro.core.batch import batch_extract
from repro.core.feature import ENTRY_MODES, SSFConfig, SSFExtractor
from repro.core.palette_wl import palette_wl_order, palette_wl_order_many
from repro.core.parallel import parallel_extract_batch
from repro.core.structure import combine_structures
from repro.core.subgraph import h_hop_node_set
from repro.graph.csr import CSRSnapshot
from repro.graph.temporal import DynamicNetwork
from repro.obs.metrics import get_registry


def _random_network(rng: random.Random, n: int, m: int) -> DynamicNetwork:
    links = []
    for _ in range(m):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            links.append((f"n{u}", f"n{v}", float(rng.randint(1, 50))))
    return DynamicNetwork(links)


def _random_pairs(rng: random.Random, n: int, count: int) -> list:
    pairs = []
    for _ in range(count):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            v = (v + 1) % n
        pairs.append((f"n{u}", f"n{v}"))
    return pairs


class TestBatchedDifferential:
    """Randomized batched-csr ≡ dict over all six entry modes."""

    @pytest.mark.parametrize("mode", ENTRY_MODES)
    def test_matches_dict_reference(self, mode):
        rng = random.Random(100 + ENTRY_MODES.index(mode))
        for _ in range(2):
            n = rng.randint(20, 60)
            network = _random_network(rng, n, rng.randint(n, n * 3))
            config = SSFConfig(
                k=rng.choice([4, 6, 10]),
                entry_mode=mode,
                ordering=rng.choice(["influence", "hops"]),
                max_hop=rng.choice([None, 2]),
                compress=rng.choice([True, False]),
            )
            pairs = _random_pairs(rng, n, rng.randint(3, 12))
            # unseen endpoint and an exact duplicate, interleaved
            pairs.insert(1, ("missing", "n0"))
            pairs.append(pairs[0])
            ref = SSFExtractor(network, config, backend="dict")
            got = SSFExtractor(network, config, backend="csr")
            assert np.array_equal(
                ref.extract_batch(pairs), got.extract_batch(pairs)
            )

    def test_multi_batch_matches_dict_all_modes(self):
        rng = random.Random(7)
        network = _random_network(rng, 80, 240)
        config = SSFConfig(k=8)
        pairs = _random_pairs(rng, 80, 25)
        pairs.insert(3, ("ghost", "n0"))
        pairs.insert(7, pairs[0])
        ref = SSFExtractor(network, config, backend="dict")
        got = SSFExtractor(network, config, backend="csr")
        expected = ref.extract_multi_batch(pairs, ENTRY_MODES)
        actual = got.extract_multi_batch(pairs, ENTRY_MODES)
        assert set(expected) == set(actual) == set(ENTRY_MODES)
        for mode in ENTRY_MODES:
            assert np.array_equal(expected[mode], actual[mode]), mode

    def test_batched_matches_per_pair_csr(self):
        rng = random.Random(11)
        network = _random_network(rng, 60, 180)
        config = SSFConfig(k=6)
        pairs = _random_pairs(rng, 60, 20)
        extractor = SSFExtractor(network, config, backend="csr")
        single = np.stack([extractor.extract(a, b) for a, b in pairs])
        assert np.array_equal(single, extractor.extract_batch(pairs))


class TestBatchEdgeCases:
    @pytest.fixture(scope="class")
    def tiny(self):
        return DynamicNetwork(
            [("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 3.0)]
        )

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_empty_batch(self, tiny, backend):
        extractor = SSFExtractor(tiny, SSFConfig(k=3), backend=backend)
        assert extractor.extract_batch([]).shape == (
            0,
            extractor.feature_dim,
        )
        multi = extractor.extract_multi_batch([], ("temporal", "count"))
        assert set(multi) == {"temporal", "count"}
        assert multi["temporal"].shape == (0, extractor.feature_dim)

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_identical_endpoints_raise(self, tiny, backend):
        extractor = SSFExtractor(tiny, SSFConfig(k=3), backend=backend)
        with pytest.raises(ValueError, match="distinct"):
            extractor.extract_batch([("a", "a")])

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_unknown_mode_raises(self, tiny, backend):
        extractor = SSFExtractor(tiny, SSFConfig(k=3), backend=backend)
        with pytest.raises(ValueError, match="unknown entry mode"):
            extractor.extract_multi_batch([("a", "b")], ("bogus",))

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_missing_endpoints_zero_rows(self, tiny, backend):
        extractor = SSFExtractor(tiny, SSFConfig(k=3), backend=backend)
        out = extractor.extract_batch(
            [("a", "b"), ("nope", "b"), ("a", "also-nope"), ("b", "c")]
        )
        assert not out[1].any() and not out[2].any()
        assert np.array_equal(
            out[0], extractor.extract_batch([("a", "b")])[0]
        )

    @pytest.mark.parametrize("backend", ["dict", "csr"])
    def test_duplicate_pairs_identical_rows(self, tiny, backend):
        extractor = SSFExtractor(tiny, SSFConfig(k=3), backend=backend)
        out = extractor.extract_batch([("a", "b"), ("b", "c"), ("a", "b")])
        assert np.array_equal(out[0], out[2])


class TestBatchExtractEntry:
    """Module-level ``batch_extract`` dispatch (R201/R202 plumbing)."""

    def test_backends_agree(self):
        rng = random.Random(23)
        network = _random_network(rng, 40, 120)
        pairs = _random_pairs(rng, 40, 10)
        ref = batch_extract(network, pairs=pairs, backend="dict")
        got = batch_extract(network, pairs=pairs, backend="csr")
        auto = batch_extract(network, pairs=pairs, backend="auto")
        assert np.array_equal(ref, got)
        assert np.array_equal(ref, auto)

    def test_modes_return_per_mode_dict(self):
        rng = random.Random(29)
        network = _random_network(rng, 30, 90)
        pairs = _random_pairs(rng, 30, 6)
        out = batch_extract(
            network, pairs=pairs, modes=("temporal", "binary"), backend="csr"
        )
        assert set(out) == {"temporal", "binary"}
        single = batch_extract(network, pairs=pairs, backend="csr")
        assert np.array_equal(out["temporal"], single)


class TestBallReuse:
    def test_shared_endpoints_hit_ball_cache(self):
        rng = random.Random(31)
        network = _random_network(rng, 50, 150)
        snapshot = CSRSnapshot.from_dynamic(network)
        extractor = SSFExtractor(snapshot, SSFConfig(k=6), backend="csr")
        obs.enable()
        try:
            # every pair shares endpoint n0 → its ball expands once
            pairs = [(f"n{i}", "n0") for i in range(1, 6)]
            extractor.extract_batch(pairs)
            counters = get_registry().snapshot()["counters"]
            assert counters["batch.ball_reuse_hits"] >= len(pairs) - 1
            assert counters["batch.ball_reuse_misses"] >= 1
        finally:
            obs.disable()


class TestPaletteWLManyParity:
    def test_matches_per_subgraph_reference(self):
        rng = random.Random(41)
        network = _random_network(rng, 50, 150)
        subgraphs = []
        for a, b in _random_pairs(rng, 50, 8):
            nodes = h_hop_node_set(network, a, b, 2)
            if len(nodes) < 2:
                continue
            subgraphs.append(combine_structures(network, nodes, a, b))
        assert subgraphs
        sizes = [s.number_of_structure_nodes() for s in subgraphs]
        seg_indptr = np.zeros(len(subgraphs) + 1, dtype=np.int64)
        np.cumsum(sizes, out=seg_indptr[1:])
        degrees, indices = [], []
        for seg, sub in enumerate(subgraphs):
            for i in range(sizes[seg]):
                row = sub.adjacency_sorted(i)
                degrees.append(len(row))
                indices.extend(j + int(seg_indptr[seg]) for j in row)
        nbr_indptr = np.zeros(len(degrees) + 1, dtype=np.int64)
        np.cumsum(np.array(degrees, dtype=np.int64), out=nbr_indptr[1:])
        nbr_indices = np.array(indices, dtype=np.int64)

        def sort_key(flat: int):
            seg = int(np.searchsorted(seg_indptr, flat, side="right")) - 1
            return subgraphs[seg].sort_key(flat - int(seg_indptr[seg]))

        batched = palette_wl_order_many(
            seg_indptr, nbr_indptr, nbr_indices, None, sort_key
        )
        expected = np.concatenate(
            [
                np.asarray(palette_wl_order(sub), dtype=np.int64)
                for sub in subgraphs
            ]
        )
        assert np.array_equal(batched, expected)


class TestPoolPathDifferential:
    """Batched chunks through fork AND spawn pools ≡ dict reference."""

    @pytest.fixture(scope="class")
    def case(self):
        rng = random.Random(53)
        network = _random_network(rng, 70, 210)
        pairs = _random_pairs(rng, 70, 24)
        config = SSFConfig(k=6)
        reference = SSFExtractor(network, config, backend="dict")
        return network, config, pairs, reference.extract_batch(pairs)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_pool_matches_dict(self, case, start_method, monkeypatch):
        network, config, pairs, expected = case
        monkeypatch.setenv("REPRO_START_METHOD", start_method)
        out = parallel_extract_batch(
            network,
            config,
            pairs,
            workers=2,
            min_pairs=1,
            backend="csr",
        )
        assert np.array_equal(out, expected)

"""Tests for node-to-target-link distances (Eq. 1)."""

import pytest

from repro.core.distance import distances_to_link, node_link_distance


class TestDistancesToLink:
    def test_endpoints_at_zero(self, fig3_network):
        dist = distances_to_link(fig3_network, "A", "B")
        assert dist["A"] == 0
        assert dist["B"] == 0

    def test_min_over_both_ends(self, fig3_network):
        dist = distances_to_link(fig3_network, "A", "B")
        assert dist["G"] == 1  # neighbour of A
        assert dist["D"] == 1  # neighbour of B
        assert dist["C"] == 1  # common neighbour
        assert dist["F"] == 2  # via C

    def test_max_hop_truncates(self, fig3_network):
        dist = distances_to_link(fig3_network, "A", "B", max_hop=1)
        assert "F" not in dist
        assert dist["C"] == 1

    def test_unreachable_excluded(self, two_components):
        dist = distances_to_link(two_components, "a", "b")
        assert "c" not in dist

    def test_path_distances(self, path_network):
        dist = distances_to_link(path_network, "a", "b")
        # c is adjacent to b -> 1; f is 4 hops from b
        assert dist["c"] == 1
        assert dist["f"] == 4

    def test_historical_target_links_traversed(self):
        from repro.graph.temporal import DynamicNetwork

        g = DynamicNetwork([("a", "b", 1), ("b", "c", 2)])
        dist = distances_to_link(g, "a", "b")
        assert dist["c"] == 1  # via b

    def test_missing_endpoint_raises(self, fig3_network):
        with pytest.raises(KeyError):
            distances_to_link(fig3_network, "A", "nope")
        with pytest.raises(KeyError):
            distances_to_link(fig3_network, "nope", "B")

    def test_identical_endpoints_rejected(self, fig3_network):
        with pytest.raises(ValueError):
            distances_to_link(fig3_network, "A", "A")


class TestNodeLinkDistance:
    def test_known(self, fig3_network):
        assert node_link_distance(fig3_network, "F", "A", "B") == 2

    def test_unreachable_returns_none(self, two_components):
        assert node_link_distance(two_components, "c", "a", "b") is None

"""Tests for temporal influence (Eq. 2–3, Defs. 8–9)."""

import math

import pytest

from repro.core.influence import link_influence, normalized_influence


class TestLinkInfluence:
    def test_no_decay_at_present(self):
        assert link_influence(10, 10) == 1.0

    def test_exponential_form(self):
        assert link_influence(10, 8, theta=0.5) == pytest.approx(math.exp(-1.0))

    def test_monotone_in_age(self):
        values = [link_influence(100, t) for t in (99, 90, 50, 1)]
        assert values == sorted(values, reverse=True)

    def test_theta_controls_speed(self):
        slow = link_influence(10, 5, theta=0.1)
        fast = link_influence(10, 5, theta=0.9)
        assert slow > fast

    def test_future_link_rejected(self):
        with pytest.raises(ValueError):
            link_influence(10, 11)

    @pytest.mark.parametrize("bad", [0.0, -0.5, 1.5, math.nan])
    def test_bad_theta(self, bad):
        with pytest.raises(ValueError):
            link_influence(10, 5, theta=bad)


class TestNormalizedInfluence:
    def test_empty_is_zero(self):
        assert normalized_influence([], 10) == 0.0

    def test_sums_individual_influences(self):
        stamps = [8, 9, 10]
        expected = sum(link_influence(10, s) for s in stamps)
        assert normalized_influence(stamps, 10) == pytest.approx(expected)

    def test_multiple_links_beat_single(self):
        single = normalized_influence([9], 10)
        multiple = normalized_influence([9, 9], 10)
        assert multiple == pytest.approx(2 * single)

    def test_recent_beats_old(self):
        assert normalized_influence([9], 10) > normalized_influence([2], 10)

    def test_future_stamp_rejected(self):
        with pytest.raises(ValueError):
            normalized_influence([11], 10)

    def test_bounded_by_count(self):
        stamps = [1, 5, 9]
        assert normalized_influence(stamps, 10) <= len(stamps)

"""Tests for structure combination (Algorithm 1, Defs. 4–6)."""

import math

import pytest

from repro.core.structure import StructureNode, combine_structures
from repro.core.subgraph import h_hop_node_set
from repro.graph.temporal import DynamicNetwork


def _members(subgraph):
    return {frozenset(node.members) for node in subgraph.nodes}


class TestStructureNode:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            StructureNode(frozenset())

    def test_len_contains(self):
        node = StructureNode(frozenset({"a", "b"}))
        assert len(node) == 2
        assert "a" in node
        assert "z" not in node

    def test_representative_deterministic(self):
        node = StructureNode(frozenset({"b", "a", "c"}))
        assert node.representative() == "a"


class TestCombineStructuresFig3:
    """The paper's own worked example (Fig. 3)."""

    def test_fig3_merge(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        assert _members(sub) == {
            frozenset({"A"}),
            frozenset({"B"}),
            frozenset({"G", "H", "I"}),
            frozenset({"D", "E"}),
            frozenset({"C"}),
        }

    def test_endpoints_pinned_first(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        assert sub.nodes[0].members == frozenset({"A"})
        assert sub.nodes[1].members == frozenset({"B"})

    def test_structure_links(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        leaves_a = next(
            i for i, n in enumerate(sub.nodes) if n.members == {"G", "H", "I"}
        )
        assert sub.has_structure_link(0, leaves_a)
        assert not sub.has_structure_link(1, leaves_a)
        # all G/H/I - A timestamps collected
        assert sub.link_timestamps(0, leaves_a) == (1.0, 2.0, 3.0)
        assert sub.link_count(0, leaves_a) == 3


class TestMergeSemantics:
    def test_endpoint_not_merged_with_twin(self):
        # x has exactly the same neighbourhood as end node a, but stays apart
        g = DynamicNetwork([("a", "c", 1), ("x", "c", 2), ("b", "c", 3)])
        sub = combine_structures(g, {"a", "b", "c", "x"}, "a", "b")
        assert frozenset({"a"}) in _members(sub)
        assert frozenset({"x"}) in _members(sub)

    def test_hub_merge(self):
        g = DynamicNetwork(
            [
                ("a", "h1", 1),
                ("a", "h2", 2),
                ("b", "h1", 3),
                ("b", "h2", 4),
                ("l1", "a", 5),
                ("l2", "b", 6),
            ]
        )
        sub = combine_structures(
            g, {"a", "b", "h1", "h2", "l1", "l2"}, "a", "b"
        )
        # h1, h2 share {a, b} -> merged; l1 ({a}) vs l2 ({b}) differ.
        assert frozenset({"h1", "h2"}) in _members(sub)

    def test_second_round_merge(self):
        # Leaves l1/l2 hang off hubs h1/h2.  Round 1 cannot merge them
        # (neighbourhoods {h1} vs {h2} differ as raw node sets) but after
        # h1/h2 merge, l1 and l2 see the same structure-level
        # neighbourhood and must merge in round 2.
        g = DynamicNetwork(
            [
                ("a", "h1", 1),
                ("a", "h2", 2),
                ("b", "h1", 3),
                ("b", "h2", 4),
                ("l1", "h1", 5),
                ("l2", "h2", 6),
            ]
        )
        # NOTE: with the leaves attached, h1 nbrs {a,b,l1} != h2 nbrs
        # {a,b,l2}, so h1/h2 do NOT merge and neither do the leaves —
        # the fixed point is all-singletons.  This documents the exact
        # (conservative) semantics of Algorithm 1.
        sub = combine_structures(
            g, {"a", "b", "h1", "h2", "l1", "l2"}, "a", "b"
        )
        assert frozenset({"h1"}) in _members(sub)
        assert frozenset({"l1"}) in _members(sub)

    def test_merged_nodes_share_neighbourhood(self, small_dataset):
        pairs = list(small_dataset.pair_iter())
        a, b = pairs[0]
        nodes = h_hop_node_set(small_dataset, a, b, 1)
        sub = combine_structures(small_dataset, nodes, a, b)
        for node in sub.nodes:
            neighbourhoods = {
                frozenset(m for m in small_dataset.neighbor_view(member) if m in nodes)
                for member in node.members
            }
            assert len(neighbourhoods) == 1

    def test_no_two_nonend_nodes_share_structure(self, small_dataset):
        """Fixed point: no further merge is possible (Algorithm 1's goal)."""
        pairs = list(small_dataset.pair_iter())
        a, b = pairs[3]
        nodes = h_hop_node_set(small_dataset, a, b, 1)
        sub = combine_structures(small_dataset, nodes, a, b)
        adjacency_sets = [frozenset(sub.adjacency(i)) for i in range(len(sub.nodes))]
        non_end = adjacency_sets[2:]
        assert len(set(non_end)) == len(non_end)

    def test_topology_conserved(self, fig3_network):
        """Member-level adjacency is recoverable from the structure level."""
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        for i, j in sub.structure_link_pairs():
            assert sub.link_count(i, j) > 0
        # total member links across structure links == induced subgraph links
        total = sum(sub.link_count(i, j) for i, j in sub.structure_link_pairs())
        induced = fig3_network.subgraph(nodes).number_of_links()
        assert total == induced


class TestValidation:
    def test_endpoints_must_be_in_node_set(self, fig3_network):
        with pytest.raises(ValueError):
            combine_structures(fig3_network, {"A", "C"}, "A", "B")

    def test_distinct_endpoints(self, fig3_network):
        with pytest.raises(ValueError):
            combine_structures(fig3_network, {"A", "C"}, "A", "A")

    def test_structure_node_of(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        assert sub.structure_node_of("A") == 0
        idx = sub.structure_node_of("G")
        assert sub.nodes[idx].members == frozenset({"G", "H", "I"})
        with pytest.raises(KeyError):
            sub.structure_node_of("F")

    def test_internal_link_query_rejected(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        with pytest.raises(ValueError):
            sub.link_timestamps(0, 0)


class TestDistances:
    def test_distances_to_target(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 2)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        dist = sub.distances_to_target()
        assert dist[0] == 0 and dist[1] == 0
        f_idx = sub.structure_node_of("F")
        assert dist[f_idx] == 2

    def test_unreachable_marked(self, two_components):
        sub = combine_structures(two_components, {"a", "b", "c", "d"}, "a", "b")
        dist = sub.distances_to_target()
        c_idx = sub.structure_node_of("c")
        assert dist[c_idx] == -1

    def test_distances_from_endpoint(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 2)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        from_a = sub.distances_from(0)
        leaves_b = sub.structure_node_of("D")
        # D is 2 hops from A (via... A-C-B? no: A-C, C-B, B-D -> 3)
        assert from_a[leaves_b] == 3

    def test_weighted_distances(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 2)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        dist = sub.weighted_distances_from(0, lambda i, j: 0.5)
        c_idx = sub.structure_node_of("C")
        assert dist[c_idx] == pytest.approx(0.5)

    def test_weighted_distances_unreachable(self, two_components):
        sub = combine_structures(two_components, {"a", "b", "c", "d"}, "a", "b")
        dist = sub.weighted_distances_from(0, lambda i, j: 1.0)
        assert math.isinf(dist[sub.structure_node_of("c")])

    def test_weighted_rejects_bad_length(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        with pytest.raises(ValueError):
            sub.weighted_distances_from(0, lambda i, j: 0.0)

    def test_bad_start_index(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        with pytest.raises(IndexError):
            sub.distances_from(99)

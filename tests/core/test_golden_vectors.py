"""Golden-value regression tests for the SSF pipeline.

These pin the exact numeric outputs of the extraction pipeline on the
Fig. 3 network.  Any change to merging, ordering, influence or
unfolding semantics trips them — deliberately: semantic drift in the
feature definition must be a conscious decision (update the values AND
the DESIGN.md decision log together).
"""

import math

import numpy as np
import pytest

from repro.core.feature import SSFConfig, SSFExtractor


@pytest.fixture
def extractor(fig3_network):
    # present time pinned explicitly so the goldens are self-contained
    return lambda **kw: SSFExtractor(
        fig3_network, SSFConfig(k=5, **kw), present_time=9.0
    )


class TestGoldenVectors:
    """Selection order (pinned below): 1=A, 2=B, 3=C, 4={G,H,I}, 5={D,E}.

    Column-major unfolding gives positions
    [A(1,3), A(2,3), A(1,4), A(2,4), A(3,4), A(1,5), A(2,5), A(3,5), A(4,5)]
    = [A–C, B–C, A–{GHI}, 0, 0, 0, B–{DE}, 0, 0].
    """

    def test_count_vector(self, extractor):
        vec = extractor(entry_mode="count", compress=False).extract("A", "B")
        assert vec.tolist() == [1.0, 1.0, 3.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0]

    def test_binary_vector(self, extractor):
        vec = extractor(entry_mode="binary").extract("A", "B")
        assert vec.tolist() == [1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0]

    def test_influence_vector(self, extractor):
        vec = extractor(entry_mode="influence", compress=False).extract("A", "B")
        def f(ts):
            return math.exp(-0.5 * (9.0 - ts))
        expected = [
            f(4),                # A–C at ts 4
            f(5),                # B–C at ts 5
            f(1) + f(2) + f(3),  # A–{G,H,I} at ts 1,2,3
            0.0,
            0.0,
            0.0,
            f(6) + f(7),         # B–{D,E} at ts 6,7
            0.0,
            0.0,
        ]
        assert np.allclose(vec, expected)

    def test_temporal_vector(self, extractor):
        vec = extractor(entry_mode="temporal").extract("A", "B")
        def f(ts):
            return math.exp(-0.5 * (9.0 - ts))
        def temporal(influence, dist=1):
            return (1.0 + math.log1p(influence)) / dist
        expected = [
            temporal(f(4)),
            temporal(f(5)),
            temporal(f(1) + f(2) + f(3)),
            0.0,
            0.0,
            0.0,
            temporal(f(6) + f(7)),
            0.0,
            0.0,
        ]
        assert np.allclose(vec, expected)

    def test_selection_order_pinned(self, extractor):
        ks = extractor().k_structure_subgraph("A", "B")
        members = [frozenset(ks.node(o).members) for o in range(1, 6)]
        assert members == [
            frozenset({"A"}),
            frozenset({"B"}),
            frozenset({"C"}),
            frozenset({"G", "H", "I"}),
            frozenset({"D", "E"}),
        ]

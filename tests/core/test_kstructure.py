"""Tests for K-structure subgraph extraction (Def. 7)."""

import pytest

from repro.core.kstructure import extract_k_structure_subgraph
from repro.graph.temporal import DynamicNetwork


class TestGrowth:
    def test_fig3_k5_uses_one_hop(self, fig3_network):
        ks = extract_k_structure_subgraph(fig3_network, "A", "B", 5)
        assert ks.h == 1
        assert ks.number_selected() == 5

    def test_grows_h_when_needed(self, fig3_network):
        # 1-hop structure subgraph has 5 structure nodes; asking for 6
        # forces h=2 which brings in F.
        ks = extract_k_structure_subgraph(fig3_network, "A", "B", 6)
        assert ks.h == 2
        assert ks.number_selected() == 6

    def test_small_component_stops_early(self):
        g = DynamicNetwork([("x", "y", 1)])
        ks = extract_k_structure_subgraph(g, "x", "y", 10)
        assert ks.number_selected() == 2

    def test_path_growth(self, path_network):
        ks = extract_k_structure_subgraph(path_network, "a", "b", 6)
        assert ks.number_selected() == 6

    def test_max_hop_cap(self, path_network):
        ks = extract_k_structure_subgraph(path_network, "a", "b", 6, max_hop=1)
        assert ks.number_selected() < 6


class TestSelection:
    def test_endpoints_first(self, fig3_network):
        ks = extract_k_structure_subgraph(fig3_network, "A", "B", 5)
        assert ks.node(1).members == frozenset({"A"})
        assert ks.node(2).members == frozenset({"B"})

    def test_truncation_keeps_lowest_orders(self, fig3_network):
        full = extract_k_structure_subgraph(fig3_network, "A", "B", 5)
        trimmed = extract_k_structure_subgraph(fig3_network, "A", "B", 3)
        assert trimmed.number_selected() == 3
        for order in range(1, 4):
            assert trimmed.node(order).members == full.node(order).members

    def test_distances_aligned(self, fig3_network):
        ks = extract_k_structure_subgraph(fig3_network, "A", "B", 5)
        assert ks.distances[0] == 0 and ks.distances[1] == 0
        assert all(d >= 1 for d in ks.distances[2:])


class TestLinkQueries:
    def test_has_link_and_timestamps(self, fig3_network):
        ks = extract_k_structure_subgraph(fig3_network, "A", "B", 5)
        # find the order of the common neighbour C
        c_order = next(
            o
            for o in range(1, 6)
            if ks.node(o).members == frozenset({"C"})
        )
        assert ks.has_link(1, c_order)
        assert ks.has_link(2, c_order)
        assert ks.link_count(1, c_order) == 1
        assert ks.link_timestamps(1, c_order) == (4.0,)

    def test_historical_target_link_visible_at_structure_level(self):
        g = DynamicNetwork([("a", "b", 1), ("a", "c", 2), ("b", "c", 3)])
        ks = extract_k_structure_subgraph(g, "a", "b", 3)
        assert ks.has_link(1, 2)  # the history a-b link exists as structure
        assert ks.link_timestamps(1, 2) == (1.0,)


class TestValidation:
    def test_k_too_small(self, fig3_network):
        with pytest.raises(ValueError):
            extract_k_structure_subgraph(fig3_network, "A", "B", 1)

    def test_missing_node(self, fig3_network):
        with pytest.raises(KeyError):
            extract_k_structure_subgraph(fig3_network, "A", "nope", 5)

    def test_disconnected_endpoints(self, two_components):
        ks = extract_k_structure_subgraph(two_components, "a", "b", 4)
        assert ks.number_selected() == 2  # only the two end nodes reachable

"""End-to-end worked examples: the paper's Fig. 3/4 pipeline by hand.

These tests walk the full extraction pipeline on the Fig. 3 network and
assert every intermediate artefact, serving both as regression tests and
as executable documentation of the paper's worked example.
"""

import numpy as np
import pytest

from repro.core import (
    SSFConfig,
    SSFExtractor,
    combine_structures,
    extract_k_structure_subgraph,
    h_hop_node_set,
    palette_wl_order,
)


class TestFig3Pipeline:
    def test_stage1_one_hop_nodes(self, fig3_network):
        assert h_hop_node_set(fig3_network, "A", "B", 1) == {
            "A", "B", "C", "D", "E", "G", "H", "I",
        }

    def test_stage2_structure_combination(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        # Fig. 3(b): 8 plain nodes collapse into 5 structure nodes
        assert sub.number_of_structure_nodes() == 5

    def test_stage3_ordering(self, fig3_network):
        nodes = h_hop_node_set(fig3_network, "A", "B", 1)
        sub = combine_structures(fig3_network, nodes, "A", "B")
        order = palette_wl_order(sub)
        # the common neighbour C is the closest non-end structure node
        assert order[sub.structure_node_of("C")] == 3

    def test_stage4_k_selection(self, fig3_network):
        ks = extract_k_structure_subgraph(fig3_network, "A", "B", 5)
        members = [ks.node(o).members for o in range(1, 6)]
        assert members[0] == frozenset({"A"})
        assert members[1] == frozenset({"B"})
        assert members[2] == frozenset({"C"})
        assert set(map(frozenset, members[3:])) == {
            frozenset({"G", "H", "I"}),
            frozenset({"D", "E"}),
        }

    def test_stage5_feature_structure(self, fig3_network):
        """The SSF-W (count) vector of Fig. 4's example, fully specified."""
        ext = SSFExtractor(
            fig3_network, SSFConfig(k=5, entry_mode="count", compress=False)
        )
        ks = ext.k_structure_subgraph("A", "B")
        orders = {
            frozenset(ks.node(o).members): o for o in range(1, 6)
        }
        mat = ext.adjacency_matrix("A", "B")
        o_c = orders[frozenset({"C"})]
        o_ghi = orders[frozenset({"G", "H", "I"})]
        o_de = orders[frozenset({"D", "E"})]
        assert mat[0, o_c - 1] == 1.0  # A-C: one link
        assert mat[1, o_c - 1] == 1.0  # B-C: one link
        assert mat[0, o_ghi - 1] == 3.0  # A to its 3 fans
        assert mat[1, o_de - 1] == 2.0  # B to its 2 fans
        assert mat[0, 1] == 0.0  # target entry
        # everything else zero
        total = 2 * (1 + 1 + 3 + 2)
        assert mat.sum() == total


class TestTwitterExample:
    """The Fig. 1 scenario: SSF separates what CN/AA/RA/rWRA cannot."""

    def test_ssf_separates_celebrities_from_fans(self):
        from repro.experiments.motivating import motivating_comparison

        comparison = motivating_comparison(k=6)
        assert comparison["ssf_distinguishes"]
        assert "CN" in comparison["undistinguished"]
        assert "AA" in comparison["undistinguished"]
        assert "RA" in comparison["undistinguished"]
        assert "rWRA" in comparison["undistinguished"]
        assert "PA" not in comparison["undistinguished"]

    def test_ssf_vectors_nonzero(self):
        from repro.experiments.motivating import motivating_comparison

        comparison = motivating_comparison(k=6)
        assert np.any(comparison["ssf_ab"] != 0)
        assert np.any(comparison["ssf_xy"] != 0)

"""Hash-seed independence of SSF extraction.

Python randomises ``str``/``bytes`` hashing per process (PYTHONHASHSEED),
which permutes set/dict iteration order.  The extraction pipeline must be
invariant to that order: the same network must yield bit-identical SSF
vectors no matter the hash seed.  This is the regression guard for the
canonical-ordering fixes in ``structure.py`` / ``temporal.py`` (and the
invariant rule R101 of ``repro lint`` enforces statically).

The test shells out because the hash seed is fixed at interpreter start;
it cannot be varied inside one process.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

# Runs in a child interpreter.  String labels chosen to collide-or-not
# differently across seeds; both backends extracted so the differential
# contract is covered under every seed too.
_CHILD_SCRIPT = """
import json
import sys

from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.temporal import DynamicNetwork

edges = [
    ("alpha", "beta", 1.0), ("alpha", "gamma", 2.0), ("beta", "gamma", 2.5),
    ("gamma", "delta", 3.0), ("delta", "epsilon", 3.5), ("beta", "delta", 4.0),
    ("epsilon", "zeta", 4.5), ("zeta", "alpha", 5.0), ("gamma", "eta", 5.5),
    ("eta", "theta", 6.0), ("theta", "beta", 6.5), ("alpha", "beta", 7.0),
    ("delta", "eta", 7.5), ("epsilon", "gamma", 8.0),
]
network = DynamicNetwork(edges)
pairs = [("alpha", "delta"), ("beta", "epsilon"), ("zeta", "eta")]
config = SSFConfig(k=6)

out = {}
for backend in ("dict", "csr"):
    extractor = SSFExtractor(network, config, backend=backend)
    out[backend] = [extractor.extract(a, b).tolist() for a, b in pairs]
json.dump(out, sys.stdout)
"""


def _extract_under_seed(seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    src_dir = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, f"seed {seed} failed:\n{result.stderr}"
    return result.stdout


@pytest.mark.parametrize("seeds", [("0", "1", "42", "12345")])
def test_ssf_vectors_identical_across_hash_seeds(seeds: tuple[str, ...]) -> None:
    outputs = {seed: _extract_under_seed(seed) for seed in seeds}
    reference_seed = seeds[0]
    reference = outputs[reference_seed]
    assert reference.strip(), "reference run produced no output"
    for seed in seeds[1:]:
        assert outputs[seed] == reference, (
            f"SSF vectors differ between PYTHONHASHSEED={reference_seed} "
            f"and PYTHONHASHSEED={seed}"
        )

"""CFG construction and the may-leak reachability query.

The R5xx family stands on two primitives: :func:`build_cfg` (per-function
control-flow graph with separate normal and exception edges) and
:func:`leaks_past` (can execution reach an exit from ``start`` without
passing a blocker node?).  These tests pin the path semantics the rules
rely on: exception edges into handlers, finally routing, and the
guard-``if`` release idiom.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.cfg import CFG, EXIT, RAISE, build_cfg
from repro.analysis.lint.dataflow import (
    bare_name_args,
    leaks_past,
    method_calls_on,
    returns_name,
    stores_into_attribute,
    uses_name,
)


def cfg_for(source: str) -> CFG:
    tree = ast.parse(source)
    fn = tree.body[0]
    assert isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(fn)


def node_at(cfg: CFG, line: int) -> int:
    for node_id, stmt in cfg.statement_nodes():
        if getattr(stmt, "lineno", None) == line:
            return node_id
    raise AssertionError(f"no CFG node at line {line}")


# ----------------------------------------------------------------------
# leak queries
# ----------------------------------------------------------------------
def test_straight_line_without_release_leaks() -> None:
    cfg = cfg_for("def f():\n    r = acquire()\n    use(r)\n")
    assert leaks_past(cfg, node_at(cfg, 2), set())


def test_release_on_every_path_does_not_leak_normally() -> None:
    source = (
        "def f():\n"
        "    r = acquire()\n"
        "    use(r)\n"
        "    r.close()\n"
    )
    cfg = cfg_for(source)
    blockers = {node_at(cfg, 4)}
    # use(r) can raise past the close -> still leaks via the RAISE exit
    assert leaks_past(cfg, node_at(cfg, 2), blockers)


def test_try_finally_release_covers_exception_paths() -> None:
    source = (
        "def f():\n"
        "    r = acquire()\n"
        "    try:\n"
        "        use(r)\n"
        "    finally:\n"
        "        r.close()\n"
    )
    cfg = cfg_for(source)
    blockers = {node_at(cfg, 6)}
    assert not leaks_past(cfg, node_at(cfg, 2), blockers)


def test_except_handler_release_with_reraise_covers_both_paths() -> None:
    source = (
        "def f():\n"
        "    r = acquire()\n"
        "    try:\n"
        "        use(r)\n"
        "        transfer(r)\n"
        "    except BaseException:\n"
        "        r.close()\n"
        "        raise\n"
    )
    cfg = cfg_for(source)
    # The ExceptHandler node is one CFG statement whose subtree contains
    # the release — exactly how R501 promotes handlers to blockers; the
    # bare-arg transfer blocks the normal path.
    handler = next(
        node_id
        for node_id, stmt in cfg.statement_nodes()
        if isinstance(stmt, ast.ExceptHandler)
    )
    blockers = {node_at(cfg, 5), handler}
    assert not leaks_past(cfg, node_at(cfg, 2), blockers)


def test_return_before_release_leaks() -> None:
    source = (
        "def f(flag):\n"
        "    r = acquire()\n"
        "    if flag:\n"
        "        return None\n"
        "    r.close()\n"
    )
    cfg = cfg_for(source)
    assert leaks_past(cfg, node_at(cfg, 2), {node_at(cfg, 5)})


def test_include_start_exceptions_flag() -> None:
    source = (
        "def f():\n"
        "    r = acquire()\n"
        "    r.close()\n"
    )
    cfg = cfg_for(source)
    blockers = {node_at(cfg, 3)}
    # shm semantics: the creating call failing creates nothing
    assert not leaks_past(cfg, node_at(cfg, 2), blockers)
    # staging-file semantics: a partial write still leaves the file
    assert leaks_past(
        cfg, node_at(cfg, 2), blockers, include_start_exceptions=True
    )


def test_raise_exit_is_reachable_from_uncaught_exception() -> None:
    cfg = cfg_for("def f():\n    risky()\n")
    node = node_at(cfg, 2)
    assert RAISE in cfg.exc[node] or leaks_past(cfg, node, set())
    assert EXIT in cfg.succ[node] or leaks_past(cfg, node, set())


def test_while_loop_back_edge_terminates() -> None:
    source = (
        "def f():\n"
        "    r = acquire()\n"
        "    while cond():\n"
        "        use(r)\n"
        "    r.close()\n"
    )
    cfg = cfg_for(source)
    # must terminate (visited-set) and still see the leak via use(r) raising
    assert leaks_past(cfg, node_at(cfg, 2), {node_at(cfg, 5)})


# ----------------------------------------------------------------------
# dataflow helpers
# ----------------------------------------------------------------------
def stmt_of(source: str) -> ast.stmt:
    return ast.parse(source).body[0]


def test_method_calls_on_collects_method_names() -> None:
    assert method_calls_on(stmt_of("r.close()"), "r") == {"close"}
    assert method_calls_on(stmt_of("x = r.unlink()"), "r") == {"unlink"}
    assert method_calls_on(stmt_of("other.close()"), "r") == set()


def test_bare_name_args_sees_containers_but_not_attributes() -> None:
    assert bare_name_args(stmt_of("f(r)"), "r")
    assert bare_name_args(stmt_of("f(items=[r])"), "r")
    assert not bare_name_args(stmt_of("f(r.buf)"), "r")
    # a nested call receiving the bare name still transfers it
    assert bare_name_args(stmt_of("f(g(r))"), "r")


def test_stores_into_attribute_and_returns_name() -> None:
    assert stores_into_attribute(stmt_of("obj.slot = r"), "r")
    assert stores_into_attribute(stmt_of("table[0] = r"), "r")
    assert not stores_into_attribute(stmt_of("local = r"), "r")
    assert returns_name(stmt_of("def f():\n    return r\n").body[0], "r")  # type: ignore[attr-defined]
    assert uses_name(stmt_of("if r is not None:\n    pass\n"), "r")

"""PR-8 CLI surface: SARIF, relaxed profile, --changed, cache, obs, perf."""

from __future__ import annotations

import json
import shutil
import subprocess
import textwrap
import time
from pathlib import Path

import pytest

from repro.analysis.lint import (
    default_rules,
    lint_paths,
    lint_source,
    run_lint,
)
from repro.obs.metrics import get_registry

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture()
def bad_tree(tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> Path:
    shutil.copytree(FIXTURES / "repro", tmp_path / "repro")
    monkeypatch.chdir(tmp_path)
    return tmp_path


# ----------------------------------------------------------------------
# SARIF
# ----------------------------------------------------------------------
def test_sarif_format_is_valid_and_complete(bad_tree: Path) -> None:
    text, code = run_lint(["repro", "--format", "sarif"])
    assert code == 1
    document = json.loads(text)
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    rule_ids = {rule["id"] for rule in driver["rules"]}
    assert {"R101", "R501", "R601"} <= rule_ids
    assert run["results"]
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        location = result["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] >= 1
        assert location["artifactLocation"]["uri"].endswith(".py")


def test_sarif_out_writes_file_alongside_text(bad_tree: Path) -> None:
    text, code = run_lint(["repro", "--sarif-out", "lint.sarif"])
    assert code == 1
    assert "R101" in text  # stdout stays in the requested format
    document = json.loads(Path("lint.sarif").read_text(encoding="utf-8"))
    assert document["runs"][0]["results"]


def test_sarif_out_respects_baseline_filter(bad_tree: Path) -> None:
    _, code = run_lint(["repro", "--write-baseline"])
    assert code == 0
    _, code = run_lint(["repro", "--sarif-out", "lint.sarif"])
    assert code == 0
    document = json.loads(Path("lint.sarif").read_text(encoding="utf-8"))
    # everything is baselined -> SARIF annotates nothing
    assert document["runs"][0]["results"] == []


# ----------------------------------------------------------------------
# baseline file hygiene
# ----------------------------------------------------------------------
def test_corrupt_baseline_is_a_clear_usage_error(bad_tree: Path) -> None:
    Path("lint-baseline.json").write_text("{not json", encoding="utf-8")
    text, code = run_lint(["repro"])
    assert code == 2
    assert "not valid JSON" in text
    assert "Traceback" not in text


def test_v1_baseline_gets_migration_hint(bad_tree: Path) -> None:
    Path("lint-baseline.json").write_text(
        json.dumps({"version": 1, "entries": []}), encoding="utf-8"
    )
    text, code = run_lint(["repro"])
    assert code == 2
    assert "v1" in text and "--write-baseline" in text


def test_malformed_entry_is_a_clear_usage_error(bad_tree: Path) -> None:
    Path("lint-baseline.json").write_text(
        json.dumps({"version": 2, "entries": [{"path": "x.py"}]}),
        encoding="utf-8",
    )
    text, code = run_lint(["repro"])
    assert code == 2
    assert "malformed entry" in text


# ----------------------------------------------------------------------
# suppression hygiene across rule families
# ----------------------------------------------------------------------
def test_multi_rule_pragma_partially_used_is_not_stale() -> None:
    source = (
        "for x in {1, 2}:  # repro-lint: disable=R101,R501 -- order ignored\n"
        "    print(x)\n"
    )
    violations = lint_source(source, default_rules(), path="src/repro/core/x.py")
    # R101 fired and was absorbed; R501 never fired — the pragma is used,
    # so neither the violation nor a stale-pragma R003 may surface.
    assert violations == []


def test_fully_unused_multi_rule_pragma_is_stale() -> None:
    source = "x = 1  # repro-lint: disable=R101,R501 -- nothing here\n"
    violations = lint_source(source, default_rules(), path="src/repro/core/x.py")
    assert [v.rule for v in violations] == ["R003"]


# ----------------------------------------------------------------------
# --changed
# ----------------------------------------------------------------------
def _git(*argv: str, cwd: Path) -> None:
    subprocess.run(
        ["git", *argv],
        cwd=cwd,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t",
            "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t",
            "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(cwd),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def test_changed_lints_only_touched_files(
    tmp_path: Path, monkeypatch: pytest.MonkeyPatch
) -> None:
    monkeypatch.chdir(tmp_path)
    src = tmp_path / "repro" / "core"
    src.mkdir(parents=True)
    (src / "clean.py").write_text('"""Clean."""\n\nVALUE = 1\n', encoding="utf-8")
    (src / "dirty.py").write_text('"""Clean."""\n\nOTHER = 2\n', encoding="utf-8")
    _git("init", "-b", "main", cwd=tmp_path)
    _git("add", "-A", cwd=tmp_path)
    _git("commit", "-m", "seed", cwd=tmp_path)

    # nothing changed yet
    text, code = run_lint(["repro", "--changed", "HEAD"])
    assert code == 0
    assert "no changed python files" in text

    # an uncommitted edit introduces a violation; only dirty.py is linted
    (src / "dirty.py").write_text(
        "for x in {1, 2}:\n    print(x)\n", encoding="utf-8"
    )
    text, code = run_lint(["repro", "--changed", "HEAD"])
    assert code == 1
    assert "dirty.py" in text and "clean.py" not in text


def test_changed_with_bad_ref_is_usage_error(
    tmp_path: Path, monkeypatch: pytest.MonkeyPatch
) -> None:
    monkeypatch.chdir(tmp_path)
    (tmp_path / "repro").mkdir()
    text, code = run_lint(["repro", "--changed", "no-such-ref"])
    assert code == 2
    assert "git" in text


# ----------------------------------------------------------------------
# relaxed profile + project toggle end to end
# ----------------------------------------------------------------------
def test_relaxed_paths_get_the_relaxed_profile(
    tmp_path: Path, monkeypatch: pytest.MonkeyPatch
) -> None:
    monkeypatch.chdir(tmp_path)
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (core / "ok.py").write_text('"""Ok."""\n\nVALUE = 1\n', encoding="utf-8")
    scripts = tmp_path / "scripts"
    scripts.mkdir()
    (scripts / "tool.py").write_text(
        textwrap.dedent(
            """
            import numpy as np

            rng = np.random.default_rng(7)  # fine under the relaxed profile

            for x in {1, 2}:
                print(x)
            """
        ).lstrip(),
        encoding="utf-8",
    )
    text, code = run_lint(["repro", "--relaxed", "scripts", "--no-baseline"])
    assert code == 1
    assert "R101" in text  # hash-order iteration still flagged
    assert "R103" not in text  # seeded generator construction allowed
    assert "tool.py" in text


def test_no_project_single_pass_still_runs(bad_tree: Path) -> None:
    text, code = run_lint(["repro", "--no-project", "--no-baseline"])
    assert code == 1
    assert "R101" in text


def test_project_cache_round_trip(bad_tree: Path) -> None:
    cache = Path("cache") / "lint-index.json"
    _, code = run_lint(["repro", "--project-cache", str(cache), "--no-baseline"])
    assert code == 1
    assert cache.exists()
    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert "fingerprint" in payload
    # second run hits the cache and reports identically
    text_a, _ = run_lint(["repro", "--project-cache", str(cache), "--no-baseline"])
    text_b, _ = run_lint(["repro", "--no-baseline"])
    assert text_a == text_b


# ----------------------------------------------------------------------
# obs counters
# ----------------------------------------------------------------------
def test_lint_run_emits_obs_counters(bad_tree: Path) -> None:
    registry = get_registry()
    registry.reset()
    try:
        _, code = run_lint(["repro", "--no-baseline"])
        assert code == 1
        snap = registry.snapshot()
        assert snap["counters"]["lint.files"] > 0
        assert snap["counters"]["lint.violations"] > 0
        assert snap["histograms"]["lint.duration_seconds"]["count"] == 1
    finally:
        registry.reset()


# ----------------------------------------------------------------------
# wall-clock budget: two-pass within 2x of single-pass
# ----------------------------------------------------------------------
def test_two_pass_within_2x_of_single_pass() -> None:
    scope = [REPO_SRC / "repro" / "analysis"]
    rules = default_rules()

    def best_of(project: bool, repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.monotonic()
            lint_paths(scope, rules, project=project)
            best = min(best, time.monotonic() - start)
        return best

    single = best_of(project=False)
    double = best_of(project=True)
    assert double <= 2.0 * single + 0.05, (single, double)

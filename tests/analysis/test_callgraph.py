"""Pass-1 project index: symbol table, call resolution, cache payloads."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.lint.callgraph import (
    ProjectIndex,
    build_project_index,
    resolve_ref,
    source_fingerprint,
)
from repro.analysis.lint.engine import (
    load_index_cache,
    module_name_for,
    save_index_cache,
)


def index_of(*modules: tuple[str, str]) -> ProjectIndex:
    return build_project_index(
        (name, f"src/{name.replace('.', '/')}.py", ast.parse(source))
        for name, source in modules
    )


# ----------------------------------------------------------------------
# call resolution
# ----------------------------------------------------------------------
def test_resolves_same_module_call() -> None:
    index = index_of(
        ("repro.core.a", "def helper():\n    pass\n\ndef top():\n    helper()\n")
    )
    (call,) = index.functions["repro.core.a.top"].calls
    assert call.resolved == "repro.core.a.helper"


def test_resolves_cross_module_from_import() -> None:
    index = index_of(
        ("repro.core.a", "def helper():\n    pass\n"),
        (
            "repro.core.b",
            "from repro.core.a import helper\n\ndef top():\n    helper()\n",
        ),
    )
    (call,) = index.functions["repro.core.b.top"].calls
    assert call.resolved == "repro.core.a.helper"


def test_resolves_module_alias_attribute_call() -> None:
    index = index_of(
        ("repro.obs.live", "def heartbeat_tick():\n    pass\n"),
        (
            "repro.core.b",
            "from repro.obs import live\n\ndef top():\n    live.heartbeat_tick()\n",
        ),
    )
    (call,) = index.functions["repro.core.b.top"].calls
    assert call.resolved == "repro.obs.live.heartbeat_tick"


def test_resolves_package_reexport_import() -> None:
    # ``from repro.obs import heartbeat_tick`` — the alias names the
    # package, not the defining module; the unique project-wide match
    # must still resolve.
    index = index_of(
        ("repro.obs.live", "def heartbeat_tick():\n    pass\n"),
        (
            "repro.core.b",
            "from repro.obs import heartbeat_tick\n\ndef top():\n    heartbeat_tick()\n",
        ),
    )
    (call,) = index.functions["repro.core.b.top"].calls
    assert call.resolved == "repro.obs.live.heartbeat_tick"


def test_self_method_call_resolves_to_class() -> None:
    source = (
        "class Extractor:\n"
        "    def extract(self):\n"
        "        return self._inner()\n"
        "    def _inner(self):\n"
        "        return 0\n"
    )
    index = index_of(("repro.core.a", source))
    (call,) = index.functions["repro.core.a.Extractor.extract"].calls
    assert call.resolved == "repro.core.a.Extractor._inner"


def test_ambiguous_bare_name_stays_unresolved() -> None:
    index = index_of(
        ("repro.core.a", "def work():\n    pass\n"),
        ("repro.core.b", "def work():\n    pass\n"),
        ("repro.core.c", "def top():\n    work()\n"),
    )
    (call,) = index.functions["repro.core.c.top"].calls
    assert call.resolved is None


def test_backend_kwarg_recorded_on_call_sites() -> None:
    source = (
        "def entry(pairs, backend='auto'):\n"
        "    return backend\n"
        "def caller(pairs, backend='auto'):\n"
        "    return entry(pairs, backend=backend)\n"
        "def dropper(pairs, backend='auto'):\n"
        "    return entry(pairs)\n"
    )
    index = index_of(("repro.core.a", source))
    (forwarding,) = index.functions["repro.core.a.caller"].calls
    assert forwarding.passes_backend
    (dropping,) = index.functions["repro.core.a.dropper"].calls
    assert not dropping.passes_backend


# ----------------------------------------------------------------------
# function facts
# ----------------------------------------------------------------------
def test_lock_pool_and_global_facts() -> None:
    source = (
        "import threading\n"
        "from multiprocessing import Pool\n"
        "_LOCK = threading.Lock()\n"
        "_STATE = None\n"
        "def spawn(pairs):\n"
        "    with _LOCK:\n"
        "        pass\n"
        "    with Pool(2) as pool:\n"
        "        return list(pool.imap(str, pairs))\n"
        "def init():\n"
        "    global _STATE\n"
        "    _STATE = object()\n"
    )
    index = index_of(("repro.core.a", source))
    spawn = index.functions["repro.core.a.spawn"]
    assert spawn.spawns_pool and spawn.pool_lines
    assert spawn.lock_lines and spawn.lock_lines[0] < spawn.pool_lines[0]
    init = index.functions["repro.core.a.init"]
    assert ("_STATE", 12) in init.global_writes


def test_register_at_fork_detected() -> None:
    index = index_of(
        ("repro.obs.a", "import os\nos.register_at_fork(after_in_child=id)\n"),
        ("repro.obs.b", "import os\n"),
    )
    assert index.modules["repro.obs.a"].registers_at_fork
    assert not index.modules["repro.obs.b"].registers_at_fork


def test_initializer_and_worker_refs_collected() -> None:
    source = (
        "from multiprocessing import Pool\n"
        "def init():\n    pass\n"
        "def work(x):\n    return x\n"
        "def run(pairs):\n"
        "    with Pool(2, initializer=init) as pool:\n"
        "        return list(pool.imap(work, pairs))\n"
    )
    index = index_of(("repro.core.a", source))
    module = index.modules["repro.core.a"]
    assert "init" in module.initializer_refs
    assert "work" in module.worker_entry_refs


# ----------------------------------------------------------------------
# traversals
# ----------------------------------------------------------------------
def test_callees_closure_and_chain() -> None:
    source = (
        "def a():\n    b()\n"
        "def b():\n    c()\n"
        "def c():\n    pass\n"
    )
    index = index_of(("repro.core.m", source))
    q = "repro.core.m."
    assert set(index.callees(q + "a", 1)) == {q + "b"}
    assert set(index.callees(q + "a", 2)) == {q + "b", q + "c"}
    assert index.closure([q + "a"]) >= {q + "a", q + "b", q + "c"}
    assert index.call_chain(q + "a", q + "c", 3) == [q + "a", q + "b", q + "c"]
    assert not index.call_chain(q + "c", q + "a", 3)  # unreachable -> falsy


# ----------------------------------------------------------------------
# serialisation + cache
# ----------------------------------------------------------------------
def test_payload_roundtrip() -> None:
    index = index_of(
        ("repro.core.a", "def helper():\n    pass\n"),
        (
            "repro.core.b",
            "from repro.core.a import helper\n\ndef top():\n    helper()\n",
        ),
    )
    restored = ProjectIndex.from_payload(index.to_payload())
    assert set(restored.functions) == set(index.functions)
    (call,) = restored.functions["repro.core.b.top"].calls
    assert call.resolved == "repro.core.a.helper"


def test_index_cache_hits_only_on_matching_fingerprint(tmp_path: Path) -> None:
    index = index_of(("repro.core.a", "def helper():\n    pass\n"))
    cache = tmp_path / "cache" / "index.json"
    fingerprint = source_fingerprint([("a.py", "def helper():\n    pass\n")])
    save_index_cache(cache, fingerprint, index)
    hit = load_index_cache(cache, fingerprint)
    assert hit is not None and "repro.core.a.helper" in hit.functions
    assert load_index_cache(cache, "other") is None
    assert load_index_cache(tmp_path / "missing.json", fingerprint) is None


def test_source_fingerprint_is_order_insensitive_and_content_sensitive() -> None:
    files = [("a.py", "x = 1\n"), ("b.py", "y = 2\n")]
    assert source_fingerprint(files) == source_fingerprint(list(reversed(files)))
    assert source_fingerprint(files) != source_fingerprint(
        [("a.py", "x = 1\n"), ("b.py", "y = 3\n")]
    )


def test_resolve_ref_dynamic_attribute_tail() -> None:
    index = index_of(
        (
            "repro.core.a",
            "class H:\n    def write(self):\n        pass\n",
        )
    )
    assert resolve_ref(index, "repro.core.a", ".write") == "repro.core.a.H.write"


def test_module_name_for_fixture_layout() -> None:
    assert (
        module_name_for("tests/analysis/fixtures/repro/core/bad_worker_global.py")
        == "repro.core.bad_worker_global"
    )

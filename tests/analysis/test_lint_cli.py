"""CLI surface: exit codes, formats, baseline workflow, fixture files."""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import run_lint

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture()
def bad_tree(tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> Path:
    """A tmp cwd holding a copy of the known-bad/known-good fixtures."""
    shutil.copytree(FIXTURES / "repro", tmp_path / "repro")
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_list_rules() -> None:
    text, code = run_lint(["--list-rules"])
    assert code == 0
    for rule_id in ("R001", "R101", "R202", "R305", "R401"):
        assert rule_id in text


def test_violations_without_baseline_fail(bad_tree: Path) -> None:
    text, code = run_lint(["repro"])
    assert code == 1
    assert "R101" in text and "R102" in text
    assert "good_sorted" not in text


def test_clean_tree_passes(bad_tree: Path) -> None:
    text, code = run_lint(["repro/core/good_sorted.py"])
    assert code == 0


def test_json_format(bad_tree: Path) -> None:
    text, code = run_lint(["repro", "--format", "json"])
    assert code == 1
    payload = json.loads(text)
    rules = {v["rule"] for v in payload["violations"]}
    assert {"R101", "R102"} <= rules


def test_rule_selection(bad_tree: Path) -> None:
    text, code = run_lint(["repro", "--rules", "R102"])
    assert code == 1
    assert "R102" in text and "R101" not in text


def test_unknown_rule_is_usage_error(bad_tree: Path) -> None:
    text, code = run_lint(["repro", "--rules", "R999"])
    assert code == 2
    assert "R999" in text


def test_missing_path_is_usage_error(tmp_path: Path, monkeypatch: pytest.MonkeyPatch) -> None:
    monkeypatch.chdir(tmp_path)
    text, code = run_lint(["no/such/file.txt"])
    assert code == 2


def test_baseline_workflow(bad_tree: Path) -> None:
    # 1. adopt the current violations
    text, code = run_lint(["repro", "--write-baseline"])
    assert code == 0
    assert Path("lint-baseline.json").exists()

    # 2. baselined violations are tolerated, strict mode included
    text, code = run_lint(["repro"])
    assert code == 0
    assert "known (baselined)" in text
    text, code = run_lint(["repro", "--check-baseline"])
    assert code == 0

    # 3. a NEW violation fails regardless of the baseline
    bad = bad_tree / "repro" / "core" / "fresh.py"
    bad.write_text("for x in {1, 2}:\n    print(x)\n", encoding="utf-8")
    text, code = run_lint(["repro"])
    assert code == 1

    # 4. fixing baselined code leaves stale entries: lenient passes,
    #    strict (CI) demands the baseline be regenerated smaller
    bad.unlink()
    for fixed in sorted(bad_tree.rglob("bad_*.py")):
        fixed.write_text('"""Fixed."""\n\nVALUE: int = 1\n', encoding="utf-8")
    text, code = run_lint(["repro"])
    assert code == 0
    text, code = run_lint(["repro", "--check-baseline"])
    assert code == 1
    assert "stale" in text

    # 5. regenerating ratchets the file down to empty
    text, code = run_lint(["repro", "--write-baseline"])
    assert code == 0
    text, code = run_lint(["repro", "--check-baseline"])
    assert code == 0
    payload = json.loads(Path("lint-baseline.json").read_text(encoding="utf-8"))
    assert payload["entries"] == []


def test_no_baseline_flag_ignores_file(bad_tree: Path) -> None:
    _, code = run_lint(["repro", "--write-baseline"])
    assert code == 0
    _, code = run_lint(["repro", "--no-baseline"])
    assert code == 1


def test_module_entry_point() -> None:
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "R101" in result.stdout

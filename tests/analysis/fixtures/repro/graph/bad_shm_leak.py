"""Deliberately bad: SharedMemory leaked on the exception path (R501)."""

from multiprocessing.shared_memory import SharedMemory

import numpy as np


def export_leaky(payload: np.ndarray) -> str:
    shm = SharedMemory(create=True, size=payload.nbytes)
    view = np.ndarray(payload.shape, dtype=payload.dtype, buffer=shm.buf)
    view[...] = payload  # raises on shape mismatch -> block orphaned
    return shm.name


def attach_leaky(name: str) -> int:
    shm = SharedMemory(name=name)
    size = int(shm.size)  # mapping never closed: leaks on every path
    return size

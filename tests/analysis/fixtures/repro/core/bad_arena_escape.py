"""Deliberately bad: a preallocated arena buffer escapes (R504)."""

import numpy as np


class ScratchArena:
    def __init__(self, capacity: int) -> None:
        self.visited = np.zeros(capacity, dtype=np.int64)
        self.scores = np.empty(capacity, dtype=np.float64)


class Engine:
    def __init__(self, capacity: int) -> None:
        self._arena = ScratchArena(capacity)

    def run(self, n: int) -> np.ndarray:
        scores = self._arena.scores
        scores[:n] = 0.0
        return scores[:n]  # view of reused scratch: clobbered next pass

"""Deliberately bad: int32 index arithmetic that overflows (R601)."""

import numpy as np


def pair_keys(owners: np.ndarray, neighbors: np.ndarray, n_nodes: int) -> np.ndarray:
    owners32 = owners.astype(np.int32)
    return owners32 * n_nodes + neighbors


def degree_offsets(counts: np.ndarray) -> np.ndarray:
    counts32 = counts.astype(np.int32)
    return np.cumsum(counts32)

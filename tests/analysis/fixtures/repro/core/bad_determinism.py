"""Known-bad fixture: determinism violations for the lint test-suite.

Staged under a ``repro/core`` directory so :func:`module_name_for`
resolves it into the scoped rules' territory.  Never imported.
"""


def collect(values: set) -> list:
    out = []
    for value in values:
        out.append(hash(value))
    return out

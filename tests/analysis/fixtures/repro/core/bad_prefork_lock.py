"""Deliberately bad: lock taken before a fork-method Pool spawn (R502)."""

import threading
from multiprocessing import Pool

_STATE_LOCK = threading.Lock()


def run(pairs: list) -> list:
    with _STATE_LOCK:
        staged = list(pairs)
    with Pool(2) as pool:
        return list(pool.imap(_work, staged))


def _work(pair: tuple) -> tuple:
    return pair

"""Deliberately bad: unstable sort tie order and dtype-mixed sums (R602/R603)."""

import numpy as np


def rank_nodes(scores: np.ndarray) -> np.ndarray:
    return np.argsort(scores)  # introsort tie order: not bit-stable


def influence_sum(chunks: list) -> np.ndarray:
    total = np.zeros(16, dtype=np.float32)
    for chunk in chunks:
        total += chunk  # float32 accumulator inside the loop
    return total

"""Known-good fixture: canonical ordering idioms. Never imported."""


def collect(values: set) -> list:
    return [repr(value) for value in sorted(values, key=repr)]

"""Deliberately bad: pool initializer rebinds module globals (R503)."""

from multiprocessing import Pool

_EXTRACTOR = None


def _bad_initialize(config: dict) -> None:
    global _EXTRACTOR
    _EXTRACTOR = object()


def run(pairs: list) -> list:
    with Pool(2, initializer=_bad_initialize, initargs=({},)) as pool:
        return list(pool.imap(_work, pairs))


def _work(pair: tuple) -> tuple:
    return pair

"""Baseline ratchet semantics: new always fails, stale forces shrinkage."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import default_rules, lint_source
from repro.analysis.lint.baseline import (
    Baseline,
    BaselineEntry,
    compare_to_baseline,
)
from repro.analysis.lint.engine import Violation

CORE = "src/repro/core/sample.py"


def violation(snippet: str, rule: str = "R101", line: int = 1) -> Violation:
    return Violation(
        rule=rule,
        path=CORE,
        line=line,
        column=0,
        message="test violation",
        snippet=snippet,
    )


def test_from_violations_aggregates_counts() -> None:
    baseline = Baseline.from_violations(
        [violation("for x in s:", line=3), violation("for x in s:", line=9)]
    )
    (entry,) = baseline.entries
    assert entry.count == 2
    assert baseline.total() == 2


def test_dump_load_roundtrip(tmp_path: Path) -> None:
    baseline = Baseline.from_violations(
        [violation("for x in s:"), violation("hash(x)", rule="R102")]
    )
    target = tmp_path / "baseline.json"
    baseline.dump(target)
    loaded = Baseline.load(target)
    assert loaded.entries == baseline.entries
    # deterministic serialisation: dumping again is byte-identical
    second = tmp_path / "again.json"
    loaded.dump(second)
    assert target.read_text() == second.read_text()


def test_load_rejects_unknown_version(tmp_path: Path) -> None:
    target = tmp_path / "baseline.json"
    target.write_text('{"version": 99, "entries": []}', encoding="utf-8")
    with pytest.raises(ValueError, match="version"):
        Baseline.load(target)


def test_new_violation_fails_even_in_lenient_mode() -> None:
    comparison = compare_to_baseline([violation("for x in s:")], Baseline(entries=[]))
    assert comparison.new and not comparison.known and not comparison.stale
    assert not comparison.ok(strict=False)
    assert not comparison.ok(strict=True)


def test_known_violation_is_tolerated() -> None:
    baseline = Baseline.from_violations([violation("for x in s:")])
    comparison = compare_to_baseline([violation("for x in s:", line=42)], baseline)
    assert not comparison.new and len(comparison.known) == 1 and not comparison.stale
    assert comparison.ok(strict=True)


def test_count_budget_absorbs_at_most_count() -> None:
    baseline = Baseline(
        entries=[BaselineEntry(path=CORE, rule="R101", snippet="for x in s:", count=2)]
    )
    three = [violation("for x in s:", line=n) for n in (1, 2, 3)]
    comparison = compare_to_baseline(three, baseline)
    assert len(comparison.known) == 2
    assert len(comparison.new) == 1


def test_fully_fixed_entry_is_stale() -> None:
    baseline = Baseline.from_violations([violation("for x in s:")])
    comparison = compare_to_baseline([], baseline)
    assert comparison.stale == baseline.entries
    assert comparison.ok(strict=False), "lenient mode tolerates stale entries"
    assert not comparison.ok(strict=True), "strict mode ratchets them out"


def test_partially_fixed_entry_is_stale() -> None:
    baseline = Baseline(
        entries=[BaselineEntry(path=CORE, rule="R101", snippet="for x in s:", count=2)]
    )
    comparison = compare_to_baseline([violation("for x in s:")], baseline)
    assert len(comparison.known) == 1
    assert comparison.stale, "unused allowance must register as stale"
    assert not comparison.ok(strict=True)


def test_end_to_end_with_real_lint_output() -> None:
    source = "for x in {1, 2, 3}:\n    print(x)\n"
    found = lint_source(source, default_rules(["R101"]), path=CORE)
    baseline = Baseline.from_violations(found)
    comparison = compare_to_baseline(found, baseline)
    assert comparison.ok(strict=True)
    # fixing the file strands the entry -> strict run fails until regenerated
    fixed = lint_source(
        "for x in sorted({1, 2, 3}):\n    print(x)\n",
        default_rules(["R101"]),
        path=CORE,
    )
    comparison = compare_to_baseline(fixed, baseline)
    assert not comparison.ok(strict=True)

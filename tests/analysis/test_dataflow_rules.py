"""R5xx/R6xx coverage: known-bad and known-good snippets per rule,
plus the deliberately-buggy fixture files linted end to end.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis.lint import (
    Violation,
    default_rules,
    lint_paths,
    lint_source,
    relaxed_rules,
)
from repro.analysis.lint.rules import RELAXED_RULE_IDS

CORE = "src/repro/core/sample.py"
GRAPH = "src/repro/graph/sample.py"
FIXTURES = Path(__file__).parent / "fixtures"


def run(source: str, rule_id: str, path: str = CORE) -> list[Violation]:
    violations = lint_source(
        textwrap.dedent(source), default_rules([rule_id]), path=path
    )
    return [v for v in violations if v.rule == rule_id]


# ----------------------------------------------------------------------
# R501 resource-lifecycle
# ----------------------------------------------------------------------
def test_r501_flags_shm_leak_on_exception_path() -> None:
    bad = """
    from multiprocessing.shared_memory import SharedMemory

    def export(nbytes: int) -> str:
        shm = SharedMemory(create=True, size=nbytes)
        populate(shm.buf)
        name = shm.name
        shm.close()
        return name
    """
    (violation,) = run(bad, "R501", path=GRAPH)
    assert "SharedMemory" in violation.message
    assert "exception" in violation.message


def test_r501_accepts_handler_cleanup_with_reraise() -> None:
    good = """
    from multiprocessing.shared_memory import SharedMemory

    def export(nbytes: int) -> str:
        shm = SharedMemory(create=True, size=nbytes)
        try:
            populate(shm.buf)
            name = shm.name
            shm.close()
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return name
    """
    assert run(good, "R501", path=GRAPH) == []


def test_r501_accepts_try_finally_release() -> None:
    good = """
    from multiprocessing.shared_memory import SharedMemory

    def peek(name: str) -> int:
        shm = SharedMemory(name=name)
        try:
            return int(shm.size)
        finally:
            shm.close()
    """
    assert run(good, "R501", path=GRAPH) == []


def test_r501_ownership_transfer_is_a_release() -> None:
    good = """
    from multiprocessing.shared_memory import SharedMemory

    def export(self, nbytes: int) -> None:
        shm = SharedMemory(create=True, size=nbytes)
        self._shm = shm
    """
    assert run(good, "R501", path=GRAPH) == []


def test_r501_guarded_finally_release_idiom() -> None:
    good = """
    def round_trip(snapshot) -> list:
        handle = None
        try:
            handle = snapshot.to_shared()
            return dispatch(handle)
        finally:
            if handle is not None:
                handle.unlink()
    """
    assert run(good, "R501", path=CORE) == []


def test_r501_handle_leak_without_cleanup() -> None:
    bad = """
    def round_trip(snapshot) -> list:
        handle = snapshot.to_shared()
        out = dispatch_by_name(handle.shm_name)
        return out
    """
    (violation,) = run(bad, "R501", path=CORE)
    assert "handle" in violation.message


def test_r501_staging_file_leak_and_fix() -> None:
    bad = """
    import os

    def write(path, data) -> None:
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)
    """
    (violation,) = run(bad, "R501", path=CORE)
    assert "staging" in violation.message
    good = """
    import os

    def write(path, data) -> None:
        tmp = path.with_name(path.name + ".tmp")
        try:
            tmp.write_bytes(data)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
    """
    assert run(good, "R501", path=CORE) == []


def test_r501_fd_requires_os_close() -> None:
    bad = """
    import os

    def read_header(path: str) -> bytes:
        fd = os.open(path, os.O_RDONLY)
        header = os.read(fd, 16)
        return header
    """
    (violation,) = run(bad, "R501", path=CORE)
    assert "descriptor" in violation.message
    good = """
    import os

    def read_header(path: str) -> bytes:
        fd = os.open(path, os.O_RDONLY)
        try:
            return os.read(fd, 16)
        finally:
            os.close(fd)
    """
    assert run(good, "R501", path=CORE) == []


# ----------------------------------------------------------------------
# R502 pre-fork-concurrency
# ----------------------------------------------------------------------
def test_r502_flags_lock_before_pool_spawn() -> None:
    bad = """
    import threading
    from multiprocessing import Pool

    _LOCK = threading.Lock()

    def run(pairs):
        with _LOCK:
            staged = list(pairs)
        with Pool(2) as pool:
            return list(pool.imap(str, staged))
    """
    (violation,) = run(bad, "R502")
    assert "before spawning" in violation.message


def test_r502_flags_thread_start_before_pool() -> None:
    bad = """
    import threading
    from multiprocessing import Pool

    def run(pairs):
        worker = threading.Thread(target=print)
        worker.start()
        with Pool(2) as pool:
            return list(pool.imap(str, pairs))
    """
    assert len(run(bad, "R502")) >= 1


def test_r502_register_at_fork_exempts_module() -> None:
    good = """
    import os
    import threading
    from multiprocessing import Pool

    _LOCK = threading.Lock()
    os.register_at_fork(after_in_child=lambda: None)

    def run(pairs):
        with _LOCK:
            staged = list(pairs)
        with Pool(2) as pool:
            return list(pool.imap(str, staged))
    """
    assert run(good, "R502") == []


def test_r502_lock_after_spawn_is_fine() -> None:
    good = """
    import threading
    from multiprocessing import Pool

    _LOCK = threading.Lock()

    def run(pairs):
        with Pool(2) as pool:
            out = list(pool.imap(str, pairs))
        with _LOCK:
            return out
    """
    assert run(good, "R502") == []


def test_r502_callee_lock_before_spawn_reports_chain() -> None:
    bad = """
    import threading
    from multiprocessing import Pool

    _LOCK = threading.Lock()

    def warm_up():
        with _LOCK:
            return 1

    def run(pairs):
        warm_up()
        with Pool(2) as pool:
            return list(pool.imap(str, pairs))
    """
    (violation,) = run(bad, "R502")
    assert violation.chain  # resolved call chain surfaces in the report
    assert "warm_up" in violation.chain


# ----------------------------------------------------------------------
# R503 worker-global-write
# ----------------------------------------------------------------------
def test_r503_flags_initializer_global_write() -> None:
    bad = """
    from multiprocessing import Pool

    _STATE = None

    def init(config):
        global _STATE
        _STATE = object()

    def run(pairs):
        with Pool(2, initializer=init) as pool:
            return list(pool.imap(str, pairs))
    """
    (violation,) = run(bad, "R503")
    assert "_STATE" in violation.message


def test_r503_flags_worker_entry_callee_write() -> None:
    bad = """
    from multiprocessing import Pool

    _COUNT = 0

    def bump():
        global _COUNT
        _COUNT = _COUNT + 1

    def work(pair):
        bump()
        return pair

    def run(pairs):
        with Pool(2) as pool:
            return list(pool.imap(work, pairs))
    """
    (violation,) = run(bad, "R503")
    assert "work" in violation.chain and "bump" in violation.chain


def test_r503_sanctioned_obs_reset_closure_is_exempt() -> None:
    good = """
    from multiprocessing import Pool

    _OBS = None

    def apply_worker_obs_state(state):
        reset(state)

    def reset(state):
        global _OBS
        _OBS = state

    def run(pairs, state):
        with Pool(2, initializer=apply_worker_obs_state, initargs=(state,)) as pool:
            return list(pool.imap(str, pairs))
    """
    assert run(good, "R503") == []


def test_r503_container_mutation_is_fine() -> None:
    good = """
    from multiprocessing import Pool

    class _State:
        extractor = None

    _WORKER = _State()

    def init(config):
        _WORKER.extractor = object()

    def run(pairs):
        with Pool(2, initializer=init) as pool:
            return list(pool.imap(str, pairs))
    """
    assert run(good, "R503") == []


# ----------------------------------------------------------------------
# R504 arena-escape
# ----------------------------------------------------------------------
ARENA_PREFIX = """
import numpy as np

class BatchArena:
    def __init__(self, cap: int) -> None:
        self.visited = np.zeros(cap, dtype=np.int64)
        self.scores = np.empty(cap, dtype=np.float64)

class Engine:
    def __init__(self, cap: int) -> None:
        self._arena = BatchArena(cap)
"""


def test_r504_flags_returned_buffer_view() -> None:
    bad = ARENA_PREFIX + (
        "    def run(self, n: int):\n"
        "        scores = self._arena.scores\n"
        "        return scores[:n]\n"
    )
    (violation,) = run(bad, "R504")
    assert "arena" in violation.message


def test_r504_copy_sanitizes() -> None:
    good = ARENA_PREFIX + (
        "    def run(self, n: int):\n"
        "        scores = self._arena.scores\n"
        "        return scores[:n].copy()\n"
    )
    assert run(good, "R504") == []


def test_r504_arena_methods_are_exempt() -> None:
    source = ARENA_PREFIX.replace(
        "class Engine:",
        "class ArenaView:",
    )
    good = source + (
        "    def own_buffer(self):\n"
        "        return self._arena\n"
    )
    # methods *of* arena classes may hand out their buffers
    arena_method = """
    import numpy as np

    class BatchArena:
        def __init__(self, cap: int) -> None:
            self.scores = np.empty(cap, dtype=np.float64)

        def view(self, n: int):
            return self.scores[:n]
    """
    assert run(arena_method, "R504") == []


# ----------------------------------------------------------------------
# R601 int32-widening
# ----------------------------------------------------------------------
def test_r601_flags_int32_multiply_and_cumsum() -> None:
    bad = """
    import numpy as np

    def keys(owners, n_nodes):
        owners32 = owners.astype(np.int32)
        return owners32 * n_nodes
    """
    (violation,) = run(bad, "R601")
    assert "int32" in violation.message
    bad_cumsum = """
    import numpy as np

    def offsets(counts):
        counts32 = counts.astype("int32")
        return np.cumsum(counts32)
    """
    assert len(run(bad_cumsum, "R601")) == 1


def test_r601_flags_csr_indices_attribute() -> None:
    bad = """
    def keys(snapshot, n_nodes):
        return snapshot.indices * n_nodes
    """
    assert len(run(bad, "R601", path=GRAPH)) == 1


def test_r601_widened_arithmetic_is_fine() -> None:
    good = """
    import numpy as np

    def keys(owners, n_nodes):
        owners64 = owners.astype(np.int64)
        return owners64 * n_nodes

    def offsets(counts):
        counts32 = counts.astype(np.int32)
        return np.cumsum(counts32, dtype=np.int64)
    """
    assert run(good, "R601") == []


def test_r601_addition_does_not_flag() -> None:
    good = """
    import numpy as np

    def shift(owners):
        owners32 = owners.astype(np.int32)
        return owners32 + 1
    """
    assert run(good, "R601") == []


# ----------------------------------------------------------------------
# R602 stable-sort
# ----------------------------------------------------------------------
def test_r602_flags_default_kind_sorts() -> None:
    bad = "import numpy as np\n\ndef rank(x):\n    return np.argsort(x)\n"
    (violation,) = run(bad, "R602")
    assert "stable" in violation.message
    assert len(run("def rank(x):\n    return x.argsort()\n", "R602")) == 1


def test_r602_flags_unique_return_index() -> None:
    bad = (
        "import numpy as np\n\n"
        "def first(x):\n"
        "    return np.unique(x, return_index=True)\n"
    )
    (violation,) = run(bad, "R602")
    assert "unique" in violation.message


def test_r602_stable_kind_and_plain_unique_are_fine() -> None:
    good = (
        "import numpy as np\n\n"
        "def rank(x):\n"
        "    order = np.argsort(x, kind=\"stable\")\n"
        "    merged = np.sort(x, kind=\"mergesort\")\n"
        "    values = np.unique(x)\n"
        "    return order, merged, values\n"
    )
    assert run(good, "R602") == []


def test_r602_lexsort_is_exempt() -> None:
    good = "import numpy as np\n\ndef rank(a, b):\n    return np.lexsort((a, b))\n"
    assert run(good, "R602") == []


# ----------------------------------------------------------------------
# R603 accumulation-dtype-mix
# ----------------------------------------------------------------------
def test_r603_flags_float32_accumulator_in_loop() -> None:
    bad = """
    import numpy as np

    def influence_sum(chunks):
        total = np.zeros(16, dtype=np.float32)
        for chunk in chunks:
            total += chunk
        return total
    """
    (violation,) = run(bad, "R603")
    assert "float32" in violation.message


def test_r603_flags_narrow_terms_into_wide_accumulator() -> None:
    bad = """
    import numpy as np

    def influence_sum(chunks):
        total = np.zeros(16, dtype=np.float64)
        for chunk in chunks:
            narrow = chunk.astype(np.float32)
            total += narrow
        return total
    """
    (violation,) = run(bad, "R603")
    assert "mixes rounding" in violation.message


def test_r603_float64_throughout_is_fine() -> None:
    good = """
    import numpy as np

    def influence_sum(chunks):
        total = np.zeros(16, dtype=np.float64)
        for chunk in chunks:
            total += chunk
        return total
    """
    assert run(good, "R603") == []


def test_r603_outside_loop_is_fine() -> None:
    good = """
    import numpy as np

    def bump(x):
        small = np.zeros(4, dtype=np.float32)
        small += x
        return small
    """
    assert run(good, "R603") == []


# ----------------------------------------------------------------------
# fixture files, end to end
# ----------------------------------------------------------------------
def test_fixture_files_each_caught() -> None:
    report = lint_paths([FIXTURES], default_rules(), relative_to=FIXTURES)
    by_file: dict[str, set[str]] = {}
    for violation in report.violations:
        by_file.setdefault(Path(violation.path).name, set()).add(violation.rule)
    assert "R501" in by_file["bad_shm_leak.py"]
    assert "R502" in by_file["bad_prefork_lock.py"]
    assert "R503" in by_file["bad_worker_global.py"]
    assert "R504" in by_file["bad_arena_escape.py"]
    assert "R601" in by_file["bad_int32_overflow.py"]
    assert {"R602", "R603"} <= by_file["bad_numeric_hygiene.py"]


# ----------------------------------------------------------------------
# relaxed profile
# ----------------------------------------------------------------------
def test_relaxed_rules_match_any_module_and_skip_style() -> None:
    assert "R501" in RELAXED_RULE_IDS
    assert "R305" not in RELAXED_RULE_IDS
    bad = "for x in {1, 2, 3}:\n    print(x)\n"
    violations = lint_source(bad, relaxed_rules(), path="scripts/tool.py")
    assert [v.rule for v in violations] == ["R101"]


def test_relaxed_r103_allows_seeded_generators() -> None:
    good = (
        "import random\n"
        "import numpy as np\n"
        "rng = np.random.default_rng(7)\n"
        "local = random.Random(7)\n"
    )
    assert lint_source(good, relaxed_rules(), path="tests/x.py") == []


def test_relaxed_r103_still_flags_module_state() -> None:
    bad = "import random\nvalue = random.random()\n"
    violations = lint_source(bad, relaxed_rules(), path="tests/x.py")
    assert [v.rule for v in violations] == ["R103"]
    bad_np = "import numpy as np\nvalue = np.random.rand(3)\n"
    violations = lint_source(bad_np, relaxed_rules(), path="benchmarks/x.py")
    assert [v.rule for v in violations] == ["R103"]

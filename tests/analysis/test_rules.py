"""Per-rule coverage: a known-bad and a known-good snippet for every rule.

Snippets are linted through :func:`lint_source` with module paths chosen
to land inside (or outside) each rule's scope.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import Violation, default_rules, lint_source
from repro.analysis.lint.rules import ALL_RULE_IDS, rule_catalog

CORE = "src/repro/core/sample.py"
GRAPH = "src/repro/graph/sample.py"
EXPERIMENTS = "src/repro/experiments/sample.py"


def run(source: str, rule_id: str, path: str = CORE) -> list[Violation]:
    violations = lint_source(
        textwrap.dedent(source), default_rules([rule_id]), path=path
    )
    return [v for v in violations if v.rule == rule_id]


# ----------------------------------------------------------------------
# R101 set-iteration-order
# ----------------------------------------------------------------------
def test_r101_flags_set_literal_iteration() -> None:
    assert len(run("for x in {1, 2, 3}:\n    print(x)\n", "R101")) == 1


def test_r101_flags_keys_iteration() -> None:
    bad = "def f(d: dict) -> None:\n    for k in d.keys():\n        print(k)\n"
    (violation,) = run(bad, "R101")
    assert ".keys()" in violation.message


def test_r101_flags_tracked_set_assignment() -> None:
    bad = "def f(xs: list) -> None:\n    s = set(xs)\n    for x in s:\n        print(x)\n"
    assert len(run(bad, "R101")) == 1


def test_r101_flags_set_typed_parameter() -> None:
    bad = (
        "def f(members: frozenset) -> None:\n"
        "    for m in members:\n"
        "        print(m)\n"
    )
    (violation,) = run(bad, "R101")
    assert "set-typed parameter" in violation.message


def test_r101_flags_string_annotation_parameter() -> None:
    bad = (
        'def f(members: "frozenset[int]") -> None:\n'
        "    for m in members:\n"
        "        print(m)\n"
    )
    assert len(run(bad, "R101")) == 1


def test_r101_flags_set_operator_expression() -> None:
    bad = (
        "def f(a: set, b: set) -> None:\n"
        "    for x in a & b:\n"
        "        print(x)\n"
    )
    assert len(run(bad, "R101")) == 1


def test_r101_flags_comprehension_over_set() -> None:
    bad = "def f(xs: list) -> list:\n    return [x for x in set(xs)]\n"
    assert len(run(bad, "R101")) == 1


def test_r101_allows_sorted_wrapper() -> None:
    good = "for x in sorted({3, 1, 2}):\n    print(x)\n"
    assert run(good, "R101") == []


def test_r101_allows_order_insensitive_consumer() -> None:
    good = (
        "def f(s: set) -> int:\n"
        "    return min(x for x in s)\n"
    )
    assert run(good, "R101") == []


def test_r101_unannotated_parameter_shadows_outer_set() -> None:
    good = (
        "def outer(xs: list) -> None:\n"
        "    s = set(xs)\n"
        "    def inner(s) -> None:\n"
        "        for x in s:\n"
        "            print(x)\n"
    )
    assert run(good, "R101") == []


def test_r101_reassignment_clears_tracking() -> None:
    good = (
        "def f(xs: list) -> None:\n"
        "    s = set(xs)\n"
        "    s = sorted(s)\n"
        "    for x in s:\n"
        "        print(x)\n"
    )
    assert run(good, "R101") == []


def test_r101_out_of_scope_module_is_exempt() -> None:
    bad = "for x in {1, 2, 3}:\n    print(x)\n"
    assert run(bad, "R101", path=EXPERIMENTS) == []


# ----------------------------------------------------------------------
# R102 builtin-hash
# ----------------------------------------------------------------------
def test_r102_flags_hash_call() -> None:
    (violation,) = run("def f(x: str) -> int:\n    return hash(x)\n", "R102")
    assert "PYTHONHASHSEED" in violation.message


def test_r102_allows_hashlib_and_out_of_scope() -> None:
    good = "import hashlib\ndigest = hashlib.sha256(b'x').hexdigest()\n"
    assert run(good, "R102", path=GRAPH) == []
    assert run("def f(x: str) -> int:\n    return hash(x)\n", "R102", path=EXPERIMENTS) == []


# ----------------------------------------------------------------------
# R103 unseeded-rng
# ----------------------------------------------------------------------
def test_r103_flags_random_import() -> None:
    assert len(run("import random\n", "R103", path=EXPERIMENTS)) == 1
    assert len(run("from random import choice\n", "R103", path=EXPERIMENTS)) == 1


def test_r103_flags_np_random_module_state() -> None:
    bad = "import numpy as np\nx = np.random.rand(3)\n"
    (violation,) = run(bad, "R103", path=EXPERIMENTS)
    assert "np.random.rand" in violation.message


def test_r103_allows_np_random_types_and_rng_module() -> None:
    good = "import numpy as np\nrng: np.random.Generator\n"
    assert run(good, "R103", path=EXPERIMENTS) == []
    bad = "import random\n"
    assert run(bad, "R103", path="src/repro/utils/rng.py") == []


# ----------------------------------------------------------------------
# R201 backend-kwarg
# ----------------------------------------------------------------------
def test_r201_flags_missing_backend_parameter() -> None:
    bad = (
        "class SSFExtractor:\n"
        "    def __init__(self, network: object) -> None:\n"
        "        self._network = network\n"
    )
    (violation,) = run(bad, "R201")
    assert "backend=" in violation.message


def test_r201_flags_unread_backend_parameter() -> None:
    bad = (
        "def parallel_extract_batch(pairs: list, backend: str = 'auto') -> list:\n"
        "    return pairs\n"
    )
    (violation,) = run(bad, "R201")
    assert "never reads it" in violation.message


def test_r201_flags_config_without_backend_field() -> None:
    bad = "class ExperimentConfig:\n    k: int = 10\n"
    (violation,) = run(bad, "R201")
    assert "backend" in violation.message


def test_r201_accepts_forwarded_backend() -> None:
    good = (
        "def parallel_extract_batch(pairs: list, backend: str = 'auto') -> list:\n"
        "    return [(p, backend) for p in pairs]\n"
    )
    assert run(good, "R201") == []


def test_r201_covers_batch_extract_entry_point() -> None:
    bad = (
        "def batch_extract(network: object, pairs: list) -> list:\n"
        "    return pairs\n"
    )
    (violation,) = run(bad, "R201")
    assert "backend=" in violation.message
    good = (
        "def batch_extract(network: object, pairs: list,\n"
        "                  backend: str = 'auto') -> list:\n"
        "    return [(p, backend) for p in pairs]\n"
    )
    assert run(good, "R201") == []


# ----------------------------------------------------------------------
# R202 backend-dispatch
# ----------------------------------------------------------------------
def test_r202_flags_invalid_literal() -> None:
    bad = "def f(backend: str) -> bool:\n    return backend == 'dct'\n"
    (violation,) = run(bad, "R202")
    assert "'dct'" in violation.message


def test_r202_flags_non_exhaustive_chain() -> None:
    bad = (
        "def f(backend: str) -> int:\n"
        "    if backend == 'auto':\n"
        "        return 0\n"
        "    elif backend == 'dict':\n"
        "        return 1\n"
        "    return -1\n"
    )
    (violation,) = run(bad, "R202")
    assert "not exhaustive" in violation.message


def test_r202_accepts_exhaustive_or_raising_chains() -> None:
    covered = (
        "def f(backend: str) -> int:\n"
        "    if backend == 'dict':\n"
        "        return 1\n"
        "    elif backend == 'csr':\n"
        "        return 2\n"
        "    return 0\n"
    )
    assert run(covered, "R202") == []
    with_else = (
        "def f(backend: str) -> int:\n"
        "    if backend == 'auto':\n"
        "        return 0\n"
        "    elif backend == 'dict':\n"
        "        return 1\n"
        "    else:\n"
        "        return 2\n"
    )
    assert run(with_else, "R202") == []
    raising = (
        "def f(backend: str) -> int:\n"
        "    if backend == 'auto':\n"
        "        raise ValueError(backend)\n"
        "    elif backend == 'dict':\n"
        "        return 1\n"
    )
    assert run(raising, "R202") == []


def test_r202_single_guard_is_not_a_dispatch() -> None:
    good = (
        "def f(backend: str) -> None:\n"
        "    if backend == 'csr':\n"
        "        return\n"
    )
    assert run(good, "R202") == []


# ----------------------------------------------------------------------
# R301 mutable-default
# ----------------------------------------------------------------------
def test_r301_flags_mutable_defaults() -> None:
    assert len(run("def f(x=[]):\n    return x\n", "R301", path=EXPERIMENTS)) == 1
    assert len(run("def f(*, x={}):\n    return x\n", "R301", path=EXPERIMENTS)) == 1
    assert len(run("def f(x=list()):\n    return x\n", "R301", path=EXPERIMENTS)) == 1


def test_r301_allows_none_default() -> None:
    assert run("def f(x=None):\n    return x\n", "R301", path=EXPERIMENTS) == []


# ----------------------------------------------------------------------
# R302 bare-except
# ----------------------------------------------------------------------
def test_r302_flags_bare_except() -> None:
    bad = "try:\n    pass\nexcept:\n    pass\n"
    assert len(run(bad, "R302", path=EXPERIMENTS)) == 1


def test_r302_allows_named_exception() -> None:
    good = "try:\n    pass\nexcept ValueError:\n    pass\n"
    assert run(good, "R302", path=EXPERIMENTS) == []


# ----------------------------------------------------------------------
# R303 span-context
# ----------------------------------------------------------------------
def test_r303_flags_bare_span_call() -> None:
    bad = "def f() -> None:\n    span('extract')\n"
    (violation,) = run(bad, "R303")
    assert "with span" in violation.message


def test_r303_allows_with_and_decorator() -> None:
    good = (
        "@span('outer')\n"
        "def f() -> None:\n"
        "    with span('extract'):\n"
        "        pass\n"
    )
    assert run(good, "R303") == []


def test_r303_exempts_obs_package() -> None:
    bad = "span('extract')\n"
    assert run(bad, "R303", path="src/repro/obs/tracing.py") == []


# ----------------------------------------------------------------------
# R304 trace-context-kwarg
# ----------------------------------------------------------------------
SERVE = "src/repro/serve/sample.py"


def test_r304_flags_missing_rctx_parameter() -> None:
    bad = "def recommend(self, user, top_n=10):\n    return []\n"
    (violation,) = run(bad, "R304", path=SERVE)
    assert "rctx" in violation.message


def test_r304_flags_accepted_but_unread_rctx() -> None:
    bad = (
        "def recommend_many(self, queries, *, rctx=None):\n"
        "    return [self.score(q) for q in queries]\n"
    )
    (violation,) = run(bad, "R304", path=SERVE)
    assert "never reads" in violation.message


def test_r304_allows_forwarding_entry_points() -> None:
    good = (
        "async def ingest(self, events, *, rctx=None):\n"
        "    with rspan('serve.ingest', ctx=rctx):\n"
        "        return self.core.apply(events)\n"
    )
    assert run(good, "R304", path=SERVE) == []


def test_r304_only_polices_the_serving_package() -> None:
    elsewhere = "def recommend(self, user, top_n=10):\n    return []\n"
    assert run(elsewhere, "R304", path=CORE) == []
    assert run(elsewhere, "R304", path=EXPERIMENTS) == []


# ----------------------------------------------------------------------
# R305 annotation-coverage
# ----------------------------------------------------------------------
def test_r305_flags_missing_annotations() -> None:
    (violation,) = run("def f(x, y):\n    return x\n", "R305")
    assert "x, y" in violation.message
    assert "return annotation" in violation.message


def test_r305_skips_self_and_accepts_full_annotations() -> None:
    good = (
        "class C:\n"
        "    def f(self, x: int, *args: int, **kw: int) -> int:\n"
        "        return x\n"
    )
    assert run(good, "R305") == []


def test_r305_out_of_scope_module_is_exempt() -> None:
    assert run("def f(x):\n    return x\n", "R305", path=EXPERIMENTS) == []


# ----------------------------------------------------------------------
# R401 float-equality
# ----------------------------------------------------------------------
def test_r401_flags_float_literal_equality() -> None:
    bad = "def f(x: float) -> bool:\n    return x == 1.0\n"
    (violation,) = run(bad, "R401")
    assert "isclose" in violation.message


def test_r401_flags_transcendental_and_influence_calls() -> None:
    bad = "import math\nok = math.exp(x) == y\n"
    assert len(run(bad, "R401")) == 1
    bad = "same = link_influence(s, 1, 2, 0.5) != w\n"
    assert len(run(bad, "R401")) == 1


def test_r401_allows_int_equality_and_comparisons() -> None:
    assert run("def f(x: int) -> bool:\n    return x == 1\n", "R401") == []
    assert run("import math\nok = math.exp(x) < y\n", "R401") == []


# ----------------------------------------------------------------------
# catalog
# ----------------------------------------------------------------------
def test_every_rule_id_is_unique_and_catalogued() -> None:
    assert len(set(ALL_RULE_IDS)) == len(ALL_RULE_IDS)
    catalogued = [rid for rid, _, _ in rule_catalog()]
    assert catalogued == list(ALL_RULE_IDS)


def test_default_rules_rejects_unknown_id() -> None:
    import pytest

    with pytest.raises(ValueError, match="R999"):
        default_rules(["R999"])

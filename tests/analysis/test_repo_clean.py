"""The repository itself is lint-clean against the committed baseline.

This is the acceptance gate the CI job re-runs: ``repro lint src
--check-baseline`` exits 0, the committed baseline matches a fresh scan
exactly, and no determinism (R1xx) violation is tolerated anywhere —
fixed, not baselined, not suppressed.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import default_rules, lint_paths
from repro.analysis.lint.baseline import Baseline, compare_to_baseline

REPO_ROOT = Path(__file__).resolve().parents[2]


def scan():
    return lint_paths([REPO_ROOT / "src"], default_rules(), relative_to=REPO_ROOT)


def test_src_is_clean_against_committed_baseline() -> None:
    report = scan()
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
    comparison = compare_to_baseline(report.violations, baseline)
    assert comparison.ok(strict=True), (
        "repo lint gate failed:\n"
        + "\n".join(v.format() for v in comparison.new)
        + comparison.summary()
    )


def test_committed_baseline_matches_fresh_scan_exactly() -> None:
    report = scan()
    regenerated = Baseline.from_violations(report.violations)
    committed = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert regenerated.entries == committed.entries


def test_no_determinism_violations_even_baselined() -> None:
    report = scan()
    determinism = [v for v in report.violations if v.rule.startswith("R1")]
    assert determinism == [], "R1xx must be fixed, never baselined: " + "\n".join(
        v.format() for v in determinism
    )
    committed = Baseline.load(REPO_ROOT / "lint-baseline.json")
    assert [e for e in committed.entries if e.rule.startswith("R1")] == []


def test_no_unreasoned_suppressions_in_src() -> None:
    report = scan()
    assert [v for v in report.violations if v.rule in ("R001", "R002", "R003")] == []

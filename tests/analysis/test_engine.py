"""Engine behaviour: suppressions, module naming, file walking."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import default_rules, lint_paths, lint_source
from repro.analysis.lint.engine import iter_python_files, module_name_for

BAD_LOOP = "for x in {1, 2, 3}:\n    print(x)\n"
CORE = "src/repro/core/sample.py"


def rules():  # fresh instances per lint run (rules hold per-module state)
    return default_rules()


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    ("path", "expected"),
    [
        ("src/repro/core/feature.py", "repro.core.feature"),
        ("src/repro/core/__init__.py", "repro.core"),
        ("tests/analysis/fixtures/repro/core/bad.py", "repro.core.bad"),
        ("repro/graph/temporal.py", "repro.graph.temporal"),
        ("scripts/standalone.py", "standalone"),
        ("a/repro/b/repro/core/x.py", "repro.core.x"),
    ],
)
def test_module_name_for(path: str, expected: str) -> None:
    assert module_name_for(path) == expected


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
def test_eol_suppression_with_reason_silences() -> None:
    source = "for x in {1, 2, 3}:  # repro-lint: disable=R101 -- test fixture\n    print(x)\n"
    assert lint_source(source, rules(), path=CORE) == []


def test_own_line_suppression_shields_next_line() -> None:
    source = (
        "# repro-lint: disable=R101 -- test fixture\n"
        "for x in {1, 2, 3}:\n"
        "    print(x)\n"
    )
    assert lint_source(source, rules(), path=CORE) == []


def test_suppression_without_reason_does_not_silence() -> None:
    source = "for x in {1, 2, 3}:  # repro-lint: disable=R101\n    print(x)\n"
    violations = lint_source(source, rules(), path=CORE)
    found = sorted(v.rule for v in violations)
    assert "R101" in found, "reasonless pragma must not silence the violation"
    assert "R002" in found, "reasonless pragma must itself be reported"


def test_unknown_rule_in_suppression_reports_r001() -> None:
    source = "x = 1  # repro-lint: disable=R999 -- no such rule\n"
    (violation,) = lint_source(source, rules(), path=CORE)
    assert violation.rule == "R001"
    assert "R999" in violation.message


def test_unused_suppression_reports_r003() -> None:
    source = "x = 1  # repro-lint: disable=R101 -- nothing to silence here\n"
    (violation,) = lint_source(source, rules(), path=CORE)
    assert violation.rule == "R003"


def test_multi_rule_suppression() -> None:
    source = (
        "def f(d: dict) -> None:\n"
        "    for k in d.keys():  # repro-lint: disable=R101, R401 -- partial use\n"
        "        print(k)\n"
    )
    violations = lint_source(source, rules(), path=CORE)
    # R101 is silenced; the suppression counts as used, so no R003 either.
    assert violations == []


def test_suppression_does_not_leak_to_other_lines() -> None:
    source = (
        "for x in {1, 2}:  # repro-lint: disable=R101 -- first loop only\n"
        "    print(x)\n"
        "for y in {3, 4}:\n"
        "    print(y)\n"
    )
    violations = lint_source(source, rules(), path=CORE)
    assert [v.rule for v in violations] == ["R101"]
    assert violations[0].line == 3


# ----------------------------------------------------------------------
# ordering / report shape
# ----------------------------------------------------------------------
def test_violations_sorted_by_position() -> None:
    source = (
        "def g(q):\n"
        "    return hash(q)\n"
        "for x in {1, 2}:\n"
        "    print(x)\n"
    )
    violations = lint_source(source, rules(), path=CORE)
    assert [v.line for v in violations] == sorted(v.line for v in violations)
    assert {v.rule for v in violations} == {"R101", "R102", "R305"}


def test_violation_key_ignores_line_numbers() -> None:
    first = lint_source(BAD_LOOP, rules(), path=CORE)
    shifted = lint_source("x = 0\n\n" + BAD_LOOP, rules(), path=CORE)
    assert [v.key() for v in first] == [v.key() for v in shifted]


# ----------------------------------------------------------------------
# file walking
# ----------------------------------------------------------------------
def test_iter_python_files_and_lint_paths(tmp_path: Path) -> None:
    package = tmp_path / "repro" / "core"
    package.mkdir(parents=True)
    (package / "bad.py").write_text(BAD_LOOP, encoding="utf-8")
    (package / "good.py").write_text("VALUE: int = 1\n", encoding="utf-8")
    (package / "notes.txt").write_text("not python\n", encoding="utf-8")
    pycache = package / "__pycache__"
    pycache.mkdir()
    (pycache / "bad.cpython-310.py").write_text("for x in {1}:\n    pass\n", encoding="utf-8")

    files = list(iter_python_files([tmp_path]))
    assert [f.name for f in files] == ["bad.py", "good.py"]

    report = lint_paths([tmp_path], rules(), relative_to=tmp_path)
    assert report.files_checked == 2
    assert [v.rule for v in report.violations] == ["R101"]
    assert report.violations[0].path == "repro/core/bad.py"


def test_iter_python_files_rejects_non_python(tmp_path: Path) -> None:
    target = tmp_path / "data.json"
    target.write_text("{}", encoding="utf-8")
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([target]))

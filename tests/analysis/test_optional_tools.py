"""The CI-only half of the gate: mypy and ruff, when available.

Neither tool is vendored in the default environment (see
``pyproject.toml``'s ``lint`` extra); these tests skip locally and run
in the ``lint-and-types`` CI job where both are installed.
"""

from __future__ import annotations

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_strict_gate() -> None:
    result = subprocess.run(
        ["mypy"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_check() -> None:
    result = subprocess.run(
        ["ruff", "check", "src", "tests"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr

"""Tests for RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_seed_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_streams_differ(self):
        a, b = spawn_rngs(0, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_deterministic(self):
        first = [g.random(3).tolist() for g in spawn_rngs(1, 3)]
        second = [g.random(3).tolist() for g in spawn_rngs(1, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

"""Tests for the prime utilities behind Palette-WL hashing."""

import math

import pytest

from repro.utils.primes import is_prime, log_prime, nth_prime, primes_up_to_count


class TestNthPrime:
    def test_first_primes(self):
        assert [nth_prime(i) for i in range(1, 11)] == [
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29,
        ]

    def test_large_index_grows_cache(self):
        assert nth_prime(1000) == 7919  # known 1000th prime

    def test_monotone(self):
        values = [nth_prime(i) for i in range(1, 200)]
        assert values == sorted(values)
        assert len(set(values)) == len(values)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            nth_prime(bad)


class TestPrimesUpToCount:
    def test_count_zero(self):
        assert primes_up_to_count(0) == []

    def test_count_five(self):
        assert primes_up_to_count(5) == [2, 3, 5, 7, 11]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            primes_up_to_count(-1)

    def test_all_prime(self):
        assert all(is_prime(p) for p in primes_up_to_count(100))


class TestLogPrime:
    def test_matches_log_of_nth_prime(self):
        for n in (1, 2, 10, 50):
            assert log_prime(n) == pytest.approx(math.log(nth_prime(n)))


class TestIsPrime:
    @pytest.mark.parametrize("value", [2, 3, 5, 7919, 104729])
    def test_primes(self, value):
        assert is_prime(value)

    @pytest.mark.parametrize("value", [-7, 0, 1, 4, 9, 7917])
    def test_non_primes(self, value):
        assert not is_prime(value)

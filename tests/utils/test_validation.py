"""Tests for the validation helpers."""

import math

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -2])
    def test_rejects_small(self, bad):
        with pytest.raises(ValueError):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_rejects_non_int(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "x")


class TestCheckPositive:
    def test_accepts_float(self):
        assert check_positive(0.5, "x") == 0.5

    def test_accepts_int(self):
        assert check_positive(2, "x") == 2.0

    @pytest.mark.parametrize("bad", [0, -1.0])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")

    @pytest.mark.parametrize("bad", [math.inf, math.nan])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError):
            check_positive(bad, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")


class TestCheckFraction:
    def test_inclusive_bounds(self):
        assert check_fraction(0.0, "x") == 0.0
        assert check_fraction(1.0, "x") == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "x", inclusive=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "x", inclusive=False)
        assert check_fraction(0.5, "x", inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.2, "x")

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="threshold"):
            check_fraction(2.0, "threshold")

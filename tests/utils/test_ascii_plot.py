"""Tests for the ASCII chart primitives."""

import pytest

from repro.viz import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestBarChart:
    def test_scaling(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_values_shown(self):
        text = bar_chart({"method": 0.873})
        assert "0.873" in text

    def test_empty(self):
        assert bar_chart({}) == ""

    def test_width_validation(self):
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)

    def test_zero_values_safe(self):
        text = bar_chart({"a": 0.0})
        assert "a" in text


class TestLineChart:
    def test_renders_series_markers(self):
        text = line_chart(
            {"one": [(0, 0), (1, 1)], "two": [(0, 1), (1, 0)]},
            width=20,
            height=6,
        )
        assert "o" in text and "x" in text
        assert "o=one" in text and "x=two" in text

    def test_axis_labels(self):
        text = line_chart({"s": [(5, 0.5), (20, 0.9)]}, width=20, height=6)
        assert "0.900" in text and "0.500" in text
        assert "5" in text and "20" in text

    def test_single_point(self):
        text = line_chart({"s": [(1, 1)]}, width=20, height=6)
        assert "o" in text

    def test_empty(self):
        assert line_chart({}) == ""
        assert line_chart({"s": []}) == ""

    def test_size_validation(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 0)]}, width=5, height=6)


class TestLineChartLabels:
    def test_y_label_rendered(self):
        text = line_chart({"s": [(0, 0), (1, 1)]}, width=20, height=6, y_label="AUC")
        assert "AUC" in text.splitlines()[0]

"""Tests for the link-prediction task construction (Sec. VI-C2)."""

import numpy as np
import pytest

from repro.graph.temporal import DynamicNetwork
from repro.sampling.splits import build_link_prediction_task


class TestTaskConstruction:
    def test_history_excludes_last_timestamp(self, small_dataset):
        task = build_link_prediction_task(small_dataset, seed=0)
        assert task.present_time == small_dataset.last_timestamp()
        assert task.history.last_timestamp() < task.present_time

    def test_positives_emerge_at_present(self, small_dataset):
        task = build_link_prediction_task(small_dataset, seed=0)
        for (u, v), label in zip(task.train_pairs, task.train_labels):
            if label == 1:
                stamps = small_dataset.timestamps(u, v)
                assert task.present_time in stamps

    def test_negatives_not_linked_at_present(self, small_dataset):
        task = build_link_prediction_task(small_dataset, seed=0)
        for (u, v), label in zip(
            list(task.train_pairs) + list(task.test_pairs),
            np.concatenate([task.train_labels, task.test_labels]),
        ):
            if label == 0:
                assert task.present_time not in small_dataset.timestamps(u, v)

    def test_negatives_exclude_history_by_default(self, small_dataset):
        task = build_link_prediction_task(small_dataset, seed=0)
        for (u, v), label in zip(task.train_pairs, task.train_labels):
            if label == 0:
                assert not task.history.has_edge(u, v)

    def test_lax_negatives_allowed(self, small_dataset):
        task = build_link_prediction_task(
            small_dataset, seed=0, exclude_history_negatives=False
        )
        assert task.metadata["exclude_history_negatives"] is False

    def test_balanced_classes(self, small_dataset):
        task = build_link_prediction_task(small_dataset, seed=0)
        assert task.train_labels.sum() == len(task.train_labels) - task.train_labels.sum()
        assert task.test_labels.sum() == len(task.test_labels) - task.test_labels.sum()

    def test_train_fraction(self, small_dataset):
        task = build_link_prediction_task(small_dataset, train_fraction=0.7, seed=0)
        n_train_pos = int(task.train_labels.sum())
        n_test_pos = int(task.test_labels.sum())
        observed = n_train_pos / (n_train_pos + n_test_pos)
        assert observed == pytest.approx(0.7, abs=0.05)

    def test_negative_ratio(self, small_dataset):
        task = build_link_prediction_task(small_dataset, negative_ratio=2.0, seed=0)
        n_pos = int(task.train_labels.sum())
        n_neg = len(task.train_labels) - n_pos
        assert n_neg == pytest.approx(2 * n_pos, abs=1)

    def test_max_positives_caps(self, small_dataset):
        task = build_link_prediction_task(small_dataset, max_positives=10, seed=0)
        total_pos = int(task.train_labels.sum() + task.test_labels.sum())
        assert total_pos == 10

    def test_no_duplicate_pairs(self, small_dataset):
        task = build_link_prediction_task(small_dataset, seed=0)
        seen = set()
        for u, v in list(task.train_pairs) + list(task.test_pairs):
            key = frozenset((u, v))
            assert key not in seen
            seen.add(key)

    def test_deterministic(self, small_dataset):
        t1 = build_link_prediction_task(small_dataset, seed=4)
        t2 = build_link_prediction_task(small_dataset, seed=4)
        assert t1.train_pairs == t2.train_pairs
        assert np.array_equal(t1.train_labels, t2.train_labels)

    def test_summary(self, small_dataset):
        summary = build_link_prediction_task(small_dataset, seed=0).summary()
        assert summary["train_positive"] > 0
        assert summary["test_positive"] > 0
        assert summary["history_links"] < small_dataset.number_of_links()


class TestValidation:
    def test_empty_network(self):
        with pytest.raises(ValueError):
            build_link_prediction_task(DynamicNetwork())

    def test_single_positive_rejected(self):
        g = DynamicNetwork([("a", "b", 1), ("c", "d", 1), ("a", "c", 2)])
        with pytest.raises(ValueError, match="positive"):
            build_link_prediction_task(g)

    def test_bad_train_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            build_link_prediction_task(small_dataset, train_fraction=1.0)

    def test_bad_negative_ratio(self, small_dataset):
        with pytest.raises(ValueError):
            build_link_prediction_task(small_dataset, negative_ratio=0)

    def test_too_dense_for_negatives(self):
        # complete multigraph at the last stamp: no room for negatives
        g = DynamicNetwork()
        nodes = list("abc")
        for i, u in enumerate(nodes):
            for v in nodes[i + 1 :]:
                g.add_edge(u, v, 1)
                g.add_edge(u, v, 2)
        with pytest.raises((ValueError, RuntimeError)):
            build_link_prediction_task(g)

"""Tests for rolling-origin temporal cross-validation."""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.graph.temporal import DynamicNetwork
from repro.sampling.temporal_cv import (
    build_temporal_folds,
    cross_validate_method,
)


class TestBuildTemporalFolds:
    def test_folds_predict_distinct_recent_stamps(self, small_dataset):
        folds = build_temporal_folds(small_dataset, n_folds=3, min_positives=5)
        assert 1 <= len(folds) <= 3
        assert folds.prediction_times == sorted(
            folds.prediction_times, reverse=True
        )
        for task, stamp in zip(folds.tasks, folds.prediction_times):
            assert task.present_time == stamp
            assert task.history.last_timestamp() < stamp

    def test_skips_thin_stamps(self):
        g = DynamicNetwork()
        # stamp 10 has many positives, stamp 9 only one pair
        for i in range(12):
            g.add_edge(f"a{i}", f"b{i}", 1)
            g.add_edge(f"a{i}", f"c{i}", 10)
        g.add_edge("a0", "b1", 9)
        folds = build_temporal_folds(g, n_folds=2, min_positives=5)
        assert 9.0 in folds.skipped_times
        assert folds.prediction_times[0] == 10.0

    def test_no_usable_fold_raises(self):
        g = DynamicNetwork([("a", "b", 1), ("c", "d", 2)])
        with pytest.raises(ValueError):
            build_temporal_folds(g, n_folds=2, min_positives=5)

    def test_validation(self, small_dataset):
        with pytest.raises(ValueError):
            build_temporal_folds(small_dataset, n_folds=0)
        with pytest.raises(ValueError):
            build_temporal_folds(small_dataset, min_positives=1)

    def test_seed_varies_by_fold(self, small_dataset):
        folds = build_temporal_folds(
            small_dataset, n_folds=2, min_positives=5, seed=3
        )
        if len(folds) == 2:
            assert folds.tasks[0].train_pairs != folds.tasks[1].train_pairs


class TestCrossValidateMethod:
    def test_aggregates(self, small_dataset):
        result = cross_validate_method(
            small_dataset,
            "CN",
            config=ExperimentConfig().fast(),
            n_folds=2,
            min_positives=5,
        )
        assert result.method == "CN"
        assert len(result.auc_values) >= 1
        assert 0.0 <= result.auc_mean <= 1.0
        assert result.auc_std >= 0.0

    def test_str_contains_mean_and_folds(self, small_dataset):
        result = cross_validate_method(
            small_dataset,
            "PA",
            config=ExperimentConfig().fast(),
            n_folds=2,
            min_positives=5,
        )
        text = str(result)
        assert "PA" in text and "folds" in text

"""Tests for the negative-sampling strategies."""

import pytest

from repro.sampling.negatives import STRATEGIES, sample_negative_pairs
from repro.sampling.splits import build_link_prediction_task
from repro.graph.temporal import DynamicNetwork


class TestSampleNegativePairs:
    def test_uniform_avoids_forbidden(self, small_dataset):
        history = small_dataset.slice(1, small_dataset.last_timestamp())
        forbidden = {frozenset(p) for p in list(small_dataset.pair_iter())[:5]}
        pairs = sample_negative_pairs(
            small_dataset, history, 20, forbidden, strategy="uniform", seed=0
        )
        assert len(pairs) == 20
        assert all(frozenset(p) not in forbidden for p in pairs)

    def test_no_history_excludes_links(self, small_dataset):
        history = small_dataset.slice(1, small_dataset.last_timestamp())
        pairs = sample_negative_pairs(
            small_dataset, history, 20, set(), strategy="no_history", seed=0
        )
        assert all(not small_dataset.has_edge(u, v) for u, v in pairs)

    def test_two_hop_negatives_share_a_neighbour(self, small_dataset):
        history = small_dataset.slice(1, small_dataset.last_timestamp())
        static = history.static_projection()
        pairs = sample_negative_pairs(
            small_dataset, history, 15, set(), strategy="two_hop", seed=0
        )
        for u, v in pairs:
            assert static.common_neighbors(u, v)
            assert not static.has_edge(u, v)
            assert not small_dataset.has_edge(u, v)

    def test_two_hop_exhaustion_raises(self):
        g = DynamicNetwork([("a", "b", 1), ("b", "c", 2), ("c", "d", 3)])
        history = g.slice(1, 3)
        with pytest.raises(ValueError, match="two-hop"):
            sample_negative_pairs(g, history, 50, set(), strategy="two_hop")

    def test_unknown_strategy(self, small_dataset):
        history = small_dataset.slice(1, small_dataset.last_timestamp())
        with pytest.raises(ValueError):
            sample_negative_pairs(
                small_dataset, history, 5, set(), strategy="bogus"
            )

    def test_deterministic(self, small_dataset):
        history = small_dataset.slice(1, small_dataset.last_timestamp())
        a = sample_negative_pairs(small_dataset, history, 10, set(), seed=4)
        b = sample_negative_pairs(small_dataset, history, 10, set(), seed=4)
        assert a == b

    def test_zero_count(self, small_dataset):
        history = small_dataset.slice(1, small_dataset.last_timestamp())
        assert sample_negative_pairs(small_dataset, history, 0, set()) == []


class TestTaskIntegration:
    def test_two_hop_task(self, small_dataset):
        task = build_link_prediction_task(
            small_dataset, negative_strategy="two_hop", seed=0
        )
        assert task.metadata["negative_strategy"] == "two_hop"
        static = task.history.static_projection()
        for (u, v), label in zip(task.train_pairs, task.train_labels):
            if label == 0:
                assert static.common_neighbors(u, v)

    def test_hard_negatives_lower_cn_auc(self, small_dataset):
        """CN should find two-hop negatives much harder than uniform ones."""
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.runner import LinkPredictionExperiment

        config = ExperimentConfig().fast()
        easy_task = build_link_prediction_task(
            small_dataset, negative_strategy="no_history", seed=0
        )
        hard_task = build_link_prediction_task(
            small_dataset, negative_strategy="two_hop", seed=0
        )
        easy = LinkPredictionExperiment(
            easy_task.history, config, task=easy_task
        ).run_method("CN")
        hard = LinkPredictionExperiment(
            hard_task.history, config, task=hard_task
        ).run_method("CN")
        assert hard.auc < easy.auc

"""Replay harness: stream splitting, measurement, bench-gate shape."""

import json

import pytest

from repro.graph.temporal import DynamicNetwork
from repro.obs.bench import append_history, compare_results, synthetic_network
from repro.serve.replay import run_replay, split_replay_stream


class TestSplitReplayStream:
    def test_partition_on_stamp_boundary(self):
        network = synthetic_network(60, n_ts=10, seed=0)
        history, tail = split_replay_stream(network, event_fraction=0.3)
        cut = min(ts for _, _, ts in tail)
        assert history.last_timestamp() < cut
        assert history.number_of_links() + len(tail) == network.number_of_links()
        stamps = [ts for _, _, ts in tail]
        assert stamps == sorted(stamps)

    def test_validation(self):
        network = synthetic_network(60, n_ts=10, seed=0)
        with pytest.raises(ValueError, match="event_fraction"):
            split_replay_stream(network, event_fraction=1.5)
        single = DynamicNetwork([("a", "b", 1.0), ("b", "c", 1.0)])
        with pytest.raises(ValueError, match="two distinct timestamps"):
            split_replay_stream(single)


class TestRunReplay:
    @pytest.fixture(scope="class")
    def result(self):
        network = synthetic_network(150, n_ts=20, seed=2)
        return run_replay(
            network,
            queries=60,
            concurrency=8,
            top_n=3,
            max_events=24,
            events_per_batch=6,
            seed=2,
        )

    def test_all_queries_complete(self, result):
        assert result.completed == result.queries == 60
        assert result.timeouts == 0
        assert result.ingested_events == 24

    def test_latency_quantiles_ordered(self, result):
        assert 0.0 < result.p50_ms <= result.p95_ms <= result.p99_ms
        assert result.recommendations_per_second > 0.0

    def test_bench_result_shape_gates(self, result):
        bench = result.to_bench_result()
        assert bench["tag"] == "serving"
        assert bench["pairs"] == 60
        serving = bench["backends"]["serving"]
        assert serving["pairs_per_second"] == pytest.approx(
            result.recommendations_per_second
        )
        # the existing bench gate accepts the serving shape
        comparison = compare_results(bench, bench, max_regression=0.3)
        assert comparison.ok

    def test_history_record_tagged(self, result, tmp_path):
        path = tmp_path / "hist.jsonl"
        append_history(path, result.to_bench_result())
        record = json.loads(path.read_text().strip())
        assert record["schema"] == 2
        assert record["result"]["tag"] == "serving"
        assert "p99_ms" in record["result"]["backends"]["serving"]

    def test_summary_mentions_throughput(self, result):
        text = result.summary()
        assert "rec/s" in text and "p99" in text

"""Request-trace propagation: frontend, batching, pool workers, fallback."""

import asyncio
import os

import numpy as np
import pytest

from repro import obs
from repro.core.feature import SSFConfig
from repro.core.parallel import parallel_extract_batch
from repro.graph.temporal import DynamicNetwork
from repro.obs.export import trace_events, validate_flow_events, validate_trace
from repro.obs.rtrace import rspan
from repro.recommend import LinkRecommender
from repro.robust import RetryPolicy, inject
from repro.serve import AsyncScoringFrontend, ServingRecommender
from repro.utils.rng import ensure_rng


@pytest.fixture(autouse=True)
def _recording_obs():
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    obs.get_registry().reset()
    obs.enable()
    obs.record_spans(True)
    yield
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    obs.get_registry().reset()


def small_network(seed=0, n_nodes=24, n_events=80, n_ts=10):
    rng = ensure_rng(seed)
    events = []
    for i in range(1, n_nodes):
        events.append((f"n{i - 1}", f"n{i}", float(rng.integers(1, n_ts))))
    while len(events) < n_events:
        u, v = rng.integers(0, n_nodes, size=2)
        if u == v:
            continue
        events.append((f"n{u}", f"n{v}", float(rng.integers(1, n_ts + 1))))
    return DynamicNetwork(events)


@pytest.fixture(scope="module")
def offline():
    return LinkRecommender.fit(small_network(), config=SSFConfig(k=5), seed=0)


def _by_trace(records, trace_id):
    """The records belonging to a trace, by identity or membership."""
    return [
        r
        for r in records
        if r.get("trace_id") == trace_id or trace_id in r.get("trace_ids", ())
    ]


class TestFrontendTrace:
    def test_one_request_is_one_trace_end_to_end(self, offline):
        serving = ServingRecommender.from_recommender(offline)

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                return await frontend.recommend("n3", top_n=4)

        asyncio.run(scenario())
        records = obs.drain_span_records()
        (request,) = [r for r in records if r["name"] == "serve.request"]
        trace = _by_trace(records, request["trace_id"])
        names = {r["name"] for r in trace}
        # frontend -> batch -> cache probe, one trace id throughout
        assert {"serve.request", "serve.score", "serve.cache_probe"} <= names
        assert request["tags"]["outcome"] == "ok"
        # the score span parents into the request, the probe into the score
        score = next(r for r in trace if r["name"] == "serve.score")
        probe = next(r for r in trace if r["name"] == "serve.cache_probe")
        assert score["parent_span_id"] == request["span_id"]
        assert probe["parent_span_id"] == score["span_id"]
        # and the whole thing exports as a valid flow-annotated trace
        payload = {"traceEvents": trace_events(records)}
        assert validate_trace(payload) == []
        assert validate_flow_events(payload) == []

    def test_batch_fans_in_all_member_request_traces(self, offline):
        serving = ServingRecommender.from_recommender(offline)

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                blocker = asyncio.create_task(
                    frontend.ingest([("n0", "n23", 70.0)])
                )
                await asyncio.gather(
                    blocker,
                    *[frontend.recommend(f"n{i}", top_n=3) for i in range(2, 8)],
                )

        asyncio.run(scenario())
        records = obs.drain_span_records()
        requests = [r for r in records if r["name"] == "serve.request"]
        assert len(requests) == 6
        scores = [r for r in records if r["name"] == "serve.score"]
        fanned = [s for s in scores if len(s.get("trace_ids", [])) > 1]
        assert fanned, "no multi-request batch was coalesced"
        member_ids = set(fanned[0]["trace_ids"])
        assert member_ids <= {r["trace_id"] for r in requests}
        # the batch span itself rides its first member's trace
        assert fanned[0]["trace_id"] in member_ids

    def test_ingest_trace_covers_delta_and_invalidation(self, offline):
        serving = ServingRecommender.from_recommender(offline)

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                await frontend.recommend("n0", top_n=3)  # warm the cache
                await frontend.ingest([("n0", "n9", 90.0)])

        asyncio.run(scenario())
        records = obs.drain_span_records()
        (ingest,) = [r for r in records if r["name"] == "serve.ingest"]
        assert ingest["trace_id"] is not None
        trace = _by_trace(records, ingest["trace_id"])
        names = {r["name"] for r in trace}
        assert {"serve.ingest", "serve.delta_apply", "serve.cache_invalidate"} <= names

    def test_tracing_disabled_keeps_bare_call_shape(self, offline):
        # duck-typed cores (tests monkeypatch recommend_many with a
        # positional-only spy) must keep working when tracing is off
        obs.disable()
        obs.record_spans(False)
        serving = ServingRecommender.from_recommender(offline)
        calls = []
        inner = serving.recommend_many

        def spy(queries):  # no **kwargs on purpose
            calls.append(len(queries))
            return inner(queries)

        serving.recommend_many = spy

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                return await frontend.recommend("n4", top_n=3)

        asyncio.run(scenario())
        assert calls  # the spy was used, bare call shape preserved


@pytest.fixture(scope="module")
def pool_case():
    network = small_network(seed=3, n_nodes=40, n_events=160, n_ts=12)
    nodes = sorted(network.nodes, key=repr)
    pairs = [(nodes[i], nodes[-(i + 1)]) for i in range(16) if nodes[i] != nodes[-(i + 1)]]
    return network, SSFConfig(k=4), pairs


class TestPoolPropagation:
    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_worker_chunks_reparent_to_the_request(
        self, pool_case, monkeypatch, method
    ):
        import multiprocessing as mp

        if method not in mp.get_all_start_methods():
            pytest.skip(f"{method} unavailable on this platform")
        monkeypatch.setenv("REPRO_START_METHOD", method)
        network, config, pairs = pool_case
        with rspan("serve.request", root=True) as request:
            trace_id = request.trace_id
            parallel_extract_batch(
                network, config, pairs, workers=2, min_pairs=1, chunksize=4
            )
        records = obs.drain_span_records()
        request_record = next(r for r in records if r["name"] == "serve.request")
        chunks = [r for r in records if r["name"] == "parallel.worker_chunk"]
        assert chunks, "pool did not run worker chunks"
        for chunk in chunks:
            assert chunk["trace_id"] == trace_id
            assert chunk["parent_span_id"] == request_record["span_id"]
            assert chunk["pid"] != os.getpid()  # really crossed the pool

    def test_fallback_chunks_parent_to_the_original_request(self, pool_case):
        # a crash with no fire budget exhausts retries; the in-parent
        # fallback spans must join the ORIGINAL request trace (a dead
        # worker's span ids never re-surface as parents)
        network, config, pairs = pool_case
        with inject("worker_crash", "1"):
            with rspan("serve.request", root=True) as request:
                trace_id = request.trace_id
                result = parallel_extract_batch(
                    network,
                    config,
                    pairs,
                    workers=2,
                    min_pairs=1,
                    chunksize=4,
                    retry=RetryPolicy(max_retries=1, chunk_timeout=5.0),
                )
        assert result.shape[0] == len(pairs)
        records = obs.drain_span_records()
        request_record = next(r for r in records if r["name"] == "serve.request")
        fallbacks = [r for r in records if r["name"] == "parallel.fallback_chunk"]
        assert fallbacks, "no in-parent fallback ran"
        for fallback in fallbacks:
            assert fallback["trace_id"] == trace_id
            assert fallback["pid"] == os.getpid()  # ran in the parent
            assert fallback["parent_span_id"] == request_record["span_id"]

    def test_fallback_matches_pooled_output_bit_identical(self, pool_case):
        network, config, pairs = pool_case
        clean = parallel_extract_batch(network, config, pairs, workers=1)
        with inject("worker_crash", "1"):
            recovered = parallel_extract_batch(
                network,
                config,
                pairs,
                workers=2,
                min_pairs=1,
                chunksize=4,
                retry=RetryPolicy(max_retries=1, chunk_timeout=5.0),
            )
        assert np.array_equal(clean, recovered)


class TestReplayHeartbeat:
    def test_replay_beats_once_per_query_with_queue_depth(self, monkeypatch):
        from repro.obs.bench import synthetic_network
        from repro.serve import replay as replay_module

        beats = []

        def spy(stage, **kwargs):
            beats.append((stage, kwargs))

        monkeypatch.setattr(replay_module, "heartbeat_tick", spy)
        network = synthetic_network(120, n_ts=16, seed=4)
        replay_module.run_replay(
            network,
            queries=30,
            concurrency=4,
            top_n=3,
            max_events=8,
            events_per_batch=4,
            seed=4,
        )
        replay_beats = [kw for stage, kw in beats if stage == "serve:replay"]
        assert len(replay_beats) == 30  # one per admitted query
        assert [kw["done"] for kw in replay_beats] == [
            float(i + 1) for i in range(30)
        ]
        assert all(kw["total"] == 30.0 for kw in replay_beats)
        assert all("queue_depth" in kw["extra"] for kw in replay_beats)
        assert any(kw["extra"]["queue_depth"] > 0 for kw in replay_beats)
        # rec/s is reported once any requests have completed
        assert any(kw["pairs_per_second"] for kw in replay_beats)

"""Serving front-end: cache-path exactness, invalidation, async surface."""

import asyncio
import time

import pytest

from repro.core.feature import SSFConfig
from repro.graph.temporal import DynamicNetwork
from repro.recommend import LinkRecommender
from repro.robust.policy import RetryPolicy
from repro.serve import (
    AsyncScoringFrontend,
    ServingRecommender,
    ServingTimeout,
)
from repro.utils.rng import ensure_rng


def small_network(seed=0, n_nodes=24, n_events=80, n_ts=10):
    rng = ensure_rng(seed)
    events = []
    # star spine keeps the graph connected (hop balls reach everything)
    for i in range(1, n_nodes):
        events.append((f"n{i - 1}", f"n{i}", float(rng.integers(1, n_ts))))
    while len(events) < n_events:
        u, v = rng.integers(0, n_nodes, size=2)
        if u == v:
            continue
        events.append((f"n{u}", f"n{v}", float(rng.integers(1, n_ts + 1))))
    return DynamicNetwork(events)


@pytest.fixture(scope="module")
def offline():
    return LinkRecommender.fit(
        small_network(), config=SSFConfig(k=5), seed=0
    )


class TestServingExactness:
    def test_cached_path_equals_cold_recompute(self, offline):
        """With the locality ball covering the whole (small, connected)
        graph, invalidation is exact, so a warm cache must reproduce a
        cold instance's recommendations after identical ingestion."""
        warm = ServingRecommender.from_recommender(offline, invalidation_hops=8)
        cold = ServingRecommender.from_recommender(offline, invalidation_hops=8)
        users = ["n0", "n3", "n7", "n3"]
        events = [("n1", "n9", 11.0), ("n20", "x", 11.0), ("n5", "n2", 12.0)]
        for user in users:  # warm the caches
            warm.recommend(user, top_n=5)
        warm.ingest(events)
        cold.ingest(events)
        for user in users:
            assert warm.recommend(user, top_n=5) == cold.recommend(user, top_n=5)
        assert warm.cache.hits > 0 or warm.result_hits > 0

    def test_repeat_query_hits_result_memo(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        first = serving.recommend("n0", top_n=5)
        again = serving.recommend("n0", top_n=5)
        assert first == again
        assert serving.result_hits == 1

    def test_top_n_slices_shared_ranking(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        ten = serving.recommend("n0", top_n=10)
        three = serving.recommend("n0", top_n=3)
        assert three == ten[:3]

    def test_batch_equals_sequential(self, offline):
        batched = ServingRecommender.from_recommender(offline)
        sequential = ServingRecommender.from_recommender(offline)
        queries = [("n0", 5), ("n4", 5), ("n11", 3)]
        together = batched.recommend_many(queries)
        one_by_one = [sequential.recommend(u, top_n=n) for u, n in queries]
        assert together == one_by_one

    def test_unknown_user_raises(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        with pytest.raises(KeyError, match="ghost"):
            serving.recommend("ghost")


class TestIngestInvalidation:
    def test_near_event_invalidates_far_event_does_not(self):
        # a long path: the two ends are far apart (the final-stamp
        # shortcuts give fit() the >= 2 positive pairs it needs while
        # keeping p10/p11 more than 2 hops from p0's candidate balls)
        path = DynamicNetwork(
            [(f"p{i}", f"p{i + 1}", float(i + 1)) for i in range(12)]
            + [("p0", "p5", 13.0), ("p3", "p8", 13.0)]
        )
        offline = LinkRecommender.fit(
            path, config=SSFConfig(k=4), seed=0
        )
        serving = ServingRecommender.from_recommender(
            offline, global_candidates=0, invalidation_hops=2
        )
        serving.recommend("p0", top_n=3)
        baseline = len(serving.cache)
        assert baseline > 0

        # far event: both endpoints > 2 hops from everything p0 touched
        serving.ingest([("p10", "p11", 20.0)])
        assert serving.cache.invalidations == 0
        assert len(serving.cache) == baseline
        serving.recommend("p0", top_n=3)
        assert serving.result_hits >= 1  # ranked result survived too

        # near event: lands inside the cached pairs' locality balls
        serving.ingest([("p0", "p2", 21.0)])
        assert serving.cache.invalidations > 0

    def test_ingest_reflects_new_partner(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        candidate = serving.recommend("n0", top_n=1)[0].node
        serving.ingest([("n0", candidate, 50.0)])
        # the new partner must no longer be suggested
        assert candidate not in {
            s.node for s in serving.recommend("n0", top_n=10)
        }

    def test_new_node_served(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        serving.ingest([("fresh", "n0", 60.0)])
        suggestions = serving.recommend("fresh", top_n=3)
        assert suggestions  # friends-of-friends of n0 exist
        assert all(s.node != "n0" for s in suggestions)  # partner excluded


class TestAsyncFrontend:
    def test_concurrent_requests_coalesce(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        batch_sizes = []
        inner = serving.recommend_many

        def spy(queries):
            batch_sizes.append(len(queries))
            return inner(queries)

        serving.recommend_many = spy

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                # stall the worker briefly so requests pile up behind it
                blocker = asyncio.create_task(
                    frontend.ingest([("n0", "n23", 70.0)])
                )
                results = await asyncio.gather(
                    blocker,
                    *[frontend.recommend("n2", top_n=4) for _ in range(8)],
                )
                return results[1:]

        results = asyncio.run(scenario())
        assert all(result == results[0] for result in results)
        assert max(batch_sizes) > 1  # at least one multi-request batch

    def test_matches_sync_core(self, offline):
        frontend_core = ServingRecommender.from_recommender(offline)
        sync_core = ServingRecommender.from_recommender(offline)

        async def scenario():
            async with AsyncScoringFrontend(frontend_core) as frontend:
                return await frontend.recommend("n5", top_n=5)

        assert asyncio.run(scenario()) == sync_core.recommend("n5", top_n=5)

    def test_timeout_raises_after_retries(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        calls = []

        def slow(queries):
            calls.append(len(queries))
            time.sleep(0.25)
            return [[] for _ in queries]

        serving.recommend_many = slow
        retry = RetryPolicy(max_retries=1, chunk_timeout=0.05)

        async def scenario():
            async with AsyncScoringFrontend(serving, retry=retry) as frontend:
                await frontend.recommend("n0")

        with pytest.raises(ServingTimeout, match="deadline"):
            asyncio.run(scenario())
        assert len(calls) >= 1  # at least the first attempt was scored

    def test_caller_cancellation_leaves_worker_alive(self, offline):
        serving = ServingRecommender.from_recommender(offline)

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                task = asyncio.create_task(frontend.recommend("n1", top_n=4))
                await asyncio.sleep(0)  # let it enqueue
                task.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await task
                # the worker must still serve subsequent requests
                return await frontend.recommend("n2", top_n=4)

        assert asyncio.run(scenario()) == serving.recommend("n2", top_n=4)

    def test_unknown_user_fails_fast(self, offline):
        serving = ServingRecommender.from_recommender(offline)

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                await frontend.recommend("ghost")

        with pytest.raises(KeyError, match="ghost"):
            asyncio.run(scenario())

    def test_requires_start(self, offline):
        serving = ServingRecommender.from_recommender(offline)
        frontend = AsyncScoringFrontend(serving)

        async def scenario():
            await frontend.recommend("n0")

        with pytest.raises(RuntimeError, match="not started"):
            asyncio.run(scenario())

    def test_ingest_through_frontend(self, offline):
        serving = ServingRecommender.from_recommender(offline)

        async def scenario():
            async with AsyncScoringFrontend(serving) as frontend:
                await frontend.recommend("n0", top_n=3)
                return await frontend.ingest([("n0", "brand_new", 80.0)])

        asyncio.run(scenario())
        assert serving.delta.has_node("brand_new")

"""Feature-cache semantics: LRU bound, ball invalidation, staleness."""

import numpy as np
import pytest

from repro.graph.csr import CSRSnapshot
from repro.graph.hashing import subgraph_fingerprint
from repro.graph.temporal import DynamicNetwork
from repro.serve.cache import FeatureCache, pair_key


def row(value):
    return np.full(4, float(value))


class TestPairKey:
    def test_order_invariant(self):
        assert pair_key("b", "a") == pair_key("a", "b")

    def test_distinct_pairs_distinct_keys(self):
        assert pair_key("a", "b") != pair_key("a", "c")


class TestLruBound:
    def test_eviction_keeps_bound(self):
        cache = FeatureCache(max_entries=3)
        for i in range(7):
            cache.put(pair_key("u", f"c{i}"), row(i), [i], present_time=1.0)
        assert len(cache) == 3
        assert cache.evictions == 4
        # oldest entries are the evicted ones
        assert cache.get(pair_key("u", "c0")) is None
        assert cache.get(pair_key("u", "c6")) is not None

    def test_get_refreshes_recency(self):
        cache = FeatureCache(max_entries=2)
        cache.put(pair_key("u", "a"), row(0), [0], present_time=1.0)
        cache.put(pair_key("u", "b"), row(1), [1], present_time=1.0)
        assert cache.get(pair_key("u", "a")) is not None  # a is now MRU
        cache.put(pair_key("u", "c"), row(2), [2], present_time=1.0)
        assert cache.get(pair_key("u", "b")) is None
        assert cache.get(pair_key("u", "a")) is not None

    def test_eviction_unindexes(self):
        cache = FeatureCache(max_entries=1)
        cache.put(pair_key("u", "a"), row(0), [0, 1], present_time=1.0)
        cache.put(pair_key("u", "b"), row(1), [2, 3], present_time=1.0)
        # node 0 belonged only to the evicted entry: nothing to invalidate
        assert cache.invalidate_nodes([0]) == []
        assert cache.invalidate_nodes([2]) == [pair_key("u", "b")]


class TestBallInvalidation:
    def test_drops_exactly_ball_hits(self):
        cache = FeatureCache()
        cache.put(pair_key("u", "a"), row(0), [0, 1, 2], present_time=1.0)
        cache.put(pair_key("u", "b"), row(1), [0, 3, 4], present_time=1.0)
        cache.put(pair_key("u", "c"), row(2), [5, 6], present_time=1.0)
        dropped = cache.invalidate_nodes([1, 4])
        assert dropped == sorted([pair_key("u", "a"), pair_key("u", "b")])
        assert cache.invalidations == 2
        assert cache.get(pair_key("u", "c")) is not None
        assert cache.get(pair_key("u", "a")) is None

    def test_shared_node_drops_both(self):
        cache = FeatureCache()
        cache.put(pair_key("u", "a"), row(0), [0, 1], present_time=1.0)
        cache.put(pair_key("v", "b"), row(1), [1, 2], present_time=1.0)
        assert len(cache.invalidate_nodes([1])) == 2
        assert len(cache) == 0

    def test_miss_on_unknown_node(self):
        cache = FeatureCache()
        cache.put(pair_key("u", "a"), row(0), [0], present_time=1.0)
        assert cache.invalidate_nodes([99]) == []
        assert len(cache) == 1


class TestStaleness:
    def test_stale_entry_dropped(self):
        cache = FeatureCache(max_staleness=2.0)
        cache.put(pair_key("u", "a"), row(0), [0], present_time=10.0)
        assert cache.get(pair_key("u", "a"), present_time=11.0) is not None
        assert cache.get(pair_key("u", "a"), present_time=13.5) is None
        assert len(cache) == 0

    def test_no_bound_by_default(self):
        cache = FeatureCache()
        cache.put(pair_key("u", "a"), row(0), [0], present_time=10.0)
        assert cache.get(pair_key("u", "a"), present_time=1e9) is not None


class TestFingerprintVerify:
    def test_verify_drops_on_substrate_change(self):
        before = CSRSnapshot.from_dynamic(
            DynamicNetwork([("a", "b", 1.0), ("b", "c", 2.0)])
        )
        after = CSRSnapshot.from_dynamic(
            DynamicNetwork([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 3.0)])
        )
        cache = FeatureCache()
        key = pair_key("a", "c")
        ball = [0, 1, 2]
        cache.put(key, row(0), ball, present_time=4.0, snapshot=before, fingerprint=True)
        # same snapshot verifies clean
        assert cache.get(key, snapshot=before, verify=True) is not None
        # changed substrate: fingerprint mismatch is a miss
        assert cache.get(key, snapshot=after, verify=True) is None
        assert len(cache) == 0

    def test_fingerprint_matches_module_function(self):
        snapshot = CSRSnapshot.from_dynamic(
            DynamicNetwork([("a", "b", 1.0), ("b", "c", 2.0)])
        )
        cache = FeatureCache()
        key = pair_key("a", "b")
        cache.put(key, row(0), [0, 1], present_time=3.0, snapshot=snapshot, fingerprint=True)
        entry = cache.get(key)
        assert entry.fingerprint == subgraph_fingerprint(snapshot, [0, 1])


class TestStats:
    def test_hit_rate(self):
        cache = FeatureCache()
        cache.put(pair_key("u", "a"), row(0), [0], present_time=1.0)
        cache.get(pair_key("u", "a"))
        cache.get(pair_key("u", "zzz"))
        assert cache.hit_rate == 0.5
        stats = cache.stats()
        assert stats["hits"] == 1.0 and stats["misses"] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_entries"):
            FeatureCache(max_entries=0)
        with pytest.raises(ValueError, match="max_staleness"):
            FeatureCache(max_staleness=-1.0)

"""Delta-ingestion correctness: rebuilt ≡ delta, bit for bit.

The serving layer's foundation is that a :class:`DeltaCSRSnapshot`
materialisation is indistinguishable from a full
``CSRSnapshot.from_dynamic`` rebuild — same labels, same four arrays,
same dtypes, same cached influence tables, and therefore bit-identical
SSF features over all six entry modes.
"""

import math

import numpy as np
import pytest

from repro.core.feature import ENTRY_MODES, SSFConfig, SSFExtractor
from repro.graph.csr import CSRSnapshot
from repro.graph.temporal import DynamicNetwork
from repro.serve.delta import DecayedInfluenceIndex, DeltaCSRSnapshot, hop_ball
from repro.utils.rng import ensure_rng


def random_events(n_nodes, n_events, n_ts, seed):
    rng = ensure_rng(seed)
    events = []
    while len(events) < n_events:
        u, v = rng.integers(0, n_nodes, size=2)
        if u == v:
            continue
        events.append((f"n{u}", f"n{v}", float(rng.integers(1, n_ts + 1))))
    return events


def assert_snapshots_identical(actual: CSRSnapshot, expected: CSRSnapshot):
    assert list(actual.labels) == list(expected.labels)
    for field in ("indptr", "indices", "ts_indptr", "ts"):
        got, want = getattr(actual, field), getattr(expected, field)
        assert got.dtype == want.dtype, field
        assert np.array_equal(got, want), field


class TestDeltaBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_full_rebuild(self, seed):
        """Random ingestion schedule with interleaved materializations."""
        rng = ensure_rng(100 + seed)
        events = random_events(30, 200, 20, seed)
        warm = events[:80]
        delta = DeltaCSRSnapshot.from_dynamic(DynamicNetwork(warm))
        network = DynamicNetwork(warm)
        cursor = 80
        while cursor < len(events):
            step = int(rng.integers(1, 6))
            batch = events[cursor : cursor + step]
            delta.apply(batch)
            for u, v, ts in batch:
                network.add_edge(u, v, ts)
            cursor += step
            if rng.random() < 0.3:
                assert_snapshots_identical(
                    delta.snapshot(), CSRSnapshot.from_dynamic(network)
                )
        assert_snapshots_identical(
            delta.snapshot(), CSRSnapshot.from_dynamic(network)
        )

    def test_from_empty(self):
        events = random_events(12, 60, 8, seed=7)
        delta = DeltaCSRSnapshot()
        delta.apply(events)
        assert_snapshots_identical(
            delta.snapshot(), CSRSnapshot.from_dynamic(DynamicNetwork(events))
        )

    def test_dense_multilinks(self):
        """Few nodes, many events: repeated stamps on the same pairs."""
        events = random_events(6, 150, 4, seed=3)
        delta = DeltaCSRSnapshot.from_dynamic(DynamicNetwork(events[:50]))
        delta.apply(events[50:])
        network = DynamicNetwork(events)
        assert_snapshots_identical(
            delta.snapshot(), CSRSnapshot.from_dynamic(network)
        )

    def test_new_nodes_mid_stream(self):
        """Nodes unseen at seed time get rows in first-seen order."""
        warm = [("a", "b", 1.0), ("b", "c", 2.0)]
        delta = DeltaCSRSnapshot.from_dynamic(DynamicNetwork(warm))
        late = [("z", "a", 3.0), ("q", "z", 3.0), ("c", "q", 4.0)]
        delta.apply(late)
        expected = DynamicNetwork(warm + late)
        assert_snapshots_identical(
            delta.snapshot(), CSRSnapshot.from_dynamic(expected)
        )
        assert list(delta.snapshot().labels) == expected.nodes

    @pytest.mark.parametrize("mode", ENTRY_MODES)
    def test_features_identical_all_modes(self, mode):
        """The downstream guarantee: same features on every entry mode."""
        events = random_events(25, 160, 15, seed=11)
        delta = DeltaCSRSnapshot.from_dynamic(DynamicNetwork(events[:100]))
        delta.apply(events[100:130])
        delta.snapshot()  # intermediate materialisation
        delta.apply(events[130:])
        network = DynamicNetwork(events)

        config = SSFConfig(k=6, entry_mode=mode)
        rebuilt = SSFExtractor(
            CSRSnapshot.from_dynamic(network), config, present_time=100.0
        )
        incremental = SSFExtractor(delta.snapshot(), config, present_time=100.0)
        pairs = [("n0", "n5"), ("n3", "n9"), ("n1", "n20"), ("n7", "n12")]
        assert np.array_equal(
            rebuilt.extract_batch(pairs), incremental.extract_batch(pairs)
        )


class TestInfluenceCarryForward:
    def test_tables_bit_identical(self):
        events = random_events(20, 120, 10, seed=5)
        delta = DeltaCSRSnapshot.from_dynamic(DynamicNetwork(events[:80]))
        # warm two cached tables on the seed snapshot
        seeded = delta.snapshot()
        seeded.influence_table(1e6, 0.5)
        seeded.influence_table(1e6, 0.25)
        delta.apply(events[80:])
        merged = delta.snapshot()
        carried = dict(merged._influence_tables)
        assert set(carried) == {(1e6, 0.5), (1e6, 0.25)}
        fresh = CSRSnapshot.from_dynamic(DynamicNetwork(events))
        for (present, theta), table in carried.items():
            assert np.array_equal(table, fresh.influence_table(present, theta))

    def test_postdated_key_dropped(self):
        """A key whose present predates a new stamp must not survive —
        a fresh build would refuse to evaluate it."""
        delta = DeltaCSRSnapshot.from_dynamic(
            DynamicNetwork([("a", "b", 1.0), ("b", "c", 2.0)])
        )
        delta.snapshot().influence_table(3.0, 0.5)
        delta.apply([("a", "c", 10.0)])  # stamp postdates present=3.0
        assert (3.0, 0.5) not in delta.snapshot()._influence_tables


class TestDecayedInfluenceIndex:
    def test_matches_explicit_sum(self):
        index = DecayedInfluenceIndex(theta=0.5)
        stamps = [3.0, 1.0, 7.0, 7.0, 2.0]  # out of order, with a repeat
        for ts in stamps:
            index.observe(0, 1, ts)
        present = 9.0
        expected = sum(math.exp(-0.5 * (present - t)) for t in stamps)
        assert index.pair_influence(0, 1, present) == pytest.approx(
            expected, rel=1e-12
        )
        assert index.pair_influence(1, 0, present) == index.pair_influence(
            0, 1, present
        )

    def test_node_activity_sums_links(self):
        index = DecayedInfluenceIndex(theta=0.5)
        index.observe(0, 1, 1.0)
        index.observe(0, 2, 2.0)
        expected = math.exp(-0.5 * 2.0) + math.exp(-0.5 * 1.0)
        assert index.node_activity(0, 3.0) == pytest.approx(expected, rel=1e-12)

    def test_large_timestamps_stay_finite(self):
        """The naive prefix-sum form overflows once theta*t > ~710."""
        index = DecayedInfluenceIndex(theta=0.5)
        for ts in (2_000.0, 2_001.0, 2_002.0):
            index.observe(0, 1, ts)
        value = index.pair_influence(0, 1, 2_003.0)
        assert math.isfinite(value)
        expected = sum(math.exp(-0.5 * (2_003.0 - t)) for t in (2000.0, 2001.0, 2002.0))
        assert value == pytest.approx(expected, rel=1e-12)

    def test_most_active_deterministic_ties(self):
        index = DecayedInfluenceIndex(theta=0.5)
        index.observe(5, 9, 1.0)  # nodes 5 and 9 tie exactly
        index.observe(2, 7, 2.0)  # nodes 2 and 7 tie exactly, more recent
        assert index.most_active(3, 3.0) == [2, 7, 5]

    def test_rejects_past_present(self):
        index = DecayedInfluenceIndex()
        index.observe(0, 1, 5.0)
        with pytest.raises(ValueError, match="before the newest stamp"):
            index.pair_influence(0, 1, 4.0)


class TestIngestValidation:
    def test_rejects_self_loop(self):
        delta = DeltaCSRSnapshot()
        with pytest.raises(ValueError, match="self-loop"):
            delta.apply([("a", "a", 1.0)])

    def test_rejects_non_finite(self):
        delta = DeltaCSRSnapshot()
        with pytest.raises(ValueError, match="finite"):
            delta.apply([("a", "b", float("nan"))])

    def test_scoring_time_uses_median_gap(self):
        delta = DeltaCSRSnapshot()
        delta.apply([("a", "b", 10.0), ("b", "c", 20.0), ("a", "c", 30.0)])
        assert delta.scoring_time() == 40.0  # last + median gap (10.0)

    def test_returned_snapshot_immutable(self):
        delta = DeltaCSRSnapshot()
        delta.apply([("a", "b", 1.0)])
        first = delta.snapshot()
        ts_before = first.ts.copy()
        delta.apply([("a", "b", 0.5), ("c", "a", 2.0)])
        delta.snapshot()
        assert np.array_equal(first.ts, ts_before)


class TestHopBall:
    def test_matches_bfs_reference(self):
        events = random_events(15, 40, 5, seed=9)
        network = DynamicNetwork(events)
        snapshot = CSRSnapshot.from_dynamic(network)
        start = network.nodes[0]
        # dict-side BFS reference
        frontier, seen = {start}, {start}
        for _ in range(2):
            nxt = set()
            for node in frontier:
                for nb in network.neighbors(node):
                    if nb not in seen:
                        seen.add(nb)
                        nxt.add(nb)
            frontier = nxt
        expected = sorted(snapshot.node_id(n) for n in seen)
        got = hop_ball(snapshot, snapshot.node_id(start), 2)
        assert got.tolist() == expected

    def test_zero_hops(self):
        snapshot = CSRSnapshot.from_dynamic(DynamicNetwork([("a", "b", 1.0)]))
        assert hop_ball(snapshot, 0, 0).tolist() == [0]

"""Tests for the metrics registry: counters, gauges, histograms."""

import json
import math
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, get_registry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="counters only go up"):
            Counter().inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(10)
        g.set(3)
        assert g.value == 3.0

    def test_add_delta(self):
        g = Gauge()
        g.set(1.0)
        g.add(0.5)
        g.add(-2.0)
        assert g.value == pytest.approx(-0.5)


class TestHistogram:
    def test_running_aggregates(self):
        h = Histogram()
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_empty_aggregates_are_nan(self):
        h = Histogram()
        assert math.isnan(h.min) and math.isnan(h.max) and math.isnan(h.mean)
        assert math.isnan(h.percentile(50))

    def test_percentiles_nearest_rank(self):
        h = Histogram()
        for v in range(1, 101):  # 1..100
            h.observe(v)
        assert h.percentile(50) == 50
        assert h.percentile(95) == 95
        assert h.percentile(100) == 100
        assert h.percentile(0) == 1

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_aggregates_stay_exact_past_the_reservoir(self):
        h = Histogram(max_samples=4)
        for v in (100.0, 1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 5
        assert h.max == 100.0  # running aggregate remembers everything
        assert len(h.state()["samples"]) == 4

    def test_reservoir_covers_the_whole_stream_not_the_tail(self):
        # The bug being fixed: a ring buffer of the most recent 4096
        # samples made p50 describe the tail of long runs.  A uniform
        # reservoir over 0..9999 must put p50 near 5000, far from the
        # tail-window answer (~9743 for a 512-window).
        h = Histogram(max_samples=512)
        for v in range(10_000):
            h.observe(float(v))
        assert abs(h.percentile(50) - 5000) < 1000
        assert abs(h.percentile(95) - 9500) < 500

    def test_reservoir_is_deterministic(self):
        a, b = Histogram(max_samples=32), Histogram(max_samples=32)
        for v in range(1000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.state()["samples"] == b.state()["samples"]

    def test_observe_many_is_bit_identical_to_sequential(self):
        # hot loops batch through observe_many; the reservoir slots and
        # aggregates must match per-value observe exactly, including
        # past the sampling cap and across split batches
        a, b = Histogram(max_samples=32), Histogram(max_samples=32)
        values = [float(v % 97) for v in range(1000)]
        for v in values:
            a.observe(v)
        b.observe_many(values[:500])
        b.observe_many([])
        b.observe_many(values[500:])
        assert a.state() == b.state()

    def test_summary_shape(self):
        h = Histogram()
        h.observe(1.0)
        summary = h.summary()
        assert set(summary) == {
            "count", "sum", "min", "max", "mean", "estimator", "sampled",
            "p50", "p95", "p99",
        }
        assert summary["estimator"] == "exact"
        assert summary["sampled"] == 1

    def test_summary_names_the_reservoir_estimator(self):
        h = Histogram(max_samples=8)
        for v in range(20):
            h.observe(float(v))
        assert h.summary()["estimator"] == "reservoir"
        assert h.summary()["sampled"] == 8

    def test_merge_state_combines_aggregates_exactly(self):
        a, b = Histogram(), Histogram()
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        for v in (10.0, 20.0):
            b.observe(v)
        a.merge_state(b.state())
        assert a.count == 5
        assert a.sum == 36.0
        assert a.min == 1.0 and a.max == 20.0
        assert a.percentile(100) == 20.0  # both reservoirs fit: all kept

    def test_merge_state_empty_is_noop(self):
        a, b = Histogram(), Histogram()
        a.observe(1.0)
        a.merge_state(b.state())
        assert a.count == 1 and a.sum == 1.0

    def test_merge_state_subsamples_proportionally(self):
        # 900 low observations vs 100 high ones: the merged reservoir of
        # 64 must be dominated by the low side (~9:1).
        a, b = Histogram(max_samples=64), Histogram(max_samples=64)
        for _ in range(900):
            a.observe(0.0)
        for _ in range(100):
            b.observe(1.0)
        a.merge_state(b.state())
        assert a.count == 1000
        samples = a.state()["samples"]
        assert len(samples) == 64
        high = sum(1 for s in samples if s == 1.0)
        assert 3 <= high <= 10  # ~6.4 expected


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_name_collision_across_kinds_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("x")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.gauge("workers").set(4)
        reg.histogram("latency").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"hits": 3.0}
        assert snap["gauges"] == {"workers": 4.0}
        assert snap["histograms"]["latency"]["count"] == 1
        assert snap["histograms"]["latency"]["p95"] == 0.5

    def test_json_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        reg.histogram("latency").observe(1.5)
        reg.histogram("latency").observe(2.5)
        restored = json.loads(reg.to_json())
        assert restored == json.loads(json.dumps(reg.snapshot()))
        assert restored["counters"]["hits"] == 2.0
        assert restored["histograms"]["latency"]["mean"] == 2.0

    def test_to_json_scrubs_nan(self):
        reg = MetricsRegistry()
        reg.histogram("empty")  # no observations: min/max/mean are NaN
        restored = json.loads(reg.to_json())
        assert restored["histograms"]["empty"]["mean"] is None

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_default_registry_is_process_local_singleton(self):
        assert get_registry() is get_registry()

    def test_mergeable_snapshot_and_merge_round_trip(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.counter("pairs").inc(7)
        src.gauge("workers").set(4)
        for v in (0.1, 0.2, 0.3):
            src.histogram("lat").observe(v)
        dst.counter("pairs").inc(3)
        dst.merge(src.mergeable_snapshot())
        snap = dst.snapshot()
        assert snap["counters"]["pairs"] == 10.0
        assert snap["gauges"]["workers"] == 4.0
        assert snap["histograms"]["lat"]["count"] == 3
        assert snap["histograms"]["lat"]["sum"] == pytest.approx(0.6)

    def test_mergeable_snapshot_reset_exports_deltas(self):
        src, dst = MetricsRegistry(), MetricsRegistry()
        src.counter("c").inc(2)
        src.histogram("h").observe(1.0)
        dst.merge(src.mergeable_snapshot(reset=True))
        # the second delta only carries what happened after the first
        src.counter("c").inc(5)
        dst.merge(src.mergeable_snapshot(reset=True))
        snap = dst.snapshot()
        assert snap["counters"]["c"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1
        assert src.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_is_order_insensitive_for_counters_and_histograms(self):
        parts = []
        for base in (0, 10):
            reg = MetricsRegistry()
            reg.counter("n").inc(base + 1)
            reg.histogram("h").observe(float(base))
            parts.append(reg.mergeable_snapshot())
        ab, ba = MetricsRegistry(), MetricsRegistry()
        ab.merge(parts[0]); ab.merge(parts[1])
        ba.merge(parts[1]); ba.merge(parts[0])
        a, b = ab.snapshot(), ba.snapshot()
        assert a["counters"] == b["counters"]
        for key in ("count", "sum", "min", "max"):
            assert a["histograms"]["h"][key] == b["histograms"]["h"][key]


class TestThreadSafety:
    def test_counter_under_thread_pool(self):
        reg = MetricsRegistry()

        def work(_):
            for _ in range(1000):
                reg.counter("shared").inc()

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(8)))
        assert reg.counter("shared").value == 8000.0

    def test_histogram_under_thread_pool(self):
        reg = MetricsRegistry()

        def work(worker):
            for i in range(500):
                reg.histogram("lat").observe(worker * 500 + i)

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(4)))
        h = reg.histogram("lat")
        assert h.count == 2000
        assert h.min == 0.0 and h.max == 1999.0
        assert h.sum == sum(range(2000))

    def test_creation_races_yield_one_metric(self):
        reg = MetricsRegistry()

        def work(_):
            return reg.counter("raced")

        with ThreadPoolExecutor(max_workers=8) as pool:
            metrics = list(pool.map(work, range(64)))
        assert all(m is metrics[0] for m in metrics)

"""Chrome Trace Event export: event shape, normalisation, validation."""

import json
import os

import pytest

from repro import obs
from repro.obs.export import (
    FLOW_CATEGORY,
    trace_events,
    validate_flow_events,
    validate_trace,
    write_trace,
)
from repro.obs.rtrace import new_trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    obs.get_registry().reset()
    yield
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    obs.get_registry().reset()


def _record(name, ts, pid=1000, tid=1, dur=0.5, **tags):
    return {
        "name": name,
        "path": name,
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
        "tags": tags,
    }


class TestTraceEvents:
    def test_complete_events_conform_to_the_schema(self):
        events = trace_events([_record("a", 10.0), _record("b", 11.0)])
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["a", "b"]
        for event in complete:
            assert event["cat"] == "repro"
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_timestamps_normalised_to_earliest_span_in_microseconds(self):
        events = trace_events([_record("late", 12.0), _record("early", 10.0)])
        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert complete["early"]["ts"] == 0.0
        assert complete["late"]["ts"] == pytest.approx(2e6)
        assert complete["early"]["dur"] == pytest.approx(0.5e6)

    def test_process_metadata_labels_parent_and_workers(self):
        records = [
            _record("p", 1.0, pid=os.getpid()),
            _record("w", 2.0, pid=4242),
        ]
        events = trace_events(records, parent_pid=os.getpid())
        meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
        assert meta[os.getpid()] == "repro parent"
        assert meta[4242] == "repro worker 4242"

    def test_thread_ids_are_small_per_process_aliases(self):
        records = [
            _record("a", 1.0, pid=1, tid=139678001),
            _record("b", 2.0, pid=1, tid=139678002),
            _record("c", 3.0, pid=2, tid=139678001),
        ]
        events = [e for e in trace_events(records) if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids == {"a": 1, "b": 2, "c": 1}

    def test_non_scalar_tags_stringified(self):
        events = trace_events([_record("a", 1.0, mode=("x", "y"), k=5)])
        args = [e for e in events if e["ph"] == "X"][0]["args"]
        assert args["k"] == 5
        assert args["mode"] == "('x', 'y')"
        json.dumps(args)  # must be serialisable

    def test_defaults_to_draining_the_process_buffer(self):
        obs.enable()
        obs.record_spans(True)
        with obs.span("stage"):
            pass
        events = trace_events()
        assert any(e["name"] == "stage" for e in events)
        assert obs.span_records() == []


class TestWriteAndValidate:
    def test_written_file_is_valid_and_loads(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_trace(str(path), [_record("a", 1.0), _record("b", 2.0)])
        payload = json.loads(path.read_text())
        assert count == len(payload["traceEvents"])
        assert payload["displayTimeUnit"] == "ms"
        assert validate_trace(payload) == []

    def test_end_to_end_from_recorded_spans(self, tmp_path):
        obs.enable()
        obs.record_spans(True)
        with obs.span("outer", k=2):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.json"
        write_trace(str(path))
        payload = json.loads(path.read_text())
        assert validate_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert names == {"outer", "inner"}

    def test_validate_flags_malformed_events(self):
        bad = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1},  # no name, bad ts
                {"name": "z", "ph": "Z", "pid": 1, "tid": 1},  # unknown phase
                "not-an-object",
            ]
        }
        problems = validate_trace(bad)
        assert any("missing 'name'" in p for p in problems)
        assert any("'ts' must be a number >= 0" in p for p in problems)
        assert any("unexpected phase" in p for p in problems)
        assert any("not an object" in p for p in problems)

    def test_validate_rejects_non_list_payload(self):
        assert validate_trace({"traceEvents": "nope"}) == [
            "traceEvents must be a list"
        ]


def _traced_record(name, ts, ctx, *, pid=1000, tid=1, dur=0.5, members=None):
    record = _record(name, ts, pid=pid, tid=tid, dur=dur)
    record["trace_id"] = ctx.trace_id
    record["span_id"] = ctx.span_id
    record["parent_span_id"] = ctx.parent_id
    if members is not None:
        record["trace_ids"] = list(members)
    return record


class TestFlowEvents:
    def test_single_span_trace_gets_no_arrow(self):
        ctx = new_trace()
        events = trace_events([_traced_record("only", 1.0, ctx)])
        assert [e for e in events if e.get("cat") == FLOW_CATEGORY] == []

    def test_multi_span_trace_emits_start_step_finish(self):
        root = new_trace()
        records = [
            _traced_record("request", 1.0, root),
            _traced_record("batch", 2.0, root.child(), tid=2),
            _traced_record("worker", 3.0, root.child().child(), pid=4242),
        ]
        events = trace_events(records)
        flows = [e for e in events if e.get("cat") == FLOW_CATEGORY]
        phases = [e["ph"] for e in sorted(flows, key=lambda e: e["ts"])]
        assert phases == ["s", "t", "f"]
        assert {e["id"] for e in flows} == {root.trace_id}
        finish = [e for e in flows if e["ph"] == "f"][0]
        assert finish["bp"] == "e"
        assert validate_trace({"traceEvents": events}) == []
        assert validate_flow_events({"traceEvents": events}) == []

    def test_trace_identity_copied_into_args(self):
        ctx = new_trace()
        events = trace_events([_traced_record("request", 1.0, ctx)])
        (complete,) = [e for e in events if e["ph"] == "X"]
        assert complete["args"]["trace_id"] == ctx.trace_id
        assert complete["args"]["span_id"] == ctx.span_id

    def test_batch_membership_joins_fanned_in_traces(self):
        a, b = new_trace(), new_trace()
        records = [
            _traced_record("request_a", 1.0, a),
            _traced_record("request_b", 1.1, b),
            _traced_record(
                "batch", 2.0, a.child(), tid=2, members=[a.trace_id, b.trace_id]
            ),
        ]
        events = trace_events(records)
        flows = [e for e in events if e.get("cat") == FLOW_CATEGORY]
        # both request traces thread through the shared batch span
        assert {e["id"] for e in flows} == {a.trace_id, b.trace_id}
        assert validate_flow_events({"traceEvents": events}) == []

    def test_validate_flow_events_catches_unanchored_arrows(self):
        payload = {
            "traceEvents": [
                {
                    "name": "x", "ph": "X", "pid": 1, "tid": 1,
                    "ts": 0.0, "dur": 10.0, "args": {},
                },
                {
                    "name": "t1", "ph": "s", "cat": FLOW_CATEGORY,
                    "id": "t1", "pid": 1, "tid": 1, "ts": 50.0,
                },
                {
                    "name": "t1", "ph": "f", "bp": "e", "cat": FLOW_CATEGORY,
                    "id": "t1", "pid": 1, "tid": 1, "ts": 60.0,
                },
            ]
        }
        problems = validate_flow_events(payload)
        assert any("anchor" in p or "no enclosing" in p for p in problems)

    def test_validate_flow_events_requires_one_start_one_finish(self):
        payload = {
            "traceEvents": [
                {
                    "name": "x", "ph": "X", "pid": 1, "tid": 1,
                    "ts": 0.0, "dur": 100.0, "args": {},
                },
                {
                    "name": "t1", "ph": "s", "cat": FLOW_CATEGORY,
                    "id": "t1", "pid": 1, "tid": 1, "ts": 1.0,
                },
                {
                    "name": "t1", "ph": "s", "cat": FLOW_CATEGORY,
                    "id": "t1", "pid": 1, "tid": 1, "ts": 2.0,
                },
            ]
        }
        problems = validate_flow_events(payload)
        assert any("start" in p for p in problems)
        assert any("finish" in p for p in problems)

    def test_end_to_end_rspan_chain_exports_valid_flows(self, tmp_path):
        from repro.obs.rtrace import TraceContext, activate, current_wire, rspan

        obs.enable()
        obs.record_spans(True)
        with rspan("serve.request", root=True) as request:
            trace_id = request.trace_id
            wire = current_wire()
            with rspan("serve.score"):
                pass
        with activate(TraceContext.from_wire(wire)):
            with rspan("parallel.worker_chunk"):
                pass
        path = tmp_path / "trace.json"
        write_trace(str(path))
        payload = json.loads(path.read_text())
        assert validate_trace(payload) == []
        assert validate_flow_events(payload) == []
        flows = [
            e for e in payload["traceEvents"] if e.get("cat") == FLOW_CATEGORY
        ]
        assert {e["id"] for e in flows} == {trace_id}

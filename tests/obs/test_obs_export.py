"""Chrome Trace Event export: event shape, normalisation, validation."""

import json
import os

import pytest

from repro import obs
from repro.obs.export import trace_events, validate_trace, write_trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    obs.get_registry().reset()
    yield
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    obs.get_registry().reset()


def _record(name, ts, pid=1000, tid=1, dur=0.5, **tags):
    return {
        "name": name,
        "path": name,
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": tid,
        "tags": tags,
    }


class TestTraceEvents:
    def test_complete_events_conform_to_the_schema(self):
        events = trace_events([_record("a", 10.0), _record("b", 11.0)])
        complete = [e for e in events if e["ph"] == "X"]
        assert [e["name"] for e in complete] == ["a", "b"]
        for event in complete:
            assert event["cat"] == "repro"
            assert set(event) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}

    def test_timestamps_normalised_to_earliest_span_in_microseconds(self):
        events = trace_events([_record("late", 12.0), _record("early", 10.0)])
        complete = {e["name"]: e for e in events if e["ph"] == "X"}
        assert complete["early"]["ts"] == 0.0
        assert complete["late"]["ts"] == pytest.approx(2e6)
        assert complete["early"]["dur"] == pytest.approx(0.5e6)

    def test_process_metadata_labels_parent_and_workers(self):
        records = [
            _record("p", 1.0, pid=os.getpid()),
            _record("w", 2.0, pid=4242),
        ]
        events = trace_events(records, parent_pid=os.getpid())
        meta = {e["pid"]: e["args"]["name"] for e in events if e["ph"] == "M"}
        assert meta[os.getpid()] == "repro parent"
        assert meta[4242] == "repro worker 4242"

    def test_thread_ids_are_small_per_process_aliases(self):
        records = [
            _record("a", 1.0, pid=1, tid=139678001),
            _record("b", 2.0, pid=1, tid=139678002),
            _record("c", 3.0, pid=2, tid=139678001),
        ]
        events = [e for e in trace_events(records) if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids == {"a": 1, "b": 2, "c": 1}

    def test_non_scalar_tags_stringified(self):
        events = trace_events([_record("a", 1.0, mode=("x", "y"), k=5)])
        args = [e for e in events if e["ph"] == "X"][0]["args"]
        assert args["k"] == 5
        assert args["mode"] == "('x', 'y')"
        json.dumps(args)  # must be serialisable

    def test_defaults_to_draining_the_process_buffer(self):
        obs.enable()
        obs.record_spans(True)
        with obs.span("stage"):
            pass
        events = trace_events()
        assert any(e["name"] == "stage" for e in events)
        assert obs.span_records() == []


class TestWriteAndValidate:
    def test_written_file_is_valid_and_loads(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_trace(str(path), [_record("a", 1.0), _record("b", 2.0)])
        payload = json.loads(path.read_text())
        assert count == len(payload["traceEvents"])
        assert payload["displayTimeUnit"] == "ms"
        assert validate_trace(payload) == []

    def test_end_to_end_from_recorded_spans(self, tmp_path):
        obs.enable()
        obs.record_spans(True)
        with obs.span("outer", k=2):
            with obs.span("inner"):
                pass
        path = tmp_path / "trace.json"
        write_trace(str(path))
        payload = json.loads(path.read_text())
        assert validate_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert names == {"outer", "inner"}

    def test_validate_flags_malformed_events(self):
        bad = {
            "traceEvents": [
                {"ph": "X", "pid": 1, "tid": 1, "ts": -5, "dur": 1},  # no name, bad ts
                {"name": "z", "ph": "Z", "pid": 1, "tid": 1},  # unknown phase
                "not-an-object",
            ]
        }
        problems = validate_trace(bad)
        assert any("missing 'name'" in p for p in problems)
        assert any("'ts' must be a number >= 0" in p for p in problems)
        assert any("unexpected phase" in p for p in problems)
        assert any("not an object" in p for p in problems)

    def test_validate_rejects_non_list_payload(self):
        assert validate_trace({"traceEvents": "nope"}) == [
            "traceEvents must be a list"
        ]

"""Bench history store and the pairs/sec regression gate."""

import json

import pytest

from repro.obs.bench import (
    HISTORY_SCHEMA_VERSION,
    append_history,
    compare_results,
    git_sha,
    history_record,
    load_history,
    machine_fingerprint,
    run_extraction_bench,
)


def _result(dict_pps=100.0, csr_pps=300.0, **overrides):
    base = {
        "nodes": 800,
        "links": 1500,
        "pairs": 60,
        "k": 10,
        "seed": 0,
        "bit_identical": True,
        "backends": {
            "dict": {"seconds": 1.0, "pairs_per_second": dict_pps},
            "csr": {"seconds": 0.4, "pairs_per_second": csr_pps},
        },
        "speedup": 3.0,
    }
    base.update(overrides)
    return base


class TestProvenance:
    def test_fingerprint_is_stable_and_has_an_id(self):
        a, b = machine_fingerprint(), machine_fingerprint()
        assert a == b
        assert len(a["id"]) == 12
        assert a["cpus"] >= 1

    def test_git_sha_inside_this_checkout(self):
        sha = git_sha()
        assert sha is not None and len(sha) >= 7

    def test_git_sha_none_outside_a_repo(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) is None

    def test_history_record_wraps_and_stamps(self):
        record = history_record(_result(), recorded_at=123.0)
        assert record["schema"] == HISTORY_SCHEMA_VERSION
        assert record["recorded_at"] == 123.0
        assert record["machine"]["id"]
        assert record["result"]["pairs"] == 60


class TestHistoryStore:
    def test_append_accumulates_one_line_per_run(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(path, _result(), recorded_at=1.0)
        append_history(path, _result(dict_pps=120.0), recorded_at=2.0)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(
            json.loads(line)["schema"] == HISTORY_SCHEMA_VERSION for line in lines
        )
        records = load_history(path)
        assert [r["recorded_at"] for r in records] == [1.0, 2.0]
        assert records[1]["result"]["backends"]["dict"]["pairs_per_second"] == 120.0

    def test_load_missing_file_is_empty(self, tmp_path):
        assert load_history(tmp_path / "nope.jsonl") == []

    def test_load_skips_malformed_lines(self, tmp_path):
        path = tmp_path / "BENCH_history.jsonl"
        append_history(path, _result(), recorded_at=1.0)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("{truncated by a crash\n")
        append_history(path, _result(), recorded_at=2.0)
        assert [r["recorded_at"] for r in load_history(path)] == [1.0, 2.0]


class TestRegressionGate:
    def test_equal_results_pass(self):
        comparison = compare_results(_result(), _result())
        assert comparison.ok
        assert all(d.ratio == pytest.approx(1.0) for d in comparison.deltas)

    def test_speedups_never_fail(self):
        comparison = compare_results(_result(dict_pps=500.0), _result())
        assert comparison.ok

    def test_regression_beyond_threshold_fails(self):
        # dict drops to 60% of baseline: past the 30% noise threshold
        comparison = compare_results(_result(dict_pps=60.0), _result())
        assert not comparison.ok
        regressed = {d.backend: d.regressed for d in comparison.deltas}
        assert regressed == {"dict": True, "csr": False}
        assert "FAIL" in comparison.format()

    def test_small_drop_within_noise_passes(self):
        comparison = compare_results(_result(dict_pps=75.0), _result())
        assert comparison.ok
        assert "PASS" in comparison.format()

    def test_threshold_is_configurable(self):
        strict = compare_results(
            _result(dict_pps=85.0), _result(), max_regression=0.10
        )
        assert not strict.ok

    def test_accepts_history_records_either_side(self):
        record = history_record(_result(), recorded_at=1.0)
        assert compare_results(record, _result()).ok
        assert compare_results(_result(), record).ok

    def test_scale_mismatch_is_noted(self):
        comparison = compare_results(_result(nodes=5000), _result())
        assert any("scale mismatch" in n for n in comparison.notes)

    def test_cross_machine_comparison_is_noted(self):
        current = history_record(_result(), recorded_at=1.0)
        baseline = history_record(_result(), recorded_at=0.0)
        baseline["machine"] = dict(baseline["machine"], id="ffffffffffff")
        comparison = compare_results(current, baseline)
        assert any("different machines" in n for n in comparison.notes)

    def test_missing_backend_is_noted_not_crashed(self):
        current = _result()
        del current["backends"]["csr"]
        comparison = compare_results(current, _result())
        assert any("missing from current" in n for n in comparison.notes)
        assert [d.backend for d in comparison.deltas] == ["dict"]


class TestTags:
    def test_tag_lands_in_the_result_and_history(self, tmp_path):
        out = tmp_path / "BENCH_extraction.json"
        history = tmp_path / "BENCH_history.jsonl"
        result = run_extraction_bench(
            n_nodes=120,
            n_pairs=8,
            k=4,
            out_path=out,
            history_path=history,
            tag="csr-sweep",
        )
        assert result["tag"] == "csr-sweep"
        assert json.loads(out.read_text())["tag"] == "csr-sweep"
        assert load_history(history)[0]["result"]["tag"] == "csr-sweep"

    def test_untagged_result_has_no_tag_key(self, tmp_path):
        result = run_extraction_bench(
            n_nodes=120, n_pairs=8, k=4, out_path=tmp_path / "b.json"
        )
        assert "tag" not in result

    def test_tag_mismatch_is_noted_by_the_gate(self):
        comparison = compare_results(
            _result(tag="after"), _result(tag="before")
        )
        assert comparison.ok
        assert any("tag mismatch" in n for n in comparison.notes)

    def test_same_tag_is_not_noted(self):
        comparison = compare_results(_result(tag="x"), _result(tag="x"))
        assert not any("tag mismatch" in n for n in comparison.notes)

    def test_tagged_records_render_separate_trajectories(self, tmp_path):
        from repro.obs.report import build_report, format_report

        history = tmp_path / "hist.jsonl"
        append_history(history, _result(), recorded_at=1.0)
        append_history(history, _result(tag="sweep"), recorded_at=2.0)
        report = build_report(history=load_history(history))
        trajectory = report["bench"]["history"]["trajectory"]
        assert "dict" in trajectory
        assert "dict[sweep]" in trajectory
        text = format_report(report)
        assert "dict[sweep] pairs/s" in text

    def test_record_stamp_carries_peak_rss(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        append_history(history, _result(), recorded_at=1.0)
        record = load_history(history)[0]
        assert record["peak_rss_bytes"] > 0


class TestRunExtractionBench:
    def test_tiny_run_writes_latest_and_history(self, tmp_path):
        out = tmp_path / "BENCH_extraction.json"
        history = tmp_path / "BENCH_history.jsonl"
        result = run_extraction_bench(
            n_nodes=120, n_pairs=8, k=4, out_path=out, history_path=history
        )
        assert result["bit_identical"]
        assert result["pairs"] == 8
        latest = json.loads(out.read_text())
        assert latest["backends"]["dict"]["pairs_per_second"] > 0
        records = load_history(history)
        assert len(records) == 1
        assert records[0]["result"]["nodes"] == result["nodes"]
        # a fresh run at the same scale passes its own gate
        assert compare_results(result, records[0]).ok

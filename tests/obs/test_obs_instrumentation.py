"""Integration tests: the instrumented pipeline and its CLI surface.

The key invariant — enforced differentially here — is that observability
NEVER changes numerics: extraction with tracing enabled is bit-identical
to extraction with tracing disabled (the seed behaviour).
"""

import json
import logging

import numpy as np
import pytest

from repro import obs
from repro.cli import main
from repro.core.feature import SSFConfig, SSFExtractor
from repro.datasets.catalog import get_dataset
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import LinkPredictionExperiment
from repro.obs.metrics import get_registry
from repro.obs.profile import (
    STAGE_HISTOGRAMS,
    run_extraction_profile,
    workload_pairs,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    # main() calls configure_logging, which installs a handler on the
    # repro root logger and disables propagation; restore the logger so
    # later caplog-based tests still see repro.* records
    root = logging.getLogger("repro")
    saved = (list(root.handlers), root.level, root.propagate)
    obs.disable()
    get_registry().reset()
    yield
    obs.disable()
    get_registry().reset()
    root.handlers[:] = saved[0]
    root.setLevel(saved[1])
    root.propagate = saved[2]


@pytest.fixture(scope="module")
def network():
    return get_dataset("co-author").generate(seed=0, scale=0.15)


@pytest.fixture(scope="module")
def pairs(network):
    return list(network.pair_iter())[:12]


class TestDifferential:
    def test_instrumented_extraction_bit_identical(self, network, pairs):
        extractor = SSFExtractor(network, SSFConfig(k=8))
        baseline = np.stack([extractor.extract(a, b) for a, b in pairs])

        obs.enable()
        instrumented = np.stack([extractor.extract(a, b) for a, b in pairs])
        obs.disable()
        after = np.stack([extractor.extract(a, b) for a, b in pairs])

        np.testing.assert_array_equal(baseline, instrumented)
        np.testing.assert_array_equal(baseline, after)

    def test_multi_mode_bit_identical(self, network, pairs):
        extractor = SSFExtractor(network, SSFConfig(k=8))
        modes = ("temporal", "count")
        baseline = [extractor.extract_multi(a, b, modes) for a, b in pairs]
        obs.enable()
        instrumented = [extractor.extract_multi(a, b, modes) for a, b in pairs]
        for base, inst in zip(baseline, instrumented):
            for mode in modes:
                np.testing.assert_array_equal(base[mode], inst[mode])


class TestStageMetrics:
    def test_all_four_stages_recorded(self, network, pairs):
        obs.enable()
        extractor = SSFExtractor(network, SSFConfig(k=8))
        for a, b in pairs:
            extractor.extract(a, b)
        histograms = get_registry().snapshot()["histograms"]
        for _, key in STAGE_HISTOGRAMS:
            assert histograms[key]["count"] > 0, key
        # ratio metrics ride along with the stage spans
        assert histograms["structure.compression_ratio"]["count"] > 0
        assert histograms["palette_wl.iterations"]["count"] > 0
        assert histograms["subgraph.growth_h"]["count"] == len(pairs)

    def test_disabled_run_records_nothing(self, network, pairs):
        extractor = SSFExtractor(network, SSFConfig(k=8))
        for a, b in pairs:
            extractor.extract(a, b)
        assert get_registry().snapshot()["histograms"] == {}


class TestRunnerCacheCounters:
    def test_hit_and_miss_counters(self, network):
        obs.enable()
        config = ExperimentConfig(epochs=2, max_positives=20, seed=0)
        experiment = LinkPredictionExperiment(network, config)
        experiment.feature_matrices("ssf")     # miss (extracts ssf + ssf_w)
        experiment.feature_matrices("ssf")     # hit
        experiment.feature_matrices("ssf_w")   # hit (shared extraction)
        counters = get_registry().snapshot()["counters"]
        assert counters["runner.feature_cache.misses"] == 1.0
        assert counters["runner.feature_cache.hits"] == 2.0


class TestProfileWorkload:
    def test_workload_is_deterministic(self, network):
        first = workload_pairs(network, 20, seed=3)
        second = workload_pairs(network, 20, seed=3)
        assert first == second
        assert len(first) == 20

    def test_workload_mixes_observed_and_random(self, network):
        pairs = workload_pairs(network, 20, seed=0)
        observed = set(network.pair_iter())

        def is_observed(p):
            return p in observed or (p[1], p[0]) in observed

        flags = [is_observed(p) for p in pairs]
        assert any(flags) and not all(flags)

    def test_report_covers_all_stages(self, network):
        report = run_extraction_profile(
            network, dataset="co-author", k=8, n_pairs=10
        )
        for label in (
            "subgraph growth",
            "structure combination",
            "Palette-WL ordering",
            "influence matrix",
        ):
            assert label in report
        assert "p50 ms" in report and "p95 ms" in report
        assert "compression ratio" in report
        assert "WL iterations" in report

    def test_profile_restores_disabled_state(self, network):
        assert not obs.enabled()
        run_extraction_profile(network, k=8, n_pairs=4)
        assert not obs.enabled()


class TestCliObservability:
    def _run(self, capsys, *argv):
        code = main(list(argv))
        assert code == 0
        return capsys.readouterr().out

    def test_profile_command(self, capsys):
        out = self._run(
            capsys,
            "profile",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--pairs", "10",
            "--k", "8",
        )
        assert "SSF extraction profile" in out
        assert "subgraph growth" in out
        assert "influence matrix" in out

    def test_metrics_out_writes_valid_json(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        self._run(
            capsys,
            "profile",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--pairs", "8",
            "--k", "8",
            "--metrics-out", str(path),
        )
        snapshot = json.loads(path.read_text())
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["histograms"]["span.palette_wl"]["count"] > 0

    def test_metrics_out_on_experiment_command(self, capsys, tmp_path):
        path = tmp_path / "metrics.json"
        self._run(
            capsys,
            "table3",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--epochs", "2",
            "--max-positives", "20",
            "--methods", "SSFLR",
            "--metrics-out", str(path),
        )
        snapshot = json.loads(path.read_text())
        assert snapshot["counters"]["runner.feature_cache.misses"] >= 1.0
        assert snapshot["histograms"]["span.structure_combination"]["count"] > 0

    def test_log_flags_accepted_and_diagnostics_off_stdout(self, capsys):
        out = self._run(
            capsys,
            "--log-level", "debug",
            "--log-json",
            "stats",
            "--dataset", "co-author",
            "--scale", "0.1",
        )
        # stdout carries ONLY the command output, never diagnostics
        assert "avg degree" in out
        assert '"level"' not in out

    def test_observability_left_disabled_after_main(self, capsys):
        self._run(
            capsys,
            "profile",
            "--dataset", "co-author",
            "--scale", "0.15",
            "--pairs", "4",
            "--k", "8",
        )
        assert not obs.enabled()

"""Continuous profiler: sampling, collapsed-stack format, top frames."""

import pytest

from repro.obs import contprof
from repro.obs.contprof import (
    ContinuousProfiler,
    parse_collapsed,
    supported,
    top_frames,
)


def _burn_cpu(iterations=4_000_000):
    total = 0
    for index in range(iterations):
        total += index * index
    return total


class TestSupportGate:
    def test_supported_on_posix_main_thread(self):
        # the suite runs on the main thread of a POSIX interpreter
        assert supported() is True

    def test_unsupported_off_main_thread(self):
        import threading

        seen = []
        worker = threading.Thread(target=lambda: seen.append(supported()))
        worker.start()
        worker.join()
        assert seen == [False]

    def test_start_raises_when_unsupported(self, monkeypatch):
        monkeypatch.setattr(contprof, "supported", lambda: False)
        with pytest.raises(RuntimeError, match="setitimer"):
            ContinuousProfiler().start()


@pytest.mark.skipif(not supported(), reason="needs setitimer + main thread")
class TestSampling:
    def test_cpu_work_produces_samples(self):
        profiler = ContinuousProfiler(hz=211)
        with profiler:
            _burn_cpu()
        assert profiler.sample_count > 0
        assert sum(profiler.samples.values()) == profiler.sample_count
        # every collapsed key: phase;thread;frame[;frame...]
        for key in profiler.samples:
            parts = key.split(";")
            assert len(parts) >= 3
            assert ":" in parts[-1]  # leaf frame is basename:func

    def test_double_start_rejected(self):
        profiler = ContinuousProfiler()
        profiler.start()
        try:
            with pytest.raises(RuntimeError, match="already running"):
                profiler.start()
            with pytest.raises(RuntimeError, match="active in this process"):
                ContinuousProfiler().start()
        finally:
            profiler.stop()

    def test_stop_is_idempotent_and_releases_the_slot(self):
        profiler = ContinuousProfiler()
        profiler.start()
        profiler.stop()
        profiler.stop()  # no-op
        other = ContinuousProfiler()
        other.start()  # the slot is free again
        other.stop()

    def test_invalid_hz_rejected(self):
        with pytest.raises(ValueError):
            ContinuousProfiler(hz=0)

    def test_write_collapsed_round_trips(self, tmp_path):
        profiler = ContinuousProfiler(hz=211)
        with profiler:
            _burn_cpu()
        path = tmp_path / "profile.collapsed"
        profiler.write_collapsed(str(path))
        text = path.read_text()
        assert text.startswith("#")
        parsed = parse_collapsed(text)
        assert parsed == dict(profiler.samples)


class TestCollapsedFormat:
    def test_parse_tolerates_headers_and_noise(self):
        text = "\n".join(
            [
                "# collapsed stacks, 101Hz",
                "",
                "idle;MainThread;mod.py:f;mod.py:g 7",
                "serve:replay;MainThread;mod.py:f 3",
                "not a stack line",
            ]
        )
        parsed = parse_collapsed(text)
        assert parsed == {
            "idle;MainThread;mod.py:f;mod.py:g": 7,
            "serve:replay;MainThread;mod.py:f": 3,
        }

    def test_top_frames_ranks_by_leaf_self_time(self):
        text = "\n".join(
            [
                "p;t;a.py:outer;a.py:hot 10",
                "p;t;a.py:outer;a.py:warm 4",
                "p;t;b.py:other;a.py:hot 5",
            ]
        )
        ranked = top_frames(text, n=2)
        assert ranked[0] == ("a.py:hot", 15)
        assert ranked[1] == ("a.py:warm", 4)

    def test_top_frames_empty_input(self):
        assert top_frames("", n=5) == []

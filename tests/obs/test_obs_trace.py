"""Tests for span tracing: nesting, tags, gating, decorator form."""

import time

import pytest

from repro import obs
from repro.obs import current_span, span
from repro.obs.metrics import get_registry


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts disabled with an empty default registry."""
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    get_registry().reset()
    yield
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    get_registry().reset()


class TestDisabledFastPath:
    def test_disabled_span_records_nothing(self):
        with span("stage"):
            pass
        assert get_registry().snapshot()["histograms"] == {}

    def test_disabled_span_reads_no_clock(self):
        with span("stage") as s:
            pass
        assert s.duration is None

    def test_disabled_helpers_record_nothing(self):
        obs.observe("h", 1.0)
        obs.incr("c")
        obs.set_gauge("g", 2.0)
        snap = get_registry().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_span_does_not_join_stack(self):
        with span("outer"):
            assert current_span() is None

    def test_disabled_overhead_is_tiny(self):
        # the guarantee behind instrumenting hot paths: ~sub-microsecond
        # per span when disabled.  Generous bound to stay CI-safe.
        n = 20_000
        start = time.perf_counter()
        for _ in range(n):
            with span("hot"):
                pass
        per_span = (time.perf_counter() - start) / n
        assert per_span < 20e-6


class TestEnabledSpans:
    def test_span_feeds_histogram(self):
        obs.enable()
        with span("stage"):
            pass
        h = get_registry().snapshot()["histograms"]["span.stage"]
        assert h["count"] == 1
        assert h["max"] >= 0.0

    def test_duration_measured(self):
        obs.enable()
        with span("sleepy") as s:
            time.sleep(0.01)
        assert s.duration >= 0.01

    def test_nesting_builds_paths(self):
        obs.enable()
        with span("outer") as outer:
            with span("inner") as inner:
                assert current_span() is inner
                assert inner.path == "outer/inner"
            assert current_span() is outer
        assert current_span() is None

    def test_tags_propagate_to_children(self):
        obs.enable()
        with span("outer", dataset="co-author", k=10):
            with span("inner", k=5) as inner:
                assert inner.tags == {"dataset": "co-author", "k": 5}

    def test_sibling_spans_do_not_share_tags(self):
        obs.enable()
        with span("first", only="first"):
            pass
        with span("second") as second:
            assert "only" not in second.tags

    def test_exception_still_recorded_and_popped(self):
        obs.enable()
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
        assert current_span() is None
        assert get_registry().snapshot()["histograms"]["span.failing"]["count"] == 1

    def test_counts_accumulate_across_uses(self):
        obs.enable()
        for _ in range(5):
            with span("repeated"):
                pass
        assert get_registry().snapshot()["histograms"]["span.repeated"]["count"] == 5


class TestDecoratorForm:
    def test_decorated_function_traced_per_call(self):
        obs.enable()

        @span("decorated")
        def work(x):
            return x * 2

        assert work(3) == 6
        assert work(4) == 8
        assert get_registry().snapshot()["histograms"]["span.decorated"]["count"] == 2

    def test_decorated_function_keeps_metadata(self):
        @span("named")
        def documented():
            """docs survive"""

        assert documented.__name__ == "documented"
        assert documented.__doc__ == "docs survive"

    def test_decorated_function_noop_when_disabled(self):
        @span("quiet")
        def work():
            return 1

        assert work() == 1
        assert get_registry().snapshot()["histograms"] == {}


class TestSpanRecording:
    def test_records_not_kept_by_default(self):
        obs.enable()
        with span("stage"):
            pass
        assert obs.span_records() == []

    def test_recorded_span_carries_identity_and_timing(self):
        import os
        import threading

        obs.enable()
        obs.record_spans(True)
        with span("outer", dataset="x"):
            with span("inner", k=3):
                pass
        records = obs.drain_span_records()
        assert [r["name"] for r in records] == ["inner", "outer"]  # exit order
        inner = records[0]
        assert inner["path"] == "outer/inner"
        assert inner["tags"] == {"dataset": "x", "k": 3}
        assert inner["pid"] == os.getpid()
        assert inner["tid"] == threading.get_ident()
        assert inner["dur"] >= 0.0
        # drained: the buffer is now empty
        assert obs.span_records() == []

    def test_recording_without_enable_records_nothing(self):
        obs.record_spans(True)
        with span("stage"):
            pass
        assert obs.span_records() == []

    def test_buffer_cap_drops_not_grows(self, monkeypatch):
        from repro.obs import trace as trace_mod

        monkeypatch.setattr(trace_mod, "MAX_SPAN_RECORDS", 3)
        obs.enable()
        obs.record_spans(True)
        before = trace_mod.dropped_span_records()
        for _ in range(5):
            with span("hot"):
                pass
        assert len(obs.span_records()) == 3
        assert trace_mod.dropped_span_records() == before + 2

    def test_overflow_bumps_counter_and_warns_once(self, monkeypatch):
        import logging

        from repro.obs import trace as trace_mod

        monkeypatch.setattr(trace_mod, "MAX_SPAN_RECORDS", 2)
        monkeypatch.setattr(trace_mod, "_drop_warned", False)
        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = _Capture()
        logging.getLogger("repro.obs.trace").addHandler(handler)
        try:
            obs.enable()
            obs.record_spans(True)
            for _ in range(6):
                with span("hot"):
                    pass
        finally:
            logging.getLogger("repro.obs.trace").removeHandler(handler)
        counters = get_registry().snapshot()["counters"]
        assert counters["obs.spans_dropped"] == 4.0
        warnings = [r for r in records if r.levelno == logging.WARNING]
        assert len(warnings) == 1  # one-time, however many spans drop
        assert warnings[0].span_record_cap == 2

    def test_extend_span_records_bulk(self):
        from repro.obs import trace as trace_mod

        trace_mod.extend_span_records(
            [{"name": "a", "ts": 0.0, "dur": 0.1, "pid": 1, "tid": 1, "tags": {}}]
        )
        assert [r["name"] for r in obs.span_records()] == ["a"]


class TestGatedHelpers:
    def test_enabled_helpers_record(self):
        obs.enable()
        obs.observe("h", 1.5)
        obs.incr("c", 2)
        obs.set_gauge("g", 7)
        snap = get_registry().snapshot()
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["counters"]["c"] == 2.0
        assert snap["gauges"]["g"] == 7.0

    def test_enable_disable_round_trip(self):
        assert not obs.enabled()
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

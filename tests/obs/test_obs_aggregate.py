"""Cross-process metric aggregation: worker payloads merged parent-side.

The differential contract: a parallel run's merged snapshot must contain
the worker-stage metrics (per-stage extraction timings, stage counters)
that the parent-only snapshot of PR 1 could never see — with merged
counts that equal the number of pairs actually extracted — and fault
runs (worker crash, retries, in-parent fallback) must keep that
equality while staying bit-identical.
"""

from __future__ import annotations

import os
from types import SimpleNamespace

import numpy as np
import pytest

from repro import obs
from repro.core.feature import SSFConfig
from repro.core.parallel import parallel_extract_batch
from repro.datasets.catalog import get_dataset
from repro.obs.aggregate import (
    apply_worker_obs_state,
    collect_worker_payload,
    merge_worker_payload,
    parent_obs_state,
)
from repro.robust import RetryPolicy, inject
from repro.sampling.splits import build_link_prediction_task

#: the per-stage instrumentation only workers execute during a pool run
WORKER_STAGE_KEYS = (
    "span.subgraph_growth",
    "span.structure_combination",
    "span.palette_wl",
    "span.influence_matrix",
)


@pytest.fixture(scope="module")
def case() -> SimpleNamespace:
    network = get_dataset("co-author").generate(seed=0, scale=0.25)
    task = build_link_prediction_task(network, max_positives=60, seed=0)
    config = SSFConfig(k=6)
    pairs = list(task.train_pairs)
    reference = parallel_extract_batch(
        task.history, config, pairs, present_time=task.present_time, workers=1
    )
    return SimpleNamespace(
        history=task.history,
        present=task.present_time,
        pairs=pairs,
        config=config,
        reference=reference,
    )


@pytest.fixture
def recording_obs():
    """Observability + span recording on, clean buffers, restored after."""
    was_enabled = obs.enabled()
    was_recording = obs.recording()
    obs.enable()
    obs.record_spans(True)
    registry = obs.get_registry()
    registry.reset()
    obs.drain_span_records()
    try:
        yield registry
    finally:
        registry.reset()
        obs.drain_span_records()
        obs.record_spans(was_recording)
        if not was_enabled:
            obs.disable()


def pooled(case, **kwargs):
    defaults = dict(
        present_time=case.present,
        workers=2,
        min_pairs=1,
        retry=RetryPolicy(max_retries=2, chunk_timeout=10.0),
    )
    defaults.update(kwargs)
    return parallel_extract_batch(case.history, case.config, case.pairs, **defaults)


class TestUnitProtocol:
    def test_collect_returns_none_when_disabled(self):
        obs.disable()
        assert collect_worker_payload() is None

    def test_merge_none_is_a_noop(self):
        merge_worker_payload(None)

    def test_parent_state_round_trips_through_worker_apply(self):
        obs.enable()
        obs.record_spans(True)
        try:
            state = parent_obs_state()
            assert state == (True, True)
            apply_worker_obs_state((False, False))
            assert not obs.enabled() and not obs.recording()
            apply_worker_obs_state(state)
            assert obs.enabled() and obs.recording()
        finally:
            obs.record_spans(False)
            obs.disable()
            obs.get_registry().reset()
            obs.drain_span_records()

    def test_apply_clears_inherited_parent_buffers(self):
        # A forked worker inherits the parent's registry and span buffer;
        # applying the state must start it from a clean slate so nothing
        # is shipped (and therefore merged) twice.
        obs.enable()
        obs.record_spans(True)
        try:
            obs.get_registry().counter("parent.only").inc(5)
            with obs.span("parent_stage"):
                pass
            apply_worker_obs_state((True, True))
            payload = collect_worker_payload()
            assert payload is not None
            assert payload["metrics"]["counters"] == {}
            assert payload["spans"] == []
        finally:
            obs.record_spans(False)
            obs.disable()
            obs.get_registry().reset()
            obs.drain_span_records()

    def test_collect_drains_so_deltas_do_not_double_count(self):
        obs.enable()
        try:
            obs.get_registry().reset()
            obs.incr("stage.pairs", 3)
            first = collect_worker_payload()
            second = collect_worker_payload()
            assert first["metrics"]["counters"]["stage.pairs"] == 3.0
            assert "stage.pairs" not in second["metrics"]["counters"]
        finally:
            obs.disable()
            obs.get_registry().reset()


class TestParallelRunMergesWorkerMetrics:
    def test_merged_snapshot_contains_worker_stage_metrics(
        self, case, recording_obs
    ):
        result = pooled(case)
        assert np.array_equal(result, case.reference)
        snap = recording_obs.snapshot()
        # payloads actually travelled the worker -> parent channel
        assert snap["counters"]["obs.worker_payloads"] >= 2.0
        # the per-stage timings previously trapped in worker registries
        for key in WORKER_STAGE_KEYS:
            assert key in snap["histograms"], f"{key} missing from merged snapshot"
            assert snap["histograms"][key]["count"] > 0
        # the acceptance equality: merged pair-count == pairs extracted
        assert snap["counters"]["parallel.pairs_extracted"] == len(case.pairs)
        # batched chunks emit ONE feature span per chunk, not one per pair
        feature_spans = snap["histograms"]["span.feature.temporal"]["count"]
        assert 1 <= feature_spans <= len(case.pairs)

    def test_worker_spans_arrive_with_worker_pids_and_chunk_tags(
        self, case, recording_obs
    ):
        pooled(case)
        records = obs.drain_span_records()
        pids = {r["pid"] for r in records}
        assert os.getpid() in pids  # parent batch span
        assert len(pids) >= 2  # at least one worker lane
        chunk_spans = [r for r in records if r["name"] == "parallel.worker_chunk"]
        assert chunk_spans and all(r["pid"] != os.getpid() for r in chunk_spans)
        assert all("chunk" in r["tags"] for r in chunk_spans)
        # nested stage spans inherit the chunk tag from the chunk span
        stage_spans = [r for r in records if r["name"] == "influence_matrix"]
        assert stage_spans and all("chunk" in r["tags"] for r in stage_spans)

    def test_sequential_run_records_the_same_stage_keys(self, case, recording_obs):
        # the merged parallel snapshot is key-compatible with a
        # sequential one: downstream consumers (reports, dashboards)
        # need not care how the run was executed
        pooled(case, workers=1)
        snap = recording_obs.snapshot()
        for key in WORKER_STAGE_KEYS:
            assert snap["histograms"][key]["count"] > 0
        assert snap["counters"]["parallel.pairs_extracted"] == len(case.pairs)


class TestFaultRunsStillMerge:
    def test_worker_crash_metrics_survive_retry(
        self, case, recording_obs, tmp_path
    ):
        # the worker holding pair 3 dies once; respawned pool re-runs the
        # lost chunk.  Metrics from surviving + respawned workers merge,
        # and the pair equality holds because lost chunks ship nothing.
        with inject("worker_crash", "3", fires=1, state_dir=str(tmp_path)):
            result = pooled(case)
        assert np.array_equal(result, case.reference)
        snap = recording_obs.snapshot()
        assert snap["counters"]["robust.retries"] >= 1.0
        assert snap["counters"]["obs.worker_payloads"] >= 1.0
        assert snap["counters"]["parallel.pairs_extracted"] == len(case.pairs)
        for key in WORKER_STAGE_KEYS:
            assert snap["histograms"][key]["count"] > 0

    def test_parent_fallback_pairs_counted_once(self, case, recording_obs):
        # a crash with no fire budget exhausts retries; the parent
        # extracts the stragglers itself — those pairs are counted in the
        # parent registry, not shipped, so the equality still holds.
        with inject("worker_crash", "3"):
            result = pooled(
                case, retry=RetryPolicy(max_retries=1, chunk_timeout=5.0)
            )
        assert np.array_equal(result, case.reference)
        snap = recording_obs.snapshot()
        assert snap["counters"]["robust.fallbacks"] >= 1.0
        assert snap["counters"]["parallel.pairs_extracted"] == len(case.pairs)

    def test_spawn_transport_ships_payloads_too(
        self, case, recording_obs, monkeypatch
    ):
        # the obs switches and payloads must survive pickling through the
        # spawn + shared-memory transport, not just fork inheritance
        monkeypatch.setenv("REPRO_START_METHOD", "spawn")
        result = pooled(case, backend="csr")
        assert np.array_equal(result, case.reference)
        snap = recording_obs.snapshot()
        assert snap["counters"]["obs.worker_payloads"] >= 1.0
        assert snap["counters"]["parallel.pairs_extracted"] == len(case.pairs)

"""Live telemetry plane: exposition, publisher, heartbeats, resources."""

import json
import logging
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.obs.live import (
    HEARTBEAT_SCHEMA_VERSION,
    OPENMETRICS_CONTENT_TYPE,
    Heartbeat,
    TelemetryPublisher,
    atomic_write_text,
    configure_heartbeat,
    current_phase,
    emit_alert,
    get_heartbeat,
    heartbeat_tick,
    peak_rss_bytes,
    read_open_fds,
    read_rss_bytes,
    render_openmetrics,
    run_id,
    sample_process_resources,
    set_phase,
    set_tracemalloc,
    tracemalloc_enabled,
    tracemalloc_stage,
)
from repro.obs.metrics import MetricsRegistry, get_registry

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(autouse=True)
def _clean_live_state():
    """Every test starts disabled, unconfigured and phase-reset."""
    obs.disable()
    get_registry().reset()
    configure_heartbeat(None)
    set_tracemalloc(False)
    set_phase("idle")
    yield
    obs.disable()
    get_registry().reset()
    configure_heartbeat(None)
    set_tracemalloc(False)
    set_phase("idle")


def _checker():
    """Import scripts/check_openmetrics.py as a module."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "check_openmetrics", REPO_ROOT / "scripts" / "check_openmetrics.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestAtomicWriteText:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, '{"a": 1}\n')
        assert json.loads(path.read_text()) == {"a": 1}

    def test_overwrites_previous_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"

    def test_leaves_no_staging_litter(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(path, "x")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]


class TestRunIdentity:
    def test_run_id_is_stable_and_carries_the_pid(self):
        assert run_id() == run_id()
        assert f"-{os.getpid()}-" in run_id()

    def test_phase_roundtrip(self):
        set_phase("table3")
        assert current_phase() == "table3"


class TestResourceSampling:
    def test_readers_return_plausible_values_on_linux(self):
        if not os.path.exists("/proc/self/statm"):
            pytest.skip("no /proc on this platform")
        assert read_rss_bytes() > 1024 * 1024  # a Python process is > 1 MiB
        assert peak_rss_bytes() >= read_rss_bytes() * 0.5
        assert read_open_fds() > 0

    def test_sampler_publishes_proc_gauges(self):
        registry = MetricsRegistry()
        sampled = sample_process_resources(registry)
        gauges = registry.snapshot()["gauges"]
        assert sampled["proc.cpu_seconds"] > 0
        assert gauges["proc.cpu_seconds"] == pytest.approx(
            sampled["proc.cpu_seconds"], abs=1.0
        )
        if os.path.exists("/proc/self/statm"):
            assert gauges["proc.rss_bytes"] > 0
            assert gauges["proc.open_fds"] > 0

    def test_sampler_skips_unknown_readings(self, monkeypatch):
        import repro.obs.live as live

        monkeypatch.setattr(live, "read_rss_bytes", lambda: 0.0)
        monkeypatch.setattr(live, "read_open_fds", lambda: -1)
        registry = MetricsRegistry()
        sample_process_resources(registry)
        gauges = registry.snapshot()["gauges"]
        assert "proc.rss_bytes" not in gauges
        assert "proc.open_fds" not in gauges
        assert "proc.cpu_seconds" in gauges


class TestTracemallocStages:
    def test_off_by_default_and_publishes_nothing(self):
        assert not tracemalloc_enabled()
        with tracemalloc_stage("extract"):
            _ = [0] * 10_000
        assert get_registry().snapshot()["gauges"] == {}

    def test_on_records_a_peak_gauge(self):
        set_tracemalloc(True)
        with tracemalloc_stage("extract"):
            _ = [0] * 50_000
        gauges = get_registry().snapshot()["gauges"]
        assert gauges["proc.tracemalloc_peak_bytes.extract"] > 50_000 * 4

    def test_peak_gauge_only_rises(self):
        set_tracemalloc(True)
        with tracemalloc_stage("stage"):
            _ = [0] * 100_000
        first = get_registry().snapshot()["gauges"][
            "proc.tracemalloc_peak_bytes.stage"
        ]
        with tracemalloc_stage("stage"):
            pass
        again = get_registry().snapshot()["gauges"][
            "proc.tracemalloc_peak_bytes.stage"
        ]
        assert again == first


class TestAlerts:
    def _capture(self):
        records = []

        class _Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        handler = _Capture()
        logging.getLogger("repro.obs.alert").addHandler(handler)
        return records, handler

    def test_alert_is_a_structured_warning(self):
        records, handler = self._capture()
        try:
            emit_alert("auc_drift", "window fell", auc=0.4, drift=0.3)
        finally:
            logging.getLogger("repro.obs.alert").removeHandler(handler)
        assert len(records) == 1
        record = records[0]
        assert record.levelno == logging.WARNING
        assert record.alert == "auc_drift"
        assert record.auc == 0.4
        assert "window fell" in record.getMessage()

    def test_counters_bump_only_when_enabled(self):
        emit_alert("kind_a", "disabled: no counters")
        assert get_registry().snapshot()["counters"] == {}
        obs.enable()
        emit_alert("kind_a", "enabled: counted")
        counters = get_registry().snapshot()["counters"]
        assert counters["obs.alerts"] == 1
        assert counters["obs.alerts.kind_a"] == 1


class TestHeartbeat:
    def test_beat_writes_the_documented_schema(self, tmp_path):
        path = tmp_path / "hb.json"
        hb = Heartbeat(path, min_interval=0.0)
        assert hb.write("extract", done=3, total=10, pairs_per_second=50.0)
        doc = json.loads(path.read_text())
        assert doc["schema"] == HEARTBEAT_SCHEMA_VERSION
        assert doc["run_id"] == run_id()
        assert doc["pid"] == os.getpid()
        assert doc["stage"] == "extract"
        assert doc["done"] == 3.0
        assert doc["total"] == 10.0
        assert doc["pairs_per_second"] == 50.0
        assert doc["beats"] == 1

    def test_done_is_monotone_within_a_stage(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", min_interval=0.0)
        hb.write("extract", done=5, total=10)
        hb.write("extract", done=2, total=10)  # a retried chunk round
        doc = json.loads((tmp_path / "hb.json").read_text())
        assert doc["done"] == 5.0

    def test_stage_change_resets_progress_and_always_writes(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", min_interval=3600.0)
        assert hb.write("extract", done=9, total=10)
        assert hb.write("train", done=1, total=4)  # despite the throttle
        doc = json.loads((tmp_path / "hb.json").read_text())
        assert doc["stage"] == "train"
        assert doc["done"] == 1.0

    def test_throttle_suppresses_rapid_beats(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", min_interval=3600.0)
        assert hb.write("extract", done=1, total=100)
        assert not hb.write("extract", done=2, total=100)
        assert hb.write("extract", done=3, total=100, force=True)

    def test_completion_beats_through_the_throttle(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", min_interval=3600.0)
        hb.write("extract", done=1, total=10)
        assert hb.write("extract", done=10, total=10)
        doc = json.loads((tmp_path / "hb.json").read_text())
        assert doc["done"] == doc["total"] == 10.0

    def test_eta_extrapolates_from_stage_rate(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", min_interval=0.0)
        hb.write("extract", done=0, total=10)
        time.sleep(0.05)
        hb.write("extract", done=5, total=10)
        doc = json.loads((tmp_path / "hb.json").read_text())
        assert doc["eta_seconds"] is not None
        assert doc["eta_seconds"] > 0

    def test_extra_fields_are_merged(self, tmp_path):
        hb = Heartbeat(tmp_path / "hb.json", min_interval=0.0)
        hb.write("extract", extra={"dataset": "hypertext"})
        assert json.loads((tmp_path / "hb.json").read_text())["dataset"] == (
            "hypertext"
        )

    def test_negative_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="min_interval"):
            Heartbeat(tmp_path / "hb.json", min_interval=-1)

    def test_unconfigured_tick_is_a_noop(self, tmp_path):
        heartbeat_tick("extract", done=1, total=2)  # must not raise
        assert get_heartbeat() is None

    def test_configured_tick_writes_through_the_module_hook(self, tmp_path):
        path = tmp_path / "hb.json"
        configure_heartbeat(path, min_interval=0.0)
        assert get_heartbeat() is not None
        heartbeat_tick("extract", done=2, total=4)
        assert json.loads(path.read_text())["done"] == 2.0
        configure_heartbeat(None)
        assert get_heartbeat() is None

    def test_reader_never_sees_torn_json_under_kill(self, tmp_path):
        """SIGKILL a busy heartbeat writer; the file must stay parseable."""
        path = tmp_path / "hb.json"
        writer = subprocess.Popen(
            [
                sys.executable,
                "-c",
                (
                    "import itertools\n"
                    "from repro.obs.live import Heartbeat\n"
                    f"hb = Heartbeat({str(path)!r}, min_interval=0.0)\n"
                    "for i in itertools.count():\n"
                    "    hb.write('spin', done=i, total=10**9,\n"
                    "             extra={'pad': 'x' * 4096})\n"
                ),
            ],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        try:
            deadline = time.time() + 10.0
            while not path.exists() and time.time() < deadline:
                time.sleep(0.01)
            assert path.exists(), "writer never produced a heartbeat"
            time.sleep(0.2)  # let it spin mid-write
        finally:
            writer.send_signal(signal.SIGKILL)
            writer.wait(timeout=10.0)
        doc = json.loads(path.read_text())  # either beat, never torn
        assert doc["stage"] == "spin"
        assert doc["pad"] == "x" * 4096


class TestRenderOpenmetrics:
    def _snapshot(self):
        obs.enable()
        registry = get_registry()
        registry.counter("parallel.pairs_extracted").inc(42)
        registry.gauge("stream.last_window_auc").set(0.93)
        hist = registry.histogram("span.feature.extract")
        for value in (0.1, 0.5, 0.9):
            hist.observe(value)
        return registry.mergeable_snapshot()

    def test_counters_gauges_and_summaries(self):
        text = render_openmetrics(self._snapshot())
        assert "# TYPE repro_parallel_pairs_extracted counter" in text
        assert "repro_parallel_pairs_extracted_total 42.0" in text
        assert "repro_stream_last_window_auc 0.93" in text
        assert "# TYPE repro_span_feature_extract summary" in text
        assert 'repro_span_feature_extract{quantile="0.5"} 0.5' in text
        assert "repro_span_feature_extract_count 3" in text
        assert text.endswith("# EOF\n")

    def test_quantiles_match_the_histogram_estimator(self):
        registry = get_registry()
        obs.enable()
        hist = registry.histogram("span.stage")
        for value in range(1, 101):
            hist.observe(float(value))
        text = render_openmetrics(registry.mergeable_snapshot())
        line = next(
            l for l in text.splitlines() if l.startswith('repro_span_stage{quantile="0.95"}')
        )
        assert float(line.split()[-1]) == hist.percentile(95.0)

    def test_phase_renders_an_info_family(self):
        set_phase("table3")
        text = render_openmetrics({"counters": {}, "gauges": {}, "histograms": {}}, phase="table3")
        assert "# TYPE repro_run info" in text
        assert 'phase="table3"' in text

    def test_name_collisions_keep_first_family_only(self):
        snapshot = {
            "counters": {"a.b": 1.0, "a-b": 2.0},  # both -> repro_a_b
            "gauges": {},
            "histograms": {},
        }
        text = render_openmetrics(snapshot)
        assert text.count("# TYPE repro_a_b counter") == 1
        assert "repro_a_b_total 1.0" in text
        assert "repro_a_b_total 2.0" not in text

    def test_non_finite_values_render_parseable_literals(self):
        snapshot = {
            "counters": {},
            "gauges": {"g.nan": float("nan"), "g.inf": float("inf")},
            "histograms": {},
        }
        text = render_openmetrics(snapshot)
        assert "repro_g_nan NaN" in text
        assert "repro_g_inf +Inf" in text

    def test_checker_script_accepts_the_rendering(self):
        checker = _checker()
        text = render_openmetrics(
            self._snapshot(), phase="test", uptime_seconds=1.0
        )
        problems = checker.validate(
            text, ["repro_parallel_pairs_extracted", "repro_run"]
        )
        assert problems == []

    def test_checker_script_rejects_torn_documents(self):
        checker = _checker()
        assert checker.validate("repro_x 1.0\n", []) != []  # no EOF
        assert any(
            "declared twice" in p
            for p in checker.validate(
                "# TYPE repro_x gauge\n# TYPE repro_x gauge\n# EOF\n", []
            )
        )
        assert any(
            "required" in p
            for p in checker.validate("# EOF\n", ["repro_missing"])
        )


class TestExemplars:
    def _latency_snapshot(self):
        obs.enable()
        registry = get_registry()
        hist = registry.histogram("serve.request_seconds")
        for value in (0.1, 0.5, 0.9):
            hist.observe(value)
        return registry.mergeable_snapshot()

    def test_count_line_carries_the_exemplar(self):
        from repro.obs.live import render_openmetrics as render

        text = render(
            self._latency_snapshot(),
            exemplars={"serve.request_seconds": ("tr-1f-000001", 0.9, 1723111111.5)},
        )
        line = next(
            l
            for l in text.splitlines()
            if l.startswith("repro_serve_request_seconds_count")
        )
        assert '# {trace_id="tr-1f-000001"} 0.9' in line

    def test_unmatched_exemplar_keys_are_ignored(self):
        from repro.obs.live import render_openmetrics as render

        text = render(
            self._latency_snapshot(),
            exemplars={"other.metric_seconds": ("tr-x", 1.0, 2.0)},
        )
        assert "tr-x" not in text
        assert "repro_serve_request_seconds_count 3" in text

    def test_provider_hook_feeds_the_publisher_path(self):
        from repro.obs.live import current_exemplars, set_exemplar_provider

        try:
            set_exemplar_provider(
                lambda: {"serve.request_seconds": ("tr-hook", 0.5, 1.0)}
            )
            assert current_exemplars() == {
                "serve.request_seconds": ("tr-hook", 0.5, 1.0)
            }
        finally:
            set_exemplar_provider(None)
        assert current_exemplars() is None

    def test_checker_accepts_exemplars_and_enforces_requirement(self):
        from repro.obs.live import render_openmetrics as render

        checker = _checker()
        with_exemplar = render(
            self._latency_snapshot(),
            exemplars={"serve.request_seconds": ("tr-1", 0.9, 1.0)},
        )
        assert checker.validate(
            with_exemplar, [], ["repro_serve_request_seconds"]
        ) == []
        without = render(self._latency_snapshot())
        problems = checker.validate(without, [], ["repro_serve_request_seconds"])
        assert any("no valid exemplar" in p for p in problems)

    def test_checker_rejects_malformed_exemplars(self):
        checker = _checker()
        doc = (
            "# TYPE repro_x summary\n"
            'repro_x_count 3 # {trace_id=unquoted} 0.5\n'
            "# EOF\n"
        )
        assert any(
            "labelset" in p for p in checker.validate(doc, [], [])
        )


class TestHeartbeatExtra:
    def test_tick_passes_extra_fields_through(self, tmp_path):
        path = tmp_path / "hb.json"
        configure_heartbeat(path)
        heartbeat_tick(
            "serve:replay",
            done=3.0,
            total=10.0,
            pairs_per_second=120.0,
            force=True,
            extra={"queue_depth": 7},
        )
        doc = json.loads(path.read_text())
        assert doc["stage"] == "serve:replay"
        assert doc["queue_depth"] == 7


class TestTelemetryPublisher:
    def _get(self, url):
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.headers, response.read().decode()

    def test_serves_metrics_and_healthz(self):
        obs.enable()
        get_registry().counter("parallel.pairs_extracted").inc(7)
        set_phase("table3")
        with TelemetryPublisher(0, interval=30.0) as publisher:
            assert publisher.port > 0
            status, headers, body = self._get(publisher.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"] == OPENMETRICS_CONTENT_TYPE
            assert "repro_parallel_pairs_extracted_total 7.0" in body
            assert "repro_proc_cpu_seconds" in body
            assert body.endswith("# EOF\n")

            status, headers, health = self._get(publisher.url + "/healthz")
            assert status == 200
            payload = json.loads(health)
            assert payload["status"] == "ok"
            assert payload["phase"] == "table3"
            assert payload["pid"] == os.getpid()
            assert payload["run_id"] == run_id()

    def test_scrape_is_live_not_start_snapshot(self):
        obs.enable()
        with TelemetryPublisher(0, interval=30.0) as publisher:
            get_registry().counter("parallel.pairs_extracted").inc(5)
            _, _, body = self._get(publisher.url + "/metrics")
            assert "repro_parallel_pairs_extracted_total 5.0" in body

    def test_unknown_path_is_404(self):
        with TelemetryPublisher(0, interval=30.0) as publisher:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(publisher.url + "/nope")
            assert excinfo.value.code == 404

    def test_checker_script_accepts_a_live_scrape(self, tmp_path):
        checker = _checker()
        obs.enable()
        with TelemetryPublisher(0, interval=30.0) as publisher:
            saved = tmp_path / "scrape.prom"
            rc = checker.main(
                [
                    "--url",
                    publisher.url + "/metrics",
                    "--require",
                    "repro_proc_cpu_seconds",
                    "--save",
                    str(saved),
                ]
            )
            assert rc == 0
            assert saved.read_text().endswith("# EOF\n")

    def test_stop_is_idempotent_and_frees_the_port(self):
        publisher = TelemetryPublisher(0, interval=30.0).start()
        url = publisher.url + "/metrics"
        publisher.stop()
        publisher.stop()
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url, timeout=1)

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            TelemetryPublisher(0, interval=0.0)


class TestTelemetryDoesNotPerturbFeatures:
    def test_extraction_is_bit_identical_with_telemetry_on(self, tmp_path):
        import numpy as np

        from repro.core.feature import SSFConfig, SSFExtractor
        from repro.datasets.synthetic import (
            EventModelConfig,
            generate_event_network,
        )

        network = generate_event_network(
            EventModelConfig(n_nodes=40, n_links=200, span=10), seed=3
        )
        pairs = list(network.pair_iter())[:10]

        def extract():
            extractor = SSFExtractor(network, SSFConfig(k=6))
            return np.stack([extractor.extract(a, b) for a, b in pairs])

        plain = extract()
        obs.enable()
        configure_heartbeat(tmp_path / "hb.json", min_interval=0.0)
        with TelemetryPublisher(0, interval=0.05):
            heartbeat_tick("extract", done=0, total=len(pairs))
            live = extract()
            heartbeat_tick("extract", done=len(pairs), total=len(pairs))
        assert np.array_equal(plain, live)

"""Tests for the structured logging facade."""

import io
import json
import logging

import pytest

from repro.obs import JsonLinesFormatter, configure_logging, get_logger


@pytest.fixture(autouse=True)
def _restore_root_logger():
    root = logging.getLogger("repro")
    before = (list(root.handlers), root.level, root.propagate)
    yield
    root.handlers[:] = before[0]
    root.setLevel(before[1])
    root.propagate = before[2]


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger("core.feature").name == "repro.core.feature"

    def test_already_qualified_name_unchanged(self):
        assert get_logger("repro.core.feature").name == "repro.core.feature"

    def test_default_is_namespace_root(self):
        assert get_logger().name == "repro"

    def test_same_logger_instance(self):
        assert get_logger("x") is get_logger("repro.x")

    def test_silent_by_default(self):
        # the import-time NullHandler means no "no handler" warnings and
        # no accidental output for library users
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)


class TestConfigureLogging:
    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        log = get_logger("test.levels")
        log.debug("hidden")
        log.info("shown")
        out = stream.getvalue()
        assert "shown" in out and "hidden" not in out

    def test_invalid_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            configure_logging(level="chatty")

    def test_reconfigure_does_not_stack_handlers(self):
        stream = io.StringIO()
        for _ in range(3):
            configure_logging(level="info", stream=stream)
        get_logger("test.stack").info("once")
        assert stream.getvalue().count("once") == 1

    def test_json_lines_format(self):
        stream = io.StringIO()
        configure_logging(level="debug", json_lines=True, stream=stream)
        get_logger("test.json").info("hello %s", "world")
        record = json.loads(stream.getvalue())
        assert record["message"] == "hello world"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test.json"
        assert isinstance(record["ts"], float)

    def test_json_lines_extra_fields(self):
        stream = io.StringIO()
        configure_logging(level="debug", json_lines=True, stream=stream)
        get_logger("test.extra").info(
            "with context", extra={"dataset": "co-author", "pairs": 42}
        )
        record = json.loads(stream.getvalue())
        assert record["dataset"] == "co-author"
        assert record["pairs"] == 42

    def test_json_lines_are_one_object_per_line(self):
        stream = io.StringIO()
        configure_logging(level="debug", json_lines=True, stream=stream)
        log = get_logger("test.lines")
        log.info("a")
        log.info("b")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert [json.loads(line)["message"] for line in lines] == ["a", "b"]


class TestJsonLinesFormatter:
    def test_exception_rendering(self):
        formatter = JsonLinesFormatter()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys

            record = logging.LogRecord(
                "repro.t", logging.ERROR, __file__, 1, "failed", (), sys.exc_info()
            )
        payload = json.loads(formatter.format(record))
        assert "RuntimeError: boom" in payload["exception"]

"""Run reports: joining metrics, checkpoints and bench artefacts."""

import json

import pytest

from repro.obs.bench import append_history
from repro.obs.report import (
    build_report,
    checkpoint_summary,
    format_report,
    run_report,
)


def _metrics():
    def hist(count, total, p50, p95, estimator="exact"):
        return {
            "count": count,
            "sum": total,
            "min": p50 / 2,
            "max": p95 * 2,
            "mean": total / count,
            "p50": p50,
            "p95": p95,
            "estimator": estimator,
            "sampled": count,
        }

    return {
        "counters": {
            "parallel.pairs_extracted": 84.0,
            "parallel.pool_runs": 1.0,
            "robust.retries": 2.0,
            "robust.fallbacks": 1.0,
            "obs.worker_payloads": 9.0,
        },
        "gauges": {"parallel.workers": 2.0, "parallel.chunksize": 5.0},
        "histograms": {
            "span.subgraph_growth": hist(84, 0.42, 0.004, 0.009),
            "span.influence_matrix": hist(84, 1.26, 0.012, 0.030, "reservoir"),
            "span.feature.temporal": hist(84, 1.80, 0.018, 0.041),
            "span.csr.build": hist(1, 0.05, 0.05, 0.05),
            "parallel.pairs_per_second": hist(1, 120.0, 120.0, 120.0),
            "subgraph.nodes": hist(84, 900.0, 10.0, 14.0),  # not a span
        },
    }


def _bench():
    return {
        "nodes": 800,
        "pairs": 60,
        "k": 10,
        "bit_identical": True,
        "speedup": 1.2,
        "backends": {
            "dict": {"seconds": 0.08, "pairs_per_second": 750.0},
            "csr": {"seconds": 0.066, "pairs_per_second": 900.0},
        },
    }


class TestBuildReport:
    def test_stage_rows_are_spans_only_sorted_by_total(self):
        report = build_report(metrics=_metrics())
        stages = [row["stage"] for row in report["stages"]]
        assert stages == [
            "feature.temporal",
            "influence_matrix",
            "subgraph_growth",
            "csr.build",
        ]
        assert "subgraph.nodes" not in stages

    def test_shares_sum_to_one_and_units_are_ms(self):
        report = build_report(metrics=_metrics())
        assert sum(r["share"] for r in report["stages"]) == pytest.approx(1.0)
        growth = next(
            r for r in report["stages"] if r["stage"] == "subgraph_growth"
        )
        assert growth["p50_ms"] == pytest.approx(4.0)
        assert growth["p95_ms"] == pytest.approx(9.0)

    def test_throughput_pulls_counters_gauges_and_modes(self):
        t = build_report(metrics=_metrics())["throughput"]
        assert t["pairs_extracted"] == 84.0
        assert t["workers"] == 2.0
        assert t["entry_modes"] == {"temporal": 84}
        assert t["backend"] == "csr"  # span.csr.build present
        assert t["pairs_per_second_p50"] == pytest.approx(120.0)

    def test_backend_inferred_dict_without_csr_build(self):
        metrics = _metrics()
        del metrics["histograms"]["span.csr.build"]
        assert build_report(metrics=metrics)["throughput"]["backend"] == "dict"

    def test_robustness_counters_surface(self):
        r = build_report(metrics=_metrics())["robustness"]
        assert r["robust.retries"] == 2.0
        assert r["obs.worker_payloads"] == 9.0
        assert r["robust.shm_degradations"] == 0.0

    def test_sections_only_for_supplied_artefacts(self):
        assert build_report()["sections"] == []
        assert build_report(bench=_bench())["sections"] == ["bench"]

    def test_none_metric_values_from_nan_scrub_do_not_crash(self):
        metrics = _metrics()
        metrics["histograms"]["span.subgraph_growth"]["p50"] = None
        report = build_report(metrics=metrics)
        growth = next(
            r for r in report["stages"] if r["stage"] == "subgraph_growth"
        )
        assert growth["p50_ms"] == 0.0


class TestCheckpointSummary:
    def _run_dir(self, tmp_path):
        root = tmp_path / "run"
        (root / "co-author").mkdir(parents=True)
        (root / "manifest.json").write_text(json.dumps({"k": 10, "seed": 0}))
        (root / "co-author" / "method_SSFNM.json").write_text(
            json.dumps(
                {"dataset": "co-author", "method": "SSFNM", "auc": 0.91, "f1": 0.8}
            )
        )
        (root / "co-author" / "features_ssf.npz").write_bytes(b"notreally")
        return root

    def test_summary_lists_manifest_cells_and_features(self, tmp_path):
        summary = checkpoint_summary(self._run_dir(tmp_path))
        assert summary["manifest"] == {"k": 10, "seed": 0}
        assert summary["completed_cells"] == [
            {"dataset": "co-author", "method": "SSFNM", "auc": 0.91, "f1": 0.8}
        ]
        assert summary["feature_files"] == 1

    def test_missing_or_corrupt_pieces_are_tolerated(self, tmp_path):
        root = self._run_dir(tmp_path)
        (root / "manifest.json").write_text("{broken")
        (root / "co-author" / "method_bad.json").write_text("also broken")
        summary = checkpoint_summary(root)
        assert summary["manifest"] is None
        assert len(summary["completed_cells"]) == 1

    def test_empty_directory_is_an_empty_summary(self, tmp_path):
        summary = checkpoint_summary(tmp_path)
        assert summary["completed_cells"] == []
        assert summary["manifest"] is None


class TestMarkdownRendering:
    def test_full_report_renders_every_section(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        append_history(history, _bench(), recorded_at=1.0)
        from repro.obs.bench import load_history

        text = format_report(
            build_report(
                metrics=_metrics(),
                checkpoint=checkpoint_summary(tmp_path),
                bench=_bench(),
                history=load_history(history),
            )
        )
        for heading in (
            "# Run report",
            "## Stage breakdown",
            "## Throughput",
            "## Robustness",
            "## Checkpoint",
            "## Benchmark",
        ):
            assert heading in text
        assert "pairs extracted: 84" in text
        assert "~" in text  # reservoir-estimated quantile marker
        assert "history: 1 recorded runs" in text

    def test_empty_report_says_what_to_pass(self):
        text = format_report(build_report())
        assert "No artefacts supplied" in text

    def test_clean_run_robustness_line(self):
        metrics = _metrics()
        metrics["counters"] = {"parallel.pairs_extracted": 10.0}
        text = format_report(build_report(metrics=metrics))
        assert "clean run" in text


class TestRunReportEntryPoint:
    def test_joins_files_and_writes_json(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(_metrics()))
        bench_path = tmp_path / "bench.json"
        bench_path.write_text(json.dumps(_bench()))
        history_path = tmp_path / "hist.jsonl"
        append_history(history_path, _bench(), recorded_at=1.0)
        json_out = tmp_path / "report.json"

        text = run_report(
            metrics_path=str(metrics_path),
            bench_path=str(bench_path),
            history_path=str(history_path),
            json_out=str(json_out),
        )
        assert "## Stage breakdown" in text
        payload = json.loads(json_out.read_text())
        assert set(payload["sections"]) == {
            "stages",
            "throughput",
            "robustness",
            "bench",
        }
        assert payload["bench"]["history"]["records"] == 1


class TestMemoryAndDriftSections:
    def _metrics_with_proc_and_stream(self):
        metrics = _metrics()
        metrics["gauges"].update(
            {
                "proc.rss_bytes": 100.0 * 1024 * 1024,
                "proc.peak_rss_bytes": 150.0 * 1024 * 1024,
                "proc.cpu_seconds": 12.5,
                "proc.open_fds": 24.0,
                "proc.worker_rss_bytes.pid101": 80.0 * 1024 * 1024,
                "proc.worker_rss_bytes.pid102": 90.0 * 1024 * 1024,
                "proc.tracemalloc_peak_bytes.extract_ssf": 30.0 * 1024 * 1024,
                "stream.last_window_auc": 0.61,
                "stream.auc_drift": -0.25,
                "stream.positive_rate": 0.5,
                "stream.score_shift": -0.1,
            }
        )
        metrics["counters"].update(
            {
                "stream.windows_scored": 6.0,
                "stream.windows_skipped": 2.0,
                "stream.drift_alerts": 1.0,
            }
        )
        metrics["histograms"]["stream.window_auc"] = {
            "count": 6,
            "sum": 4.5,
            "min": 0.61,
            "max": 0.9,
            "mean": 0.75,
            "p50": 0.78,
            "p95": 0.9,
            "estimator": "exact",
            "sampled": 6,
        }
        return metrics

    def test_memory_section_totals_the_fleet(self):
        report = build_report(metrics=self._metrics_with_proc_and_stream())
        memory = report["memory"]
        assert memory["fleet_rss_bytes"] == pytest.approx(270.0 * 1024 * 1024)
        assert set(memory["worker_rss_bytes"]) == {"101", "102"}
        assert memory["tracemalloc_peak_bytes"]["extract_ssf"] > 0
        text = format_report(report)
        assert "## Memory" in text
        assert "fleet RSS (parent + 2 workers): 270.0 MiB" in text
        assert "tracemalloc peak [extract_ssf]: 30.0 MiB" in text

    def test_drift_section_surfaces_alerts(self):
        report = build_report(metrics=self._metrics_with_proc_and_stream())
        drift = report["drift"]
        assert drift["windows_scored"] == 6.0
        assert drift["drift_alerts"] == 1.0
        text = format_report(report)
        assert "## Streaming drift" in text
        assert "ALERTS: 1 drift-threshold crossings" in text
        assert "auc_drift -0.250" in text

    def test_sections_absent_without_proc_or_stream_metrics(self):
        report = build_report(metrics=_metrics())
        assert "memory" not in report
        assert "drift" not in report
        text = format_report(report)
        assert "## Memory" not in text
        assert "## Streaming drift" not in text

    def test_spans_dropped_warning_renders(self):
        metrics = _metrics()
        metrics["counters"]["obs.spans_dropped"] = 12.0
        text = format_report(build_report(metrics=metrics))
        assert "span-record buffer overflowed" in text
        assert "12 spans dropped" in text


class TestPartialJoins:
    """Each artefact missing or malformed individually degrades to a note."""

    def _all_artefacts(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(_metrics()))
        bench_path = tmp_path / "bench.json"
        bench_path.write_text(json.dumps(_bench()))
        history_path = tmp_path / "hist.jsonl"
        append_history(history_path, _bench(), recorded_at=1.0)
        checkpoint_dir = tmp_path / "run"
        checkpoint_dir.mkdir()
        (checkpoint_dir / "manifest.json").write_text(json.dumps({"seed": 0}))
        return {
            "metrics_path": str(metrics_path),
            "bench_path": str(bench_path),
            "history_path": str(history_path),
            "checkpoint_dir": str(checkpoint_dir),
        }

    def test_missing_metrics_keeps_the_other_sections(self, tmp_path):
        paths = self._all_artefacts(tmp_path)
        paths["metrics_path"] = str(tmp_path / "nope.json")
        text = run_report(**paths)
        assert "WARNING: metrics unreadable" in text
        assert "## Stage breakdown" not in text
        assert "## Benchmark" in text
        assert "## Checkpoint" in text

    def test_malformed_metrics_keeps_the_other_sections(self, tmp_path):
        paths = self._all_artefacts(tmp_path)
        (tmp_path / "metrics.json").write_text('{"counters": {"a"')  # truncated
        text = run_report(**paths)
        assert "WARNING: metrics unreadable" in text
        assert "## Benchmark" in text

    def test_non_object_metrics_is_noted(self, tmp_path):
        paths = self._all_artefacts(tmp_path)
        (tmp_path / "metrics.json").write_text("[1, 2, 3]")
        text = run_report(**paths)
        assert "WARNING: metrics malformed" in text

    def test_missing_or_malformed_bench_keeps_the_rest(self, tmp_path):
        paths = self._all_artefacts(tmp_path)
        (tmp_path / "bench.json").write_text("{nope")
        text = run_report(**paths)
        assert "WARNING: bench unreadable" in text
        assert "## Stage breakdown" in text
        # history alone still renders the benchmark trajectory
        assert "## Benchmark" in text

    def test_missing_checkpoint_dir_is_an_empty_summary(self, tmp_path):
        paths = self._all_artefacts(tmp_path)
        paths["checkpoint_dir"] = str(tmp_path / "gone")
        text = run_report(**paths)
        assert "## Checkpoint" in text
        assert "completed cells: 0" in text
        assert "## Stage breakdown" in text

    def test_malformed_history_lines_are_skipped(self, tmp_path):
        paths = self._all_artefacts(tmp_path)
        with open(paths["history_path"], "a", encoding="utf-8") as fh:
            fh.write("{torn by a crash\n")
        text = run_report(**paths)
        assert "history: 1 recorded runs" in text

    def test_every_artefact_broken_still_reports(self, tmp_path):
        (tmp_path / "m.json").write_text("{")
        (tmp_path / "b.json").write_text("{")
        text = run_report(
            metrics_path=str(tmp_path / "m.json"),
            bench_path=str(tmp_path / "b.json"),
        )
        assert "# Run report" in text
        assert text.count("WARNING:") == 2


def _metrics_with_slo():
    metrics = _metrics()
    metrics["slo"] = {
        "objectives": [
            {
                "objective": "serve.request p99 < 250ms over 5m",
                "metric": "serve.request",
                "kind": "latency",
                "window_seconds": 300.0,
                "events": 800,
                "bad_events": 4,
                "burn_rate": 0.5,
                "budget_remaining": 0.5,
                "worst_value": 0.31,
                "worst_trace_id": "tr-1f-000007",
            }
        ],
        "alerts_fired": [
            {
                "kind": "slo_fast_burn",
                "objective": "serve.request p99 < 250ms over 5m",
                "short_burn_rate": 20.0,
                "long_burn_rate": 15.0,
                "threshold": 14.4,
            }
        ],
        "burn_windows": [],
    }
    return metrics


_COLLAPSED = "\n".join(
    [
        "# collapsed stacks",
        "serve:replay;MainThread;frontend.py:recommend;parallel.py:_extract_rows 30",
        "serve:replay;MainThread;frontend.py:recommend 10",
        "idle;MainThread;cli.py:main 5",
    ]
)


class TestSLOSection:
    def test_slo_section_normalises_the_snapshot(self):
        report = build_report(metrics=_metrics_with_slo())
        assert "slo" in report["sections"]
        (status,) = report["slo"]["objectives"]
        assert status["objective"] == "serve.request p99 < 250ms over 5m"
        assert status["events"] == 800
        assert status["worst_trace_id"] == "tr-1f-000007"
        assert len(report["slo"]["alerts_fired"]) == 1

    def test_no_slo_key_no_section(self):
        report = build_report(metrics=_metrics())
        assert "slo" not in report["sections"]

    def test_markdown_table_and_alert_lines(self):
        text = format_report(build_report(metrics=_metrics_with_slo()))
        assert "## SLO" in text
        assert "| serve.request p99 < 250ms over 5m | 5m | 800 | 4 " in text
        assert "`tr-1f-000007`" in text
        assert "1 burn-rate page(s) fired" in text
        assert "slo_fast_burn" in text

    def test_markdown_quiet_run_says_no_alerts(self):
        metrics = _metrics_with_slo()
        metrics["slo"]["alerts_fired"] = []
        text = format_report(build_report(metrics=metrics))
        assert "no burn-rate alerts fired" in text


class TestProfileSection:
    def test_top_frames_table(self):
        report = build_report(profile_text=_COLLAPSED)
        assert report["sections"] == ["profile"]
        rows = report["profile"]
        assert rows[0]["frame"] == "parallel.py:_extract_rows"
        assert rows[0]["samples"] == 30
        assert rows[0]["share"] == pytest.approx(30 / 45)
        text = format_report(report)
        assert "## Continuous profile — top frames" in text
        assert "`parallel.py:_extract_rows`" in text

    def test_run_report_reads_profile_file(self, tmp_path):
        path = tmp_path / "profile.collapsed"
        path.write_text(_COLLAPSED)
        text = run_report(profile_path=str(path))
        assert "## Continuous profile — top frames" in text

    def test_unreadable_profile_becomes_a_warning_note(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(_metrics()))
        text = run_report(
            metrics_path=str(metrics_path),
            profile_path=str(tmp_path / "gone.collapsed"),
        )
        assert "WARNING: profile unreadable" in text
        assert "## Stage breakdown" in text  # partial join preserved

"""Run reports: joining metrics, checkpoints and bench artefacts."""

import json

import pytest

from repro.obs.bench import append_history
from repro.obs.report import (
    build_report,
    checkpoint_summary,
    format_report,
    run_report,
)


def _metrics():
    def hist(count, total, p50, p95, estimator="exact"):
        return {
            "count": count,
            "sum": total,
            "min": p50 / 2,
            "max": p95 * 2,
            "mean": total / count,
            "p50": p50,
            "p95": p95,
            "estimator": estimator,
            "sampled": count,
        }

    return {
        "counters": {
            "parallel.pairs_extracted": 84.0,
            "parallel.pool_runs": 1.0,
            "robust.retries": 2.0,
            "robust.fallbacks": 1.0,
            "obs.worker_payloads": 9.0,
        },
        "gauges": {"parallel.workers": 2.0, "parallel.chunksize": 5.0},
        "histograms": {
            "span.subgraph_growth": hist(84, 0.42, 0.004, 0.009),
            "span.influence_matrix": hist(84, 1.26, 0.012, 0.030, "reservoir"),
            "span.feature.temporal": hist(84, 1.80, 0.018, 0.041),
            "span.csr.build": hist(1, 0.05, 0.05, 0.05),
            "parallel.pairs_per_second": hist(1, 120.0, 120.0, 120.0),
            "subgraph.nodes": hist(84, 900.0, 10.0, 14.0),  # not a span
        },
    }


def _bench():
    return {
        "nodes": 800,
        "pairs": 60,
        "k": 10,
        "bit_identical": True,
        "speedup": 1.2,
        "backends": {
            "dict": {"seconds": 0.08, "pairs_per_second": 750.0},
            "csr": {"seconds": 0.066, "pairs_per_second": 900.0},
        },
    }


class TestBuildReport:
    def test_stage_rows_are_spans_only_sorted_by_total(self):
        report = build_report(metrics=_metrics())
        stages = [row["stage"] for row in report["stages"]]
        assert stages == [
            "feature.temporal",
            "influence_matrix",
            "subgraph_growth",
            "csr.build",
        ]
        assert "subgraph.nodes" not in stages

    def test_shares_sum_to_one_and_units_are_ms(self):
        report = build_report(metrics=_metrics())
        assert sum(r["share"] for r in report["stages"]) == pytest.approx(1.0)
        growth = next(
            r for r in report["stages"] if r["stage"] == "subgraph_growth"
        )
        assert growth["p50_ms"] == pytest.approx(4.0)
        assert growth["p95_ms"] == pytest.approx(9.0)

    def test_throughput_pulls_counters_gauges_and_modes(self):
        t = build_report(metrics=_metrics())["throughput"]
        assert t["pairs_extracted"] == 84.0
        assert t["workers"] == 2.0
        assert t["entry_modes"] == {"temporal": 84}
        assert t["backend"] == "csr"  # span.csr.build present
        assert t["pairs_per_second_p50"] == pytest.approx(120.0)

    def test_backend_inferred_dict_without_csr_build(self):
        metrics = _metrics()
        del metrics["histograms"]["span.csr.build"]
        assert build_report(metrics=metrics)["throughput"]["backend"] == "dict"

    def test_robustness_counters_surface(self):
        r = build_report(metrics=_metrics())["robustness"]
        assert r["robust.retries"] == 2.0
        assert r["obs.worker_payloads"] == 9.0
        assert r["robust.shm_degradations"] == 0.0

    def test_sections_only_for_supplied_artefacts(self):
        assert build_report()["sections"] == []
        assert build_report(bench=_bench())["sections"] == ["bench"]

    def test_none_metric_values_from_nan_scrub_do_not_crash(self):
        metrics = _metrics()
        metrics["histograms"]["span.subgraph_growth"]["p50"] = None
        report = build_report(metrics=metrics)
        growth = next(
            r for r in report["stages"] if r["stage"] == "subgraph_growth"
        )
        assert growth["p50_ms"] == 0.0


class TestCheckpointSummary:
    def _run_dir(self, tmp_path):
        root = tmp_path / "run"
        (root / "co-author").mkdir(parents=True)
        (root / "manifest.json").write_text(json.dumps({"k": 10, "seed": 0}))
        (root / "co-author" / "method_SSFNM.json").write_text(
            json.dumps(
                {"dataset": "co-author", "method": "SSFNM", "auc": 0.91, "f1": 0.8}
            )
        )
        (root / "co-author" / "features_ssf.npz").write_bytes(b"notreally")
        return root

    def test_summary_lists_manifest_cells_and_features(self, tmp_path):
        summary = checkpoint_summary(self._run_dir(tmp_path))
        assert summary["manifest"] == {"k": 10, "seed": 0}
        assert summary["completed_cells"] == [
            {"dataset": "co-author", "method": "SSFNM", "auc": 0.91, "f1": 0.8}
        ]
        assert summary["feature_files"] == 1

    def test_missing_or_corrupt_pieces_are_tolerated(self, tmp_path):
        root = self._run_dir(tmp_path)
        (root / "manifest.json").write_text("{broken")
        (root / "co-author" / "method_bad.json").write_text("also broken")
        summary = checkpoint_summary(root)
        assert summary["manifest"] is None
        assert len(summary["completed_cells"]) == 1

    def test_empty_directory_is_an_empty_summary(self, tmp_path):
        summary = checkpoint_summary(tmp_path)
        assert summary["completed_cells"] == []
        assert summary["manifest"] is None


class TestMarkdownRendering:
    def test_full_report_renders_every_section(self, tmp_path):
        history = tmp_path / "hist.jsonl"
        append_history(history, _bench(), recorded_at=1.0)
        from repro.obs.bench import load_history

        text = format_report(
            build_report(
                metrics=_metrics(),
                checkpoint=checkpoint_summary(tmp_path),
                bench=_bench(),
                history=load_history(history),
            )
        )
        for heading in (
            "# Run report",
            "## Stage breakdown",
            "## Throughput",
            "## Robustness",
            "## Checkpoint",
            "## Benchmark",
        ):
            assert heading in text
        assert "pairs extracted: 84" in text
        assert "~" in text  # reservoir-estimated quantile marker
        assert "history: 1 recorded runs" in text

    def test_empty_report_says_what_to_pass(self):
        text = format_report(build_report())
        assert "No artefacts supplied" in text

    def test_clean_run_robustness_line(self):
        metrics = _metrics()
        metrics["counters"] = {"parallel.pairs_extracted": 10.0}
        text = format_report(build_report(metrics=metrics))
        assert "clean run" in text


class TestRunReportEntryPoint:
    def test_joins_files_and_writes_json(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(_metrics()))
        bench_path = tmp_path / "bench.json"
        bench_path.write_text(json.dumps(_bench()))
        history_path = tmp_path / "hist.jsonl"
        append_history(history_path, _bench(), recorded_at=1.0)
        json_out = tmp_path / "report.json"

        text = run_report(
            metrics_path=str(metrics_path),
            bench_path=str(bench_path),
            history_path=str(history_path),
            json_out=str(json_out),
        )
        assert "## Stage breakdown" in text
        payload = json.loads(json_out.read_text())
        assert set(payload["sections"]) == {
            "stages",
            "throughput",
            "robustness",
            "bench",
        }
        assert payload["bench"]["history"]["records"] == 1

"""Request-scoped trace context: identity model, wire format, rspan."""

import asyncio

import pytest

from repro import obs
from repro.obs.rtrace import (
    TraceContext,
    activate,
    current_context,
    current_wire,
    new_trace,
    rspan,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()
    yield
    obs.disable()
    obs.record_spans(False)
    obs.drain_span_records()


class TestTraceContext:
    def test_new_trace_has_distinct_ids(self):
        ctx = new_trace()
        assert ctx.trace_id != ctx.span_id
        assert ctx.parent_id is None

    def test_ids_are_unique_and_deterministic_format(self):
        a, b = new_trace(), new_trace()
        assert a.trace_id != b.trace_id
        assert a.span_id != b.span_id
        # pid-prefixed hex serial: no RNG involved (R103-safe)
        assert "-" in a.trace_id

    def test_child_keeps_trace_id_and_reparents(self):
        parent = new_trace()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_wire_round_trip(self):
        ctx = new_trace().child()
        assert TraceContext.from_wire(ctx.to_wire()) == ctx

    def test_wire_none_safe(self):
        assert TraceContext.from_wire(None) is None

    def test_frozen(self):
        ctx = new_trace()
        with pytest.raises(AttributeError):
            ctx.trace_id = "x"


class TestActivate:
    def test_activate_sets_and_restores_current(self):
        assert current_context() is None
        ctx = new_trace()
        with activate(ctx):
            assert current_context() == ctx
            assert current_wire() == ctx.to_wire()
        assert current_context() is None
        assert current_wire() is None

    def test_activate_none_is_a_no_op(self):
        with activate(None):
            assert current_context() is None

    def test_context_survives_asyncio_task_switches(self):
        obs.enable()

        async def _task(tag):
            with rspan(f"task.{tag}", root=True) as sp:
                trace_before = sp.trace_id
                await asyncio.sleep(0)  # yield to the other task
                assert current_context().trace_id == trace_before
                return trace_before

        async def _main():
            return await asyncio.gather(_task("a"), _task("b"))

        ids = asyncio.run(_main())
        assert ids[0] != ids[1]


class TestRspan:
    def test_disabled_obs_records_nothing_and_sets_no_context(self):
        with rspan("quiet", root=True) as sp:
            assert sp.trace_id is None
            assert current_context() is None

    def test_root_span_creates_a_trace_and_records_identity(self):
        obs.enable()
        obs.record_spans(True)
        with rspan("serve.request", root=True, user="u1") as sp:
            trace_id = sp.trace_id
            assert trace_id is not None
        (record,) = obs.drain_span_records()
        assert record["trace_id"] == trace_id
        assert record["parent_span_id"] is None
        assert record["tags"]["user"] == "u1"

    def test_nested_rspan_children_chain_parent_ids(self):
        obs.enable()
        obs.record_spans(True)
        with rspan("outer", root=True):
            with rspan("inner"):
                pass
        records = {r["name"]: r for r in obs.drain_span_records()}
        outer, inner = records["outer"], records["inner"]
        assert inner["trace_id"] == outer["trace_id"]
        assert inner["parent_span_id"] == outer["span_id"]

    def test_plain_span_inherits_identity_via_provider(self):
        obs.enable()
        obs.record_spans(True)
        with rspan("request", root=True) as sp:
            with obs.span("leaf"):
                pass
            trace_id = sp.trace_id
        records = {r["name"]: r for r in obs.drain_span_records()}
        leaf = records["leaf"]
        assert leaf["trace_id"] == trace_id
        # the plain span is a leaf: it borrows the active span as parent
        assert leaf["parent_span_id"] == records["request"]["span_id"]

    def test_plain_span_outside_any_trace_is_identity_free(self):
        obs.enable()
        obs.record_spans(True)
        with obs.span("free"):
            pass
        (record,) = obs.drain_span_records()
        assert "trace_id" not in record

    def test_explicit_ctx_overrides_current(self):
        obs.enable()
        obs.record_spans(True)
        other = new_trace()
        with rspan("outer", root=True):
            with rspan("handoff", ctx=other):
                pass
        records = {r["name"]: r for r in obs.drain_span_records()}
        assert records["handoff"]["trace_id"] == other.trace_id
        assert records["handoff"]["parent_span_id"] == other.span_id

    def test_members_recorded_for_batch_fan_in(self):
        obs.enable()
        obs.record_spans(True)
        a, b = new_trace(), new_trace()
        with rspan("batch", ctx=a, members=[a.trace_id, b.trace_id]):
            pass
        (record,) = obs.drain_span_records()
        assert record["trace_id"] == a.trace_id
        assert record["trace_ids"] == [a.trace_id, b.trace_id]

    def test_annotate_adds_tags(self):
        obs.enable()
        obs.record_spans(True)
        with rspan("r", root=True) as sp:
            sp.annotate(hits=3)
        (record,) = obs.drain_span_records()
        assert record["tags"]["hits"] == 3

    def test_wire_hand_off_reparents_worker_side(self):
        obs.enable()
        obs.record_spans(True)
        with rspan("request", root=True) as sp:
            wire = current_wire()
            request_trace = sp.trace_id
        # simulate the worker: re-activate from the wire tuple
        with activate(TraceContext.from_wire(wire)):
            with rspan("worker_chunk"):
                pass
        records = {r["name"]: r for r in obs.drain_span_records()}
        worker = records["worker_chunk"]
        assert worker["trace_id"] == request_trace
        assert worker["parent_span_id"] == records["request"]["span_id"]

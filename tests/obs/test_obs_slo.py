"""SLO engine: objective grammar, burn-rate paging, gauges, exemplars."""

import logging

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BURN_WINDOWS,
    Objective,
    SLOEngine,
    configure_slo,
    get_slo_engine,
    slo_observe,
)


@pytest.fixture(autouse=True)
def _clean_state():
    # caplog captures at the root logger; if an earlier test configured
    # the repro logger (propagate=False + own handler), alert records
    # would never reach it — force propagation for the test's duration
    root = logging.getLogger("repro")
    saved_propagate = root.propagate
    root.propagate = True
    obs.disable()
    obs.get_registry().reset()
    configure_slo(None)
    yield
    obs.disable()
    obs.get_registry().reset()
    configure_slo(None)
    root.propagate = saved_propagate


class FakeClock:
    def __init__(self, start=1000.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestObjective:
    def test_latency_parse(self):
        obj = Objective.parse("serve.request p99 < 250ms over 5m")
        assert obj.metric == "serve.request"
        assert obj.kind == "latency"
        assert obj.target == pytest.approx(0.99)
        assert obj.threshold_seconds == pytest.approx(0.25)
        assert obj.window_seconds == pytest.approx(300.0)

    def test_availability_parse(self):
        obj = Objective.parse("serve.request availability 99.9% over 1h")
        assert obj.kind == "availability"
        assert obj.target == pytest.approx(0.999)
        assert obj.window_seconds == pytest.approx(3600.0)

    @pytest.mark.parametrize(
        "spec",
        [
            "serve.request p99 < 250ms over 5m",
            "serve.request availability 99.9% over 1h",
            "extract.batch p95 < 2s over 30m",
        ],
    )
    def test_format_round_trips(self, spec):
        obj = Objective.parse(spec)
        assert Objective.parse(obj.format()) == obj

    @pytest.mark.parametrize(
        "spec",
        [
            "garbage",
            "serve.request p0 < 250ms over 5m",  # percentile out of range
            "serve.request p99 < 250parsecs over 5m",  # bad unit
            "serve.request availability 150% over 1h",  # target out of range
        ],
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            Objective.parse(spec)

    def test_is_bad_latency(self):
        obj = Objective.parse("m p99 < 250ms over 5m")
        assert not obj.is_bad(0.1, True)
        assert obj.is_bad(0.3, True)  # slower than threshold
        assert obj.is_bad(0.1, False)  # errors always spend budget

    def test_is_bad_availability(self):
        obj = Objective.parse("m availability 99% over 5m")
        assert not obj.is_bad(10.0, True)  # value irrelevant
        assert obj.is_bad(0.0, False)


class TestSLOEngine:
    def test_requires_an_objective(self):
        with pytest.raises(ValueError, match="at least one"):
            SLOEngine([])

    def test_healthy_stream_never_pages(self):
        clock = FakeClock()
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"], clock=clock, check_interval=0.0
        )
        for _ in range(200):
            engine.observe("serve.request", 0.01)
            clock.advance(1.0)
        assert engine.alerts_fired == []
        (status,) = engine.evaluate()
        assert status["bad_events"] == 0
        assert status["burn_rate"] == 0.0
        assert status["budget_remaining"] == 1.0

    def test_scripted_slow_stream_fires_fast_burn_exactly_once(self):
        clock = FakeClock()
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"], clock=clock, check_interval=0.0
        )
        # every request breaches the threshold: burn = 1.0 / 0.01 = 100x
        # in BOTH the 5m and 1h windows -> fast page; sustained breach
        # must stay latched and page exactly once.
        for _ in range(600):
            engine.observe("serve.request", 0.5, trace_id="tr-slow")
            clock.advance(1.0)
        fast = [a for a in engine.alerts_fired if a["kind"] == "slo_fast_burn"]
        assert len(fast) == 1
        assert fast[0]["short_burn_rate"] >= fast[0]["threshold"]
        assert fast[0]["long_burn_rate"] >= fast[0]["threshold"]

    def test_alert_rearms_after_recovery(self):
        clock = FakeClock()
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"], clock=clock, check_interval=0.0
        )
        for _ in range(60):
            engine.observe("serve.request", 0.5)
            clock.advance(1.0)
        assert len(engine.alerts_fired) >= 1
        before = len(engine.alerts_fired)
        # a long healthy stretch ages the bad samples out of every window
        clock.advance(22000.0)
        for _ in range(120):
            engine.observe("serve.request", 0.01)
            clock.advance(1.0)
        assert len(engine.alerts_fired) == before  # re-armed, not re-fired
        for _ in range(60):
            engine.observe("serve.request", 0.5)
            clock.advance(1.0)
        assert len(engine.alerts_fired) > before  # second incident pages again

    def test_fast_page_goes_through_the_alert_channel(self, caplog):
        obs.enable()
        clock = FakeClock()
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"], clock=clock, check_interval=0.0
        )
        with caplog.at_level(logging.WARNING, logger="repro.obs.alert"):
            for _ in range(60):
                engine.observe("serve.request", 0.5)
                clock.advance(1.0)
        burn_warnings = [
            r for r in caplog.records if "slo_fast_burn" in r.getMessage()
        ]
        assert len(burn_warnings) == 1

    def test_availability_objective_counts_failures(self):
        clock = FakeClock()
        engine = SLOEngine(
            ["serve.request availability 99% over 5m"],
            clock=clock,
            check_interval=0.0,
        )
        for index in range(100):
            engine.observe("serve.request", 0.01, ok=index % 2 == 0)
            clock.advance(1.0)
        (status,) = engine.evaluate()
        assert status["bad_events"] == 50
        assert status["burn_rate"] == pytest.approx(50.0, rel=0.1)

    def test_publish_sets_repro_slo_gauges(self):
        clock = FakeClock()
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"], clock=clock, check_interval=0.0
        )
        registry = MetricsRegistry()
        engine.observe("serve.request", 0.5)
        engine.publish(registry)
        snapshot = registry.snapshot()
        gauges = snapshot["gauges"]
        assert gauges["slo.serve.request.latency.burn_rate"] > 0.0
        assert gauges["slo.serve.request.latency.events"] == 1.0
        assert "slo.serve.request.latency.budget_remaining" in gauges

    def test_exemplars_expose_slowest_trace(self):
        clock = FakeClock()
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"], clock=clock, check_interval=0.0
        )
        engine.observe("serve.request", 0.1, trace_id="tr-a")
        engine.observe("serve.request", 0.9, trace_id="tr-worst")
        engine.observe("serve.request", 0.2, trace_id="tr-b")
        exemplars = engine.exemplars()
        trace_id, value, _ts = exemplars["serve.request_seconds"]
        assert trace_id == "tr-worst"
        assert value == pytest.approx(0.9)

    def test_exemplars_skip_traceless_metrics(self):
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"],
            clock=FakeClock(),
            check_interval=0.0,
        )
        engine.observe("serve.request", 0.9)
        assert engine.exemplars() == {}

    def test_status_dict_shape(self):
        engine = SLOEngine(
            ["serve.request p99 < 250ms over 5m"],
            clock=FakeClock(),
            check_interval=0.0,
        )
        engine.observe("serve.request", 0.01)
        status = engine.status_dict()
        assert len(status["objectives"]) == 1
        assert status["alerts_fired"] == []
        assert [w["speed"] for w in status["burn_windows"]] == [
            speed for speed, *_ in BURN_WINDOWS
        ]


class TestModuleHook:
    def test_slo_observe_without_engine_is_a_no_op(self):
        slo_observe("serve.request", 0.5)  # must not raise
        assert get_slo_engine() is None

    def test_configure_install_and_remove(self):
        engine = configure_slo(
            ["serve.request p99 < 250ms over 5m"],
            clock=FakeClock(),
            check_interval=0.0,
        )
        assert get_slo_engine() is engine
        slo_observe("serve.request", 0.4, trace_id="tr-1")
        assert engine.exemplars()["serve.request_seconds"][0] == "tr-1"
        # the installed engine feeds the live exemplar provider
        from repro.obs.live import current_exemplars

        assert current_exemplars() == engine.exemplars()
        configure_slo(None)
        assert get_slo_engine() is None
        assert current_exemplars() is None

"""Tests for softmax and cross-entropy."""

import numpy as np
import pytest

from repro.models.losses import SoftmaxCrossEntropy, softmax


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(np.random.default_rng(0).normal(size=(5, 3)))
        assert np.allclose(out.sum(axis=1), 1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(softmax(logits), softmax(logits + 100.0))

    def test_large_values_stable(self):
        out = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(out).all()
        assert out[0, 0] == pytest.approx(1.0)


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        labels = np.array([0, 1])
        assert loss.forward(logits, labels) < 1e-6

    def test_uniform_prediction(self):
        loss = SoftmaxCrossEntropy()
        value = loss.forward(np.zeros((4, 2)), np.array([0, 1, 0, 1]))
        assert value == pytest.approx(np.log(2))

    def test_gradient_form(self):
        loss = SoftmaxCrossEntropy()
        logits = np.array([[0.0, 0.0]])
        loss.forward(logits, np.array([1]))
        grad = loss.backward()
        assert np.allclose(grad, [[0.5, -0.5]])

    def test_gradient_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(5, 3))
        labels = rng.integers(0, 3, size=5)
        loss = SoftmaxCrossEntropy()
        loss.forward(logits, labels)
        grad = loss.backward()
        eps = 1e-6
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                logits[i, j] += eps
                plus = SoftmaxCrossEntropy().forward(logits, labels)
                logits[i, j] -= 2 * eps
                minus = SoftmaxCrossEntropy().forward(logits, labels)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx(
                    (plus - minus) / (2 * eps), abs=1e-5
                )

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            SoftmaxCrossEntropy().backward()

    def test_shape_validation(self):
        loss = SoftmaxCrossEntropy()
        with pytest.raises(ValueError):
            loss.forward(np.zeros((3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3), np.array([0, 1, 0]))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            SoftmaxCrossEntropy().forward(np.zeros((0, 2)), np.zeros(0, dtype=int))

"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.models.optim import SGD, Adam


def _quadratic_problem():
    """Minimise ||p - target||^2 by writing the gradient in place."""
    param = np.array([5.0, -3.0])
    grad = np.zeros_like(param)
    target = np.array([1.0, 2.0])

    def refresh_gradient():
        grad[...] = 2 * (param - target)

    return param, grad, target, refresh_gradient


class TestSGD:
    def test_converges(self):
        param, grad, target, refresh = _quadratic_problem()
        opt = SGD([param], [grad], lr=0.1)
        for _ in range(200):
            refresh()
            opt.step()
        assert np.allclose(param, target, atol=1e-4)

    def test_momentum_converges(self):
        param, grad, target, refresh = _quadratic_problem()
        opt = SGD([param], [grad], lr=0.05, momentum=0.9)
        for _ in range(300):
            refresh()
            opt.step()
        assert np.allclose(param, target, atol=1e-3)

    def test_single_step_value(self):
        param = np.array([1.0])
        grad = np.array([2.0])
        SGD([param], [grad], lr=0.5).step()
        assert param[0] == pytest.approx(0.0)

    @pytest.mark.parametrize("kwargs", [{"lr": 0}, {"momentum": 1.0}, {"momentum": -0.1}])
    def test_validation(self, kwargs):
        param, grad = np.zeros(1), np.zeros(1)
        with pytest.raises(ValueError):
            SGD([param], [grad], **kwargs)


class TestAdam:
    def test_converges(self):
        param, grad, target, refresh = _quadratic_problem()
        opt = Adam([param], [grad], lr=0.1)
        for _ in range(500):
            refresh()
            opt.step()
        assert np.allclose(param, target, atol=1e-3)

    def test_first_step_size_is_lr(self):
        """With bias correction the first Adam step has magnitude ~lr."""
        param = np.array([1.0])
        grad = np.array([123.0])
        Adam([param], [grad], lr=0.01).step()
        assert param[0] == pytest.approx(1.0 - 0.01, abs=1e-6)

    def test_validation(self):
        param, grad = np.zeros(1), np.zeros(1)
        with pytest.raises(ValueError):
            Adam([param], [grad], lr=-1)
        with pytest.raises(ValueError):
            Adam([param], [grad], beta1=1.0)


class TestOptimizerBase:
    def test_misaligned_rejected(self):
        with pytest.raises(ValueError):
            SGD([np.zeros(2)], [])
        with pytest.raises(ValueError):
            SGD([np.zeros(2)], [np.zeros(3)])

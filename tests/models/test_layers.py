"""Tests for the neural-network layers, including finite-difference checks."""

import numpy as np
import pytest

from repro.models.layers import Dense, ReLU, Sequential
from repro.models.losses import SoftmaxCrossEntropy


def _numeric_gradient(fn, array, eps=1e-6):
    grad = np.zeros_like(array)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn()
        flat[i] = original - eps
        minus = fn()
        flat[i] = original
        gflat[i] = (plus - minus) / (2 * eps)
    return grad


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, seed=0)
        out = layer.forward(np.ones((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_values(self):
        layer = Dense(2, 2, seed=0)
        layer.weight[...] = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer.bias[...] = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert np.allclose(out, [[4.5, 5.5]])

    def test_bad_input_shape(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.ones((5, 7)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2).backward(np.ones((1, 2)))

    def test_weight_gradient_finite_difference(self):
        rng = np.random.default_rng(0)
        layer = Dense(3, 2, seed=1)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        layer.backward(out - target)
        numeric = _numeric_gradient(loss, layer.weight)
        assert np.allclose(layer.grad_weight, numeric, atol=1e-5)

    def test_bias_gradient_finite_difference(self):
        rng = np.random.default_rng(1)
        layer = Dense(3, 2, seed=1)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * float(((layer.forward(x) - target) ** 2).sum())

        out = layer.forward(x)
        layer.backward(out - target)
        numeric = _numeric_gradient(loss, layer.bias)
        assert np.allclose(layer.grad_bias, numeric, atol=1e-5)

    def test_input_gradient(self):
        layer = Dense(3, 2, seed=2)
        x = np.random.default_rng(2).normal(size=(4, 3))
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert np.allclose(grad_in, np.ones_like(out) @ layer.weight.T)

    def test_dimension_validation(self):
        with pytest.raises(ValueError):
            Dense(0, 2)


class TestReLU:
    def test_forward(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.allclose(out, [[0.0, 0.0, 2.0]])

    def test_backward_masks(self):
        relu = ReLU()
        relu.forward(np.array([[-1.0, 0.5]]))
        grad = relu.backward(np.array([[3.0, 3.0]]))
        assert np.allclose(grad, [[0.0, 3.0]])

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 2)))


class TestSequential:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_parameters_collected(self):
        net = Sequential([Dense(4, 3, seed=0), ReLU(), Dense(3, 2, seed=1)])
        assert len(net.parameters) == 4  # 2 weights + 2 biases
        assert len(net.gradients) == 4

    def test_end_to_end_gradient(self):
        """Full-network gradient check through softmax cross-entropy."""
        rng = np.random.default_rng(3)
        net = Sequential([Dense(4, 5, seed=0), ReLU(), Dense(5, 2, seed=1)])
        loss = SoftmaxCrossEntropy()
        x = rng.normal(size=(6, 4))
        y = rng.integers(0, 2, size=6)

        def value():
            return loss.forward(net.forward(x), y)

        value()
        net.backward(loss.backward())
        for param, grad in zip(net.parameters, net.gradients):
            numeric = _numeric_gradient(value, param)
            assert np.allclose(grad, numeric, atol=1e-5)

"""Tests for the linear-regression classifier."""

import numpy as np
import pytest

from repro.models.linear import LinearRegressionModel


class TestFit:
    def test_exact_fit_1d(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        model = LinearRegressionModel(ridge=0.0).fit(x, y)
        assert model.decision_scores(np.array([[0.5]]))[0] == pytest.approx(0.5)

    def test_recovers_linear_function(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        true_w = np.array([1.0, -2.0, 0.5])
        y = x @ true_w + 0.3
        model = LinearRegressionModel(ridge=0.0).fit(x, y)
        assert np.allclose(model.weights, true_w, atol=1e-8)
        assert model.bias == pytest.approx(0.3)

    def test_ridge_shrinks(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(50, 3))
        y = (x[:, 0] > 0).astype(float)
        free = LinearRegressionModel(ridge=0.0).fit(x, y)
        shrunk = LinearRegressionModel(ridge=100.0).fit(x, y)
        assert np.linalg.norm(shrunk.weights) < np.linalg.norm(free.weights)

    def test_collinear_features_survive(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(40, 1))
        x = np.hstack([base, base, base])  # rank 1
        y = (base[:, 0] > 0).astype(float)
        model = LinearRegressionModel().fit(x, y)
        assert np.isfinite(model.decision_scores(x)).all()

    def test_classification(self):
        x = np.array([[0.0], [0.1], [0.9], [1.0]])
        y = np.array([0, 0, 1, 1])
        model = LinearRegressionModel().fit(x, y)
        assert np.array_equal(model.predict(x), y)


class TestValidation:
    def test_negative_ridge(self):
        with pytest.raises(ValueError):
            LinearRegressionModel(ridge=-1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearRegressionModel().decision_scores(np.zeros((1, 2)))

    def test_shape_mismatch(self):
        model = LinearRegressionModel().fit(np.zeros((3, 2)), np.zeros(3))
        with pytest.raises(ValueError):
            model.decision_scores(np.zeros((2, 5)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit(np.zeros((0, 2)), np.zeros(0))

    def test_labels_alignment(self):
        with pytest.raises(ValueError):
            LinearRegressionModel().fit(np.zeros((3, 2)), np.zeros(4))

    def test_proba_clipped(self):
        x = np.array([[0.0], [10.0]])
        y = np.array([0, 1])
        model = LinearRegressionModel().fit(x, y)
        p = model.predict_proba(np.array([[-100.0], [100.0]]))
        assert p[0] == 0.0 and p[1] == 1.0

"""Tests for threshold calibration of unsupervised scorers."""

import numpy as np
import pytest

from repro.baselines.local import CommonNeighbors
from repro.graph.temporal import DynamicNetwork
from repro.models.ranking import ThresholdClassifier, best_f1_threshold


class TestBestF1Threshold:
    def test_perfectly_separable(self):
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([0, 0, 1, 1])
        threshold = best_f1_threshold(scores, labels)
        assert 0.2 < threshold < 0.8
        assert np.array_equal((scores >= threshold).astype(int), labels)

    def test_all_positive_labels(self):
        scores = np.array([0.3, 0.6])
        labels = np.array([1, 1])
        threshold = best_f1_threshold(scores, labels)
        assert ((scores >= threshold) == 1).all()

    def test_constant_scores(self):
        scores = np.zeros(4)
        labels = np.array([0, 1, 0, 1])
        threshold = best_f1_threshold(scores, labels)
        # classifying everything positive gives F1=2/3 > 0
        assert (scores >= threshold).all()

    def test_noisy_case_reasonable(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=200)
        scores = labels + rng.normal(scale=0.4, size=200)
        threshold = best_f1_threshold(scores, labels)
        predicted = (scores >= threshold).astype(int)
        assert (predicted == labels).mean() > 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            best_f1_threshold(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            best_f1_threshold(np.zeros(0), np.zeros(0))


class TestThresholdClassifier:
    @pytest.fixture
    def network(self):
        # u,v share two neighbours; p,q share none
        return DynamicNetwork(
            [
                ("u", "z1", 1),
                ("v", "z1", 2),
                ("u", "z2", 3),
                ("v", "z2", 4),
                ("p", "x", 5),
                ("q", "y", 6),
            ]
        )

    def test_fit_predict(self, network):
        clf = ThresholdClassifier(CommonNeighbors())
        train_pairs = [("u", "v"), ("p", "q")]
        clf.fit(network, train_pairs, np.array([1, 0]))
        assert clf.threshold is not None
        assert np.array_equal(clf.predict(train_pairs), [1, 0])

    def test_decision_scores_are_raw(self, network):
        clf = ThresholdClassifier(CommonNeighbors())
        clf.fit(network, [("u", "v"), ("p", "q")], np.array([1, 0]))
        assert np.allclose(clf.decision_scores([("u", "v")]), [2.0])

    def test_predict_before_fit(self, network):
        with pytest.raises(RuntimeError):
            ThresholdClassifier(CommonNeighbors()).predict([("u", "v")])

    def test_name_delegates(self):
        assert ThresholdClassifier(CommonNeighbors()).name == "CN"

"""Tests for model serialisation."""

import numpy as np
import pytest

from repro.models import LinearRegressionModel, NeuralMachine, load_model, save_model


def _data(seed=0, n=80, dim=5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim))
    y = (x[:, 0] > 0).astype(np.int64)
    return x, y


class TestLinearRoundTrip:
    def test_predictions_identical(self, tmp_path):
        x, y = _data()
        model = LinearRegressionModel(ridge=0.01).fit(x, y)
        path = tmp_path / "linear.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert isinstance(loaded, LinearRegressionModel)
        assert loaded.ridge == model.ridge
        assert np.allclose(loaded.decision_scores(x), model.decision_scores(x))

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(LinearRegressionModel(), tmp_path / "x.npz")


class TestNeuralRoundTrip:
    def test_predictions_identical(self, tmp_path):
        x, y = _data()
        model = NeuralMachine(input_dim=5, epochs=15, seed=0).fit(x, y)
        path = tmp_path / "neural.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert isinstance(loaded, NeuralMachine)
        assert loaded.hidden == model.hidden
        assert np.allclose(loaded.predict_proba(x), model.predict_proba(x))

    def test_hyperparameters_restored(self, tmp_path):
        x, y = _data()
        model = NeuralMachine(
            input_dim=5,
            hidden=(8, 4),
            epochs=10,
            batch_size=7,
            weight_decay=0.002,
            seed=0,
        ).fit(x, y)
        path = tmp_path / "neural.npz"
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.hidden == (8, 4)
        assert loaded.batch_size == 7
        assert loaded.weight_decay == 0.002

    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(RuntimeError):
            save_model(NeuralMachine(input_dim=3), tmp_path / "x.npz")


class TestValidation:
    def test_unsupported_type(self, tmp_path):
        with pytest.raises(TypeError):
            save_model(object(), tmp_path / "x.npz")

    def test_garbage_meta_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        np.savez(path, meta=json.dumps({"format": 99, "kind": "linear"}))
        with pytest.raises(ValueError):
            load_model(path)

    def test_unknown_kind_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.npz"
        np.savez(path, meta=json.dumps({"format": 1, "kind": "quantum"}))
        with pytest.raises(ValueError):
            load_model(path)

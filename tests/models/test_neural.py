"""Tests for the NeuralMachine classifier."""

import numpy as np
import pytest

from repro.models.neural import NeuralMachine


def _separable_data(n=120, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, dim))
    y = (x[:, 0] + x[:, 1] > 0).astype(np.int64)
    return x, y


class TestFit:
    def test_learns_linear_boundary(self):
        x, y = _separable_data()
        nm = NeuralMachine(input_dim=6, epochs=60, seed=0).fit(x, y)
        assert (nm.predict(x) == y).mean() > 0.9

    def test_learns_xor(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
        nm = NeuralMachine(
            input_dim=2, epochs=150, seed=0, validation_fraction=0.0
        ).fit(x, y)
        assert (nm.predict(x) == y).mean() > 0.9

    def test_loss_decreases(self):
        x, y = _separable_data()
        nm = NeuralMachine(
            input_dim=6, epochs=30, seed=0, validation_fraction=0.0
        ).fit(x, y)
        assert nm.loss_history[-1] < nm.loss_history[0]

    def test_early_stopping_truncates(self):
        x, y = _separable_data(n=200)
        nm = NeuralMachine(input_dim=6, epochs=400, patience=5, seed=0).fit(x, y)
        assert len(nm.loss_history) < 400

    def test_deterministic_given_seed(self):
        x, y = _separable_data()
        p1 = NeuralMachine(input_dim=6, epochs=10, seed=7).fit(x, y).predict_proba(x)
        p2 = NeuralMachine(input_dim=6, epochs=10, seed=7).fit(x, y).predict_proba(x)
        assert np.allclose(p1, p2)

    def test_constant_feature_handled(self):
        x, y = _separable_data()
        x[:, 3] = 5.0  # zero variance column
        nm = NeuralMachine(input_dim=6, epochs=10, seed=0).fit(x, y)
        assert np.isfinite(nm.predict_proba(x)).all()

    def test_sgd_optimizer(self):
        x, y = _separable_data()
        nm = NeuralMachine(
            input_dim=6, epochs=60, optimizer="sgd", learning_rate=0.05, seed=0
        ).fit(x, y)
        assert (nm.predict(x) == y).mean() > 0.8

    def test_paper_architecture_default(self):
        nm = NeuralMachine(input_dim=44)
        assert nm.hidden == (32, 32, 16)
        # 4 Dense layers (3 hidden + softmax head), each weight+bias
        assert len(nm.network.parameters) == 8


class TestPredict:
    def test_proba_in_unit_interval(self):
        x, y = _separable_data()
        nm = NeuralMachine(input_dim=6, epochs=10, seed=0).fit(x, y)
        p = nm.predict_proba(x)
        assert (p >= 0).all() and (p <= 1).all()

    def test_decision_scores_alias(self):
        x, y = _separable_data()
        nm = NeuralMachine(input_dim=6, epochs=10, seed=0).fit(x, y)
        assert np.allclose(nm.decision_scores(x), nm.predict_proba(x))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            NeuralMachine(input_dim=3).predict_proba(np.zeros((1, 3)))

    def test_wrong_width_rejected(self):
        x, y = _separable_data()
        nm = NeuralMachine(input_dim=6, epochs=5, seed=0).fit(x, y)
        with pytest.raises(ValueError):
            nm.predict(np.zeros((2, 7)))


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"input_dim": 0},
            {"hidden": ()},
            {"batch_size": 0},
            {"epochs": 0},
            {"optimizer": "bogus"},
            {"weight_decay": -1.0},
            {"validation_fraction": 1.0},
            {"patience": 0},
        ],
    )
    def test_constructor(self, kwargs):
        defaults = {"input_dim": 4}
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            NeuralMachine(**defaults)

    def test_label_values_checked(self):
        nm = NeuralMachine(input_dim=2)
        with pytest.raises(ValueError):
            nm.fit(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_empty_training_rejected(self):
        nm = NeuralMachine(input_dim=2)
        with pytest.raises(ValueError):
            nm.fit(np.zeros((0, 2)), np.zeros(0))

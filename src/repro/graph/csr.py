"""Read-only CSR snapshot of a :class:`~repro.graph.temporal.DynamicNetwork`.

The dict-of-dict substrate is the right structure for *building* a dynamic
network incrementally, but the SSF hot path (Defs. 3-10, Algorithm 3) only
ever *reads* the observed window.  A :class:`CSRSnapshot` freezes one
window into flat integer-indexed arrays:

* ``indptr``/``indices`` — classic CSR adjacency over int32 node ids, with
  each row's neighbour ids **sorted ascending** so neighbour slices can be
  intersected by ``searchsorted`` and hashed canonically,
* ``ts_indptr``/``ts`` — per-edge-slot timestamp segments (each undirected
  multi-link pair contributes one slot per direction; a slot's timestamps
  are sorted ascending, exactly as the dict substrate stores them),
* an on-demand **influence table** ``exp(-θ·(l_t − l_s))`` aligned with
  ``ts``, computed once per ``(snapshot, present_time, θ)`` and reused by
  every candidate pair (Eq. 2 evaluated |E| times total instead of once
  per pair per structure link).

Bit-parity contract: the influence table is evaluated through
``math.exp`` on the *unique* timestamps (then gathered back), because
``np.exp`` is allowed to differ from the C library ``exp`` in the last
ulp and the CSR backend guarantees bit-identical features against the
dict backend, whose :func:`~repro.core.influence.normalized_influence`
uses ``math.exp``.

The snapshot's array buffers are what makes multiprocess extraction
cheap: under a ``fork`` start method the worker inherits them via
copy-on-write pages that are never written (numpy buffers are not
refcount-touched), and under ``spawn`` the :meth:`CSRSnapshot.to_shared`
/ :meth:`CSRSnapshot.from_shared` pair moves them through one
``multiprocessing.shared_memory`` block instead of pickling the graph.
"""

from __future__ import annotations

import os
import pickle
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.obs import get_logger, incr, observe, span
from repro.robust import faults

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from multiprocessing.shared_memory import SharedMemory

    from repro.graph.temporal import DynamicNetwork

Node = Hashable

_LOG = get_logger("graph.csr")

#: bound on cached ``(present_time, θ)`` influence tables per snapshot.
#: Each distinct key pins a full ``|ts|``-sized float64 array, and a
#: serving loop advances ``present_time`` with the stream — unbounded,
#: the cache leaks one table per request batch.  Override with the
#: ``REPRO_CSR_INFLUENCE_CACHE`` environment variable.
INFLUENCE_TABLE_CACHE_SIZE = 8


def _influence_cache_capacity() -> int:
    raw = os.environ.get("REPRO_CSR_INFLUENCE_CACHE", "")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            _LOG.warning("ignoring non-integer REPRO_CSR_INFLUENCE_CACHE=%r", raw)
    return INFLUENCE_TABLE_CACHE_SIZE


class CSRSnapshot:
    """Immutable CSR view of one observed window of a dynamic network.

    Node labels are mapped to dense int ids in the network's insertion
    order (id 0 is the first node ever added), so label-based tie-breaks
    downstream see exactly the objects the dict backend sees.

    Example:
        >>> from repro.graph.temporal import DynamicNetwork
        >>> g = DynamicNetwork([("a", "b", 1), ("a", "b", 3), ("b", "c", 2)])
        >>> snap = CSRSnapshot.from_dynamic(g)
        >>> snap.number_of_nodes(), snap.number_of_links(), snap.number_of_pairs()
        (3, 3, 2)
        >>> snap.pair_timestamps("a", "b")
        (1.0, 3.0)
    """

    __slots__ = (
        "labels",
        "_id_of",
        "indptr",
        "indices",
        "ts_indptr",
        "ts",
        "_influence_tables",
        "_shm",
    )

    def __init__(
        self,
        labels: "list[Node]",
        indptr: np.ndarray,
        indices: np.ndarray,
        ts_indptr: np.ndarray,
        ts: np.ndarray,
        _shm: "SharedMemory | None" = None,
    ) -> None:
        self.labels = labels
        self._id_of = {label: i for i, label in enumerate(labels)}
        self.indptr = indptr
        self.indices = indices
        self.ts_indptr = ts_indptr
        self.ts = ts
        self._influence_tables: OrderedDict[tuple[float, float], np.ndarray] = (
            OrderedDict()
        )
        # keep the shared-memory block alive for as long as arrays view it
        self._shm = _shm

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dynamic(cls, network: "DynamicNetwork") -> "CSRSnapshot":
        """Freeze a dynamic network into a snapshot (O(|V| + |E|))."""
        with span("csr.build"):
            labels = list(network)
            id_of = {label: i for i, label in enumerate(labels)}
            n = len(labels)

            indptr = np.zeros(n + 1, dtype=np.int64)
            for i, label in enumerate(labels):
                indptr[i + 1] = len(network.neighbor_view(label))
            np.cumsum(indptr, out=indptr)
            nnz = int(indptr[-1])

            indices = np.empty(nnz, dtype=np.int32)
            ts_counts = np.empty(nnz, dtype=np.int64)
            ts_chunks: list[list[float]] = []
            pos = 0
            for label in labels:
                row = network.neighbor_view(label)
                entries = sorted(
                    (id_of[nbr], stamps) for nbr, stamps in row.items()
                )
                for nbr_id, stamps in entries:
                    indices[pos] = nbr_id
                    ts_counts[pos] = len(stamps)
                    ts_chunks.append(stamps)
                    pos += 1
            ts_indptr = np.zeros(nnz + 1, dtype=np.int64)
            np.cumsum(ts_counts, out=ts_indptr[1:])
            ts = (
                np.concatenate([np.asarray(c, dtype=np.float64) for c in ts_chunks])
                if ts_chunks
                else np.zeros(0, dtype=np.float64)
            )
        snapshot = cls(labels, indptr, indices, ts_indptr, ts)
        observe("csr.nodes", n)
        observe("csr.slots", nnz)
        return snapshot

    def to_dynamic(self) -> "DynamicNetwork":
        """Thaw back into a dict-backed network (tests / interop)."""
        from repro.graph.temporal import DynamicNetwork

        out = DynamicNetwork()
        for label in self.labels:
            out.add_node(label)
        for u in range(len(self.labels)):
            for slot in range(int(self.indptr[u]), int(self.indptr[u + 1])):
                v = int(self.indices[slot])
                if v < u:
                    continue  # each undirected pair has a slot per direction
                for t in self.slot_timestamps(slot):
                    out.add_edge(self.labels[u], self.labels[v], t)
        return out

    # ------------------------------------------------------------------
    # id / label mapping
    # ------------------------------------------------------------------
    def node_id(self, label: Node) -> int:
        """Dense int id of ``label`` (raises ``KeyError`` when absent)."""
        try:
            return self._id_of[label]
        except KeyError:
            raise KeyError(f"node {label!r} not in snapshot") from None

    def has_node(self, label: Node) -> bool:
        return label in self._id_of

    def label_of(self, node_id: int) -> Node:
        return self.labels[node_id]

    # ------------------------------------------------------------------
    # basic queries (mirroring DynamicNetwork where it matters)
    # ------------------------------------------------------------------
    def number_of_nodes(self) -> int:
        return len(self.labels)

    def number_of_links(self) -> int:
        """Total links counting multiplicity (each stored twice in ``ts``)."""
        return int(self.ts.size) // 2

    def number_of_pairs(self) -> int:
        return int(self.indices.size) // 2

    def last_timestamp(self) -> float:
        if not self.ts.size:
            raise ValueError("snapshot has no links")
        return float(self.ts.max())

    def first_timestamp(self) -> float:
        if not self.ts.size:
            raise ValueError("snapshot has no links")
        return float(self.ts.min())

    def neighbor_slice(self, node_id: int) -> np.ndarray:
        """Sorted neighbour ids of ``node_id`` (a zero-copy array view)."""
        return self.indices[self.indptr[node_id] : self.indptr[node_id + 1]]

    def slot_timestamps(self, slot: int) -> np.ndarray:
        """Sorted timestamps of one directed edge slot (zero-copy view)."""
        return self.ts[self.ts_indptr[slot] : self.ts_indptr[slot + 1]]

    def edge_slot(self, u_id: int, v_id: int) -> int:
        """Directed slot index of the ``u → v`` entry, or ``-1`` if absent."""
        row = self.neighbor_slice(u_id)
        pos = int(np.searchsorted(row, v_id))
        if pos < row.size and int(row[pos]) == v_id:
            return int(self.indptr[u_id]) + pos
        return -1

    def pair_timestamps(self, u: Node, v: Node) -> tuple[float, ...]:
        """Sorted timestamps between two labels (empty tuple when absent)."""
        if not (self.has_node(u) and self.has_node(v)):
            return ()
        slot = self.edge_slot(self._id_of[u], self._id_of[v])
        if slot < 0:
            return ()
        return tuple(self.slot_timestamps(slot).tolist())

    # ------------------------------------------------------------------
    # influence table (Eq. 2 precomputed per snapshot)
    # ------------------------------------------------------------------
    def influence_table(self, present_time: float, theta: float) -> np.ndarray:
        """Per-``ts``-entry decayed influence ``exp(-θ·(l_t − l_s))``.

        Built once per ``(present_time, theta)`` and cached; raises when
        any stored timestamp lies after ``present_time`` (the dict path's
        :func:`~repro.core.influence.normalized_influence` contract).
        The cache is a small LRU bounded at
        :data:`INFLUENCE_TABLE_CACHE_SIZE` keys (evictions counted by
        ``csr.influence_cache_evictions``) so a serving loop that
        advances ``present_time`` per request cannot leak one full
        table per distinct key.
        """
        from repro.core.influence import influence_array

        key = (float(present_time), float(theta))
        table = self._influence_tables.get(key)
        if table is None:
            with span("csr.influence_table"):
                table = influence_array(self.ts, key[0], key[1])
            self._cache_influence_table(key, table)
        else:
            self._influence_tables.move_to_end(key)
        return table

    def _cache_influence_table(
        self, key: tuple[float, float], table: np.ndarray
    ) -> None:
        """Insert one influence table, evicting least-recently-used keys
        past the cache bound.  Also the seeding hook the delta-ingestion
        layer uses to carry patched tables across materialisations."""
        tables = self._influence_tables
        tables[key] = table
        tables.move_to_end(key)
        capacity = _influence_cache_capacity()
        while len(tables) > capacity:
            tables.popitem(last=False)
            incr("csr.influence_cache_evictions")

    # ------------------------------------------------------------------
    # shared-memory transport (spawn-safe zero-copy worker hand-off)
    # ------------------------------------------------------------------
    def to_shared(self) -> "SharedSnapshotHandle":
        """Export the snapshot arrays into one shared-memory block.

        The caller owns the returned handle and must eventually call
        :meth:`SharedSnapshotHandle.unlink` (after every worker has
        attached and the pool is done).

        Raises:
            OSError: the shared block could not be created (shm
                exhaustion, permissions).  Callers that can fall back to
                a pickled payload should — see
                :func:`repro.core.parallel.parallel_extract_batch`.
        """
        from multiprocessing import shared_memory

        faults.maybe_raise("shm_export")
        label_blob = pickle.dumps(self.labels, protocol=pickle.HIGHEST_PROTOCOL)
        arrays = {
            "indptr": self.indptr,
            "indices": self.indices,
            "ts_indptr": self.ts_indptr,
            "ts": self.ts,
        }
        specs: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        offset = 0
        for name, arr in arrays.items():
            specs[name] = (offset, arr.dtype.str, arr.shape)
            offset += arr.nbytes
        label_offset = offset
        total = max(1, offset + len(label_blob))

        shm = shared_memory.SharedMemory(create=True, size=total)
        try:
            for name, arr in arrays.items():
                off, dtype, shape = specs[name]
                view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=off)
                view[...] = arr
            shm.buf[label_offset : label_offset + len(label_blob)] = label_blob
            _LOG.debug(
                "exported snapshot to shared memory %s (%d bytes)", shm.name, total
            )
            handle = SharedSnapshotHandle(
                shm_name=shm.name,
                specs=specs,
                label_offset=label_offset,
                label_size=len(label_blob),
            )
            handle._shm = shm  # keep the creating process's mapping alive
        except BaseException:
            # The block exists kernel-side the moment create succeeds; a
            # failure before ownership lands on the handle must not
            # orphan it (it would outlive the process under /dev/shm).
            shm.close()
            shm.unlink()
            raise
        return handle

    @classmethod
    def from_shared(cls, handle: "SharedSnapshotHandle") -> "CSRSnapshot":
        """Attach to a snapshot exported by :meth:`to_shared` (zero copy).

        Raises:
            OSError: the block could not be mapped; pool workers report
                this to the parent, which degrades to a pickled payload
                (docs/ROBUSTNESS.md).
        """
        from multiprocessing import shared_memory

        faults.maybe_raise("shm_attach")
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        try:
            arrays = {}
            for name, (off, dtype, shape) in handle.specs.items():
                arrays[name] = np.ndarray(
                    shape, dtype=dtype, buffer=shm.buf, offset=off
                )
            labels = pickle.loads(
                bytes(
                    shm.buf[
                        handle.label_offset : handle.label_offset + handle.label_size
                    ]
                )
            )
        except BaseException:
            # Attach succeeded but reconstruction failed: drop this
            # process's mapping (never unlink — the exporter owns the
            # block and other workers may still attach).
            shm.close()
            raise
        return cls(
            labels,
            arrays["indptr"],
            arrays["indices"],
            arrays["ts_indptr"],
            arrays["ts"],
            _shm=shm,
        )

    # ------------------------------------------------------------------
    # pickling (spawn-path fallback transport)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict[str, object]:
        """Pickle only the canonical arrays.

        The id map is rebuilt on load, the influence cache is dropped
        (recomputed on demand), and a live shared-memory mapping is
        never pickled — the receiving process gets private copies, which
        is exactly what the shm-unavailable fallback wants.
        """
        return {
            "labels": self.labels,
            "indptr": np.asarray(self.indptr),
            "indices": np.asarray(self.indices),
            "ts_indptr": np.asarray(self.ts_indptr),
            "ts": np.asarray(self.ts),
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(  # type: ignore[misc]
            state["labels"],
            state["indptr"],
            state["indices"],
            state["ts_indptr"],
            state["ts"],
        )

    # ------------------------------------------------------------------
    # dunder / debug
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRSnapshot(nodes={self.number_of_nodes()}, "
            f"links={self.number_of_links()}, pairs={self.number_of_pairs()})"
        )


@dataclass
class SharedSnapshotHandle:
    """Names/offsets needed to re-attach a snapshot from shared memory.

    Small and picklable — this is what crosses the process boundary under
    a ``spawn`` start method instead of the graph itself.
    """

    shm_name: str
    specs: dict[str, tuple[int, str, tuple[int, ...]]]
    label_offset: int
    label_size: int
    # The creating process's live mapping — deliberately not a pickled
    # field; attached workers re-open the block by name.
    _shm: "SharedMemory | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> dict[str, object]:
        return {
            "shm_name": self.shm_name,
            "specs": self.specs,
            "label_offset": self.label_offset,
            "label_size": self.label_size,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__dict__.update(state)
        self._shm = None

    def unlink(self) -> None:
        """Release the shared block (call once, from the creating process)."""
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double unlink
                pass
            self._shm = None


def as_snapshot(network: "DynamicNetwork | CSRSnapshot") -> CSRSnapshot:
    """Coerce a network-or-snapshot into a :class:`CSRSnapshot`."""
    if isinstance(network, CSRSnapshot):
        return network
    return CSRSnapshot.from_dynamic(network)


def concatenate_neighbor_slices(
    snapshot: CSRSnapshot, frontier: np.ndarray
) -> np.ndarray:
    """All neighbour ids of ``frontier`` nodes, concatenated (with repeats).

    Vectorised gather used by the array BFS: equivalent to
    ``np.concatenate([snapshot.neighbor_slice(u) for u in frontier])`` but
    without the per-node Python overhead.
    """
    if len(frontier) == 1:
        u = int(frontier[0])
        return snapshot.indices[snapshot.indptr[u] : snapshot.indptr[u + 1]]
    starts = snapshot.indptr[frontier]
    counts = snapshot.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=snapshot.indices.dtype)
    offsets = np.zeros(len(frontier), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(starts - offsets, counts)
    return snapshot.indices[flat]


def concatenate_neighbor_slices_with_slots(
    snapshot: CSRSnapshot, frontier: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Like :func:`concatenate_neighbor_slices`, but also return the
    directed edge-slot index of every gathered entry.

    ``slots[i]`` is the global position of entry ``i`` in ``indices`` —
    i.e. the directed ``u → neighbors[i]`` edge slot whose timestamp
    segment is ``ts[ts_indptr[slots[i]]:ts_indptr[slots[i] + 1]]``.  The
    batched extraction engine uses this to resolve structure-link
    timestamps without re-probing rows with ``searchsorted``.
    """
    if len(frontier) == 1:
        u = int(frontier[0])
        lo, hi = int(snapshot.indptr[u]), int(snapshot.indptr[u + 1])
        return snapshot.indices[lo:hi], np.arange(lo, hi, dtype=np.int64)
    starts = snapshot.indptr[frontier]
    counts = snapshot.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return np.zeros(0, dtype=snapshot.indices.dtype), empty
    offsets = np.zeros(len(frontier), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    flat = np.arange(total, dtype=np.int64)
    flat += np.repeat(starts - offsets, counts)
    return snapshot.indices[flat], flat

"""Content hashing of dynamic networks.

A stable fingerprint over the (node, node, timestamp) multiset lets
experiment manifests record exactly which network produced a result, and
lets caches detect staleness.  The hash is invariant to node insertion
order and edge direction, and sensitive to multiplicities and
timestamps.
"""

from __future__ import annotations

import hashlib
import time

from repro.graph.temporal import DynamicNetwork
from repro.obs import get_logger

_LOG = get_logger("graph.hashing")


def network_fingerprint(network: DynamicNetwork) -> str:
    """A hex SHA-256 over the canonicalised edge multiset.

    Canonical form: every link rendered as ``repr(u)|repr(v)|ts`` with
    the endpoint reprs sorted within the link, the whole list sorted.
    Two networks compare equal under ``==`` iff their fingerprints match
    (up to repr collisions between distinct node objects, which the
    substrate's label conventions avoid).
    """
    started = time.perf_counter()
    lines: list[str] = []
    for u, v, ts in network.edges():
        a, b = sorted((repr(u), repr(v)))
        lines.append(f"{a}|{b}|{ts!r}")
    for node in network.nodes:
        if network.simple_degree(node) == 0:
            lines.append(f"isolated|{node!r}")
    lines.sort()
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    fingerprint = digest.hexdigest()
    _LOG.debug(
        "fingerprinted %d canonical lines in %.1f ms: %s...",
        len(lines),
        1e3 * (time.perf_counter() - started),
        fingerprint[:12],
    )
    return fingerprint

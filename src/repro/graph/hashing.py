"""Content hashing of dynamic networks.

A stable fingerprint over the (node, node, timestamp) multiset lets
experiment manifests record exactly which network produced a result, and
lets caches detect staleness.  The hash is invariant to node insertion
order and edge direction, and sensitive to multiplicities and
timestamps.
"""

from __future__ import annotations

import hashlib
import time
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.graph.temporal import DynamicNetwork
from repro.obs import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.csr import CSRSnapshot

_LOG = get_logger("graph.hashing")


def network_fingerprint(network: DynamicNetwork) -> str:
    """A hex SHA-256 over the canonicalised edge multiset.

    Canonical form: every link rendered as ``repr(u)|repr(v)|ts`` with
    the endpoint reprs sorted within the link, the whole list sorted.
    Two networks compare equal under ``==`` iff their fingerprints match
    (up to repr collisions between distinct node objects, which the
    substrate's label conventions avoid).
    """
    started = time.perf_counter()
    lines: list[str] = []
    for u, v, ts in network.edges():
        a, b = sorted((repr(u), repr(v)))
        lines.append(f"{a}|{b}|{ts!r}")
    for node in network.nodes:
        if network.simple_degree(node) == 0:
            lines.append(f"isolated|{node!r}")
    lines.sort()
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    fingerprint = digest.hexdigest()
    _LOG.debug(
        "fingerprinted %d canonical lines in %.1f ms: %s...",
        len(lines),
        1e3 * (time.perf_counter() - started),
        fingerprint[:12],
    )
    return fingerprint


def subgraph_fingerprint(
    snapshot: "CSRSnapshot", node_ids: "Iterable[int]"
) -> str:
    """Fingerprint of the sub-multigraph a snapshot induces on ``node_ids``.

    Same canonical form as :func:`network_fingerprint` — every kept link
    as ``repr(u)|repr(v)|ts`` (endpoint reprs sorted within the link),
    an ``isolated|repr(node)`` line per kept node with no kept neighbour,
    all lines sorted — so it equals ``network_fingerprint`` of the
    thawed induced subgraph.  The serving feature cache uses it as a
    verification key: a cached entry is provably fresh iff the current
    snapshot induces the same fingerprint on the entry's ball.
    """
    keep = sorted({int(n) for n in node_ids})
    keep_set = set(keep)
    lines: "list[str]" = []
    for u_id in keep:
        connected = False
        row_lo, row_hi = int(snapshot.indptr[u_id]), int(snapshot.indptr[u_id + 1])
        for slot in range(row_lo, row_hi):
            v_id = int(snapshot.indices[slot])
            if v_id not in keep_set:
                continue
            connected = True
            if v_id < u_id:
                continue  # each undirected pair has a slot per direction
            a, b = sorted(
                (repr(snapshot.labels[u_id]), repr(snapshot.labels[v_id]))
            )
            for ts in snapshot.slot_timestamps(slot).tolist():
                lines.append(f"{a}|{b}|{ts!r}")
        if not connected:
            lines.append(f"isolated|{snapshot.labels[u_id]!r}")
    lines.sort()
    digest = hashlib.sha256()
    for line in lines:
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()

"""Dynamic (temporal) multigraph — Definition 1 of the paper.

A :class:`DynamicNetwork` is an undirected multigraph whose links each carry
a timestamp recording when they emerged.  Multiple links may connect the
same node pair (repeat interactions), including multiple links at the same
timestamp.  This is the substrate every other component operates on:
subgraph extraction, structure combination, influence normalisation,
baselines (via the static projection) and dataset generators.

Storage is a dict-of-dict adjacency where ``_adj[u][v]`` holds the sorted
list of timestamps of all ``u — v`` links; the list object is shared between
the two directions so the multigraph stays symmetric by construction.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from typing import Hashable, Iterable, Iterator, NamedTuple

Node = Hashable
Timestamp = float


class TemporalEdge(NamedTuple):
    """One timestamped link ``e_k = (n_i, n_j, l_k)`` (Def. 1)."""

    u: Node
    v: Node
    timestamp: Timestamp


class DynamicNetwork:
    """Undirected multigraph with timestamped links.

    Example:
        >>> g = DynamicNetwork()
        >>> g.add_edge("a", "b", 1)
        >>> g.add_edge("a", "b", 3)
        >>> g.multiplicity("a", "b")
        2
        >>> sorted(g.timestamps("a", "b"))
        [1.0, 3.0]
    """

    def __init__(
        self, edges: "Iterable[tuple[Node, Node, Timestamp]] | None" = None
    ) -> None:
        self._adj: dict[Node, dict[Node, list[Timestamp]]] = {}
        self._num_links = 0
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Ensure ``node`` exists (isolated if it has no links)."""
        self._adj.setdefault(node, {})

    def add_edge(self, u: Node, v: Node, timestamp: Timestamp) -> None:
        """Add one link between ``u`` and ``v`` at ``timestamp``.

        Self-loops are rejected: the paper's networks model interactions
        between distinct entities and the structure-combination algorithm
        assumes loop-free graphs.
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        ts = float(timestamp)
        if not math.isfinite(ts):
            raise ValueError(f"timestamp must be finite, got {timestamp!r}")
        row_u = self._adj.setdefault(u, {})
        self._adj.setdefault(v, {})
        stamps = row_u.get(v)
        if stamps is None:
            stamps = []
            row_u[v] = stamps
            self._adj[v][u] = stamps  # shared list keeps both directions in sync
        insort(stamps, ts)
        self._num_links += 1

    def add_edges_from(self, edges: "Iterable[tuple[Node, Node, Timestamp]]") -> None:
        """Add links from an iterable of ``(u, v, timestamp)`` triples."""
        for u, v, ts in edges:
            self.add_edge(u, v, ts)

    def _install_pair(self, u: Node, v: Node, stamps: list[Timestamp]) -> None:
        """Install an already-sorted timestamp list for a NEW pair.

        Bulk-construction fast path used by :meth:`slice` / :meth:`copy` /
        :meth:`subgraph`: the source lists are already sorted, so copying
        them wholesale replaces the per-link ``insort`` (O(m·k) for a pair
        with k links) with one O(k) list copy.  Node insertion order
        matches :meth:`add_edge` (``u`` before ``v``).
        """
        row_u = self._adj.setdefault(u, {})
        self._adj.setdefault(v, {})
        row_u[v] = stamps
        self._adj[v][u] = stamps  # shared list keeps both directions in sync
        self._num_links += len(stamps)

    def remove_edge(self, u: Node, v: Node, timestamp: "Timestamp | None" = None) -> None:
        """Remove one link between ``u`` and ``v``.

        Args:
            timestamp: remove one link with exactly this timestamp; if
                ``None``, remove the most recent link.

        Raises:
            KeyError: if no matching link exists.
        """
        stamps = self._adj.get(u, {}).get(v)
        if not stamps:
            raise KeyError(f"no link between {u!r} and {v!r}")
        if timestamp is None:
            stamps.pop()
        else:
            try:
                stamps.remove(float(timestamp))
            except ValueError:
                raise KeyError(
                    f"no link between {u!r} and {v!r} at timestamp {timestamp!r}"
                ) from None
        self._num_links -= 1
        if not stamps:
            del self._adj[u][v]
            del self._adj[v][u]

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """True iff at least one link connects ``u`` and ``v``."""
        return v in self._adj.get(u, {})

    @property
    def nodes(self) -> list[Node]:
        """All nodes, in insertion order."""
        return list(self._adj)

    def number_of_nodes(self) -> int:
        return len(self._adj)

    def number_of_links(self) -> int:
        """Total number of links, counting multiplicity (``|E|`` in Table II)."""
        return self._num_links

    def number_of_pairs(self) -> int:
        """Number of distinct connected node pairs (simple-graph edge count)."""
        return sum(len(row) for row in self._adj.values()) // 2

    def neighbors(self, node: Node) -> set[Node]:
        """The open neighbourhood ``Γ(node)`` as a set."""
        try:
            return set(self._adj[node])
        except KeyError:
            raise KeyError(f"node {node!r} not in network") from None

    def neighbor_view(self, node: Node) -> "dict[Node, list[Timestamp]]":
        """Read-only view of ``node``'s adjacency row (do not mutate)."""
        try:
            return self._adj[node]
        except KeyError:
            raise KeyError(f"node {node!r} not in network") from None

    def degree(self, node: Node) -> int:
        """Multigraph degree: number of link endpoints at ``node``."""
        return sum(len(stamps) for stamps in self.neighbor_view(node).values())

    def simple_degree(self, node: Node) -> int:
        """Number of distinct neighbours of ``node``."""
        return len(self.neighbor_view(node))

    def multiplicity(self, u: Node, v: Node) -> int:
        """Number of links between ``u`` and ``v`` (0 if none)."""
        return len(self._adj.get(u, {}).get(v, ()))

    def timestamps(self, u: Node, v: Node) -> tuple[Timestamp, ...]:
        """Sorted timestamps of all links between ``u`` and ``v``."""
        return tuple(self._adj.get(u, {}).get(v, ()))

    def edges(self) -> Iterator[TemporalEdge]:
        """Iterate all links once (each undirected link reported once)."""
        seen: set[tuple[Node, Node]] = set()
        for u, row in self._adj.items():
            for v, stamps in row.items():
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                for ts in stamps:
                    yield TemporalEdge(u, v, ts)

    def pair_iter(self) -> Iterator[tuple[Node, Node]]:
        """Iterate distinct connected node pairs once."""
        seen: set[tuple[Node, Node]] = set()
        for u, row in self._adj.items():
            for v in row:
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                yield (u, v)

    # ------------------------------------------------------------------
    # temporal queries
    # ------------------------------------------------------------------
    def first_timestamp(self) -> Timestamp:
        """Smallest timestamp in the network (``l_1``)."""
        return min(e.timestamp for e in self.edges())

    def last_timestamp(self) -> Timestamp:
        """Largest timestamp in the network (``l_s``)."""
        return max(e.timestamp for e in self.edges())

    def timestamp_set(self) -> set[Timestamp]:
        """The set ``L`` of distinct timestamps (Def. 1)."""
        out: set[Timestamp] = set()
        for _, _, ts in self.edges():
            out.add(ts)
        return out

    def slice(self, t_start: Timestamp, t_end: Timestamp) -> "DynamicNetwork":
        """The period network ``G_[t_start, t_end)`` (Sec. III).

        Keeps every link whose timestamp lies in the half-open interval
        ``[t_start, t_end)``.  Nodes with no surviving link are dropped,
        matching the paper's stream construction (nodes enter the graph
        together with their first link).
        """
        if t_end <= t_start:
            raise ValueError(
                f"empty period: t_start={t_start!r} must be < t_end={t_end!r}"
            )
        t_lo = float(t_start)
        t_hi = float(t_end)
        out = DynamicNetwork()
        seen: set[tuple[Node, Node]] = set()
        for u, row in self._adj.items():
            for v, stamps in row.items():
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                lo = bisect_left(stamps, t_lo)
                hi = bisect_left(stamps, t_hi)
                if lo < hi:
                    out._install_pair(u, v, stamps[lo:hi])
        return out

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Node]) -> "DynamicNetwork":
        """Induced sub-multigraph on ``nodes`` (all links kept between them)."""
        keep = set(nodes)
        missing = keep - self._adj.keys()
        if missing:
            raise KeyError(f"nodes not in network: {sorted(map(repr, missing))}")
        out = DynamicNetwork()
        # repr-keyed sort: node labels are arbitrary hashables, and the
        # subgraph's insertion order (hence neighbour iteration order)
        # must not depend on the hash seed.
        ordered = sorted(keep, key=repr)
        for node in ordered:
            out.add_node(node)
        # Emit each pair once: skip neighbours already scanned as sources.
        visited: set[Node] = set()
        for u in ordered:
            for v, stamps in self._adj[u].items():
                if v in keep and v not in visited:
                    out._install_pair(u, v, stamps.copy())
            visited.add(u)
        return out

    def static_projection(self) -> "StaticGraph":
        """Simple undirected graph with the same connected node pairs.

        Timestamps and multiplicities are dropped — this is the "static
        version" of the network used by the static baselines (Sec. VI-C2).
        """
        from repro.graph.static import StaticGraph

        g = StaticGraph()
        for node in self._adj:
            g.add_node(node)
        for u, v in self.pair_iter():
            g.add_edge(u, v)
        return g

    def copy(self) -> "DynamicNetwork":
        out = DynamicNetwork()
        for node in self._adj:
            out.add_node(node)
        seen: set[tuple[Node, Node]] = set()
        for u, row in self._adj.items():
            for v, stamps in row.items():
                if (v, u) in seen:
                    continue
                seen.add((u, v))
                out._install_pair(u, v, stamps.copy())
        return out

    # ------------------------------------------------------------------
    # dunder / debug
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicNetwork(nodes={self.number_of_nodes()}, "
            f"links={self.number_of_links()}, pairs={self.number_of_pairs()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DynamicNetwork):
            return NotImplemented
        if self._adj.keys() != other._adj.keys():
            return False
        for u, row in self._adj.items():
            other_row = other._adj[u]
            if row.keys() != other_row.keys():
                return False
            for v, stamps in row.items():
                if stamps != other_row[v]:
                    return False
        return True

    __hash__ = None  # type: ignore[assignment] - mutable container


def average_degree(network: DynamicNetwork) -> float:
    """Average multigraph degree ``2|E| / |V|`` (the Table II statistic)."""
    n = network.number_of_nodes()
    if n == 0:
        return 0.0
    return 2.0 * network.number_of_links() / n


def median_timestamp_gap(stamps: "Iterable[Timestamp]") -> float:
    """Median gap between consecutive distinct timestamps.

    The characteristic inter-stamp spacing of a stream or history:
    robust to a few irregular bursts, and exactly 1.0 on the unit-spaced
    streams the synthetic catalog produces.  Falls back to 1.0 when
    fewer than two distinct stamps exist (no gap to measure) or the
    median gap is non-positive.

    Shared by the streaming predictor's scoring clock
    (:meth:`repro.streaming.prequential.StreamingSSFPredictor.scoring_time`)
    and the recommender's serving ``present_time``
    (:meth:`repro.recommend.LinkRecommender.fit`), so both advance the
    ``exp(-θ·Δt)`` influence clock by one *real* step past the observed
    history instead of a hard-coded ``+1.0``.
    """
    distinct = sorted({float(s) for s in stamps})
    if len(distinct) < 2:
        return 1.0
    gaps = sorted(b - a for a, b in zip(distinct, distinct[1:]))
    mid = len(gaps) // 2
    step = gaps[mid] if len(gaps) % 2 else (gaps[mid - 1] + gaps[mid]) / 2.0
    return step if step > 0.0 else 1.0

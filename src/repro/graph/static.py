"""Simple undirected graph used by the static baselines.

The paper evaluates eight heuristic baselines (CN, Jaccard, PA, AA, RA,
rWRA, Katz, RW) and NMF on the "static version" of each dynamic network:
timestamps are ignored and multi-links collapse to a single edge
(Sec. VI-C2).  :class:`StaticGraph` is that projection, with the dense
linear-algebra exports (adjacency matrix, node indexing) the path-based
baselines need.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

import numpy as np

Node = Hashable


class StaticGraph:
    """Simple undirected graph backed by neighbour sets.

    Example:
        >>> g = StaticGraph()
        >>> g.add_edge(1, 2)
        >>> g.add_edge(2, 3)
        >>> sorted(g.neighbors(2))
        [1, 3]
        >>> g.degree(2)
        2
    """

    def __init__(self, edges: "Iterable[tuple[Node, Node]] | None" = None) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges = 0
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._adj.setdefault(node, set())

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the edge ``u — v`` (idempotent; self-loops rejected)."""
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        row_u = self._adj.setdefault(u, set())
        row_v = self._adj.setdefault(v, set())
        if v not in row_u:
            row_u.add(v)
            row_v.add(u)
            self._num_edges += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        if v not in self._adj.get(u, ()):
            raise KeyError(f"no edge between {u!r} and {v!r}")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return v in self._adj.get(u, ())

    @property
    def nodes(self) -> list[Node]:
        return list(self._adj)

    def number_of_nodes(self) -> int:
        return len(self._adj)

    def number_of_edges(self) -> int:
        return self._num_edges

    def neighbors(self, node: Node) -> set[Node]:
        """The open neighbourhood ``Γ(node)``; a defensive copy."""
        try:
            return set(self._adj[node])
        except KeyError:
            raise KeyError(f"node {node!r} not in graph") from None

    def neighbor_view(self, node: Node) -> frozenset[Node]:
        """Zero-copy read of ``Γ(node)`` (callers must not mutate)."""
        try:
            return self._adj[node]  # type: ignore[return-value]
        except KeyError:
            raise KeyError(f"node {node!r} not in graph") from None

    def degree(self, node: Node) -> int:
        return len(self.neighbor_view(node))

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate each edge exactly once."""
        visited: set[Node] = set()
        for u, row in self._adj.items():
            for v in row:
                if v not in visited:
                    yield (u, v)
            visited.add(u)

    def common_neighbors(self, u: Node, v: Node) -> set[Node]:
        """``Γ(u) ∩ Γ(v)`` — the ingredient of CN/AA/RA/Jaccard."""
        return self.neighbor_view(u) & self.neighbor_view(v)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def bfs_distances(self, source: Node, max_depth: "int | None" = None) -> dict[Node, int]:
        """Hop distances from ``source`` to every reachable node.

        Args:
            max_depth: stop expanding beyond this depth when given.
        """
        if source not in self._adj:
            raise KeyError(f"node {source!r} not in graph")
        dist = {source: 0}
        frontier = [source]
        depth = 0
        while frontier and (max_depth is None or depth < max_depth):
            depth += 1
            nxt: list[Node] = []
            for node in frontier:
                for nb in self._adj[node]:
                    if nb not in dist:
                        dist[nb] = depth
                        nxt.append(nb)
            frontier = nxt
        return dist

    def connected_component(self, source: Node) -> set[Node]:
        """All nodes reachable from ``source`` (including itself)."""
        return set(self.bfs_distances(source))

    # ------------------------------------------------------------------
    # linear-algebra exports
    # ------------------------------------------------------------------
    def node_index(self) -> dict[Node, int]:
        """Stable node → row-index mapping (insertion order)."""
        return {node: i for i, node in enumerate(self._adj)}

    def adjacency_matrix(self, index: "dict[Node, int] | None" = None) -> np.ndarray:
        """Dense symmetric 0/1 adjacency matrix.

        Args:
            index: node → row mapping; defaults to :meth:`node_index`.
        """
        if index is None:
            index = self.node_index()
        n = len(index)
        mat = np.zeros((n, n), dtype=np.float64)
        for u, v in self.edges():
            i, j = index[u], index[v]
            mat[i, j] = 1.0
            mat[j, i] = 1.0
        return mat

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"StaticGraph(nodes={len(self._adj)}, edges={self._num_edges})"

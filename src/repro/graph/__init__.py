"""Graph substrate: temporal multigraphs (Def. 1), static projections, IO."""

from repro.graph.csr import CSRSnapshot, SharedSnapshotHandle
from repro.graph.hashing import network_fingerprint
from repro.graph.static import StaticGraph
from repro.graph.temporal import DynamicNetwork, TemporalEdge

__all__ = [
    "DynamicNetwork",
    "TemporalEdge",
    "StaticGraph",
    "CSRSnapshot",
    "SharedSnapshotHandle",
    "network_fingerprint",
]

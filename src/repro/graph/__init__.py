"""Graph substrate: temporal multigraphs (Def. 1), static projections, IO."""

from repro.graph.hashing import network_fingerprint
from repro.graph.static import StaticGraph
from repro.graph.temporal import DynamicNetwork, TemporalEdge

__all__ = ["DynamicNetwork", "TemporalEdge", "StaticGraph", "network_fingerprint"]

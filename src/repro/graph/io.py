"""Reading and writing timestamped edge lists.

Two formats are supported:

* the plain TSV format ``u v timestamp`` (comments with ``#`` or ``%``),
* the KONECT ``out.*`` format ``u v weight timestamp`` — the format the
  paper's Prosper/Slashdot/Digg datasets ship in.  When the real files are
  available the full evaluation pipeline runs on them unchanged; this repo
  otherwise substitutes calibrated synthetic generators (see DESIGN.md §3).
"""

from __future__ import annotations

import os
from typing import Iterable, Iterator, TextIO

from repro.graph.temporal import DynamicNetwork, TemporalEdge


class EdgeListFormatError(ValueError):
    """Raised when an edge-list line cannot be parsed."""


def _parse_lines(lines: Iterable[str], path: str) -> Iterator[tuple[str, str, float]]:
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(("#", "%")):
            continue
        parts = line.split()
        if len(parts) == 3:
            u, v, ts = parts
        elif len(parts) >= 4:
            # KONECT: "u v weight timestamp"; repeat the edge `weight` times
            # would double count — KONECT dynamic networks use weight=±1 per
            # event, so one event per line is the faithful reading.
            u, v, _, ts = parts[:4]
        else:
            raise EdgeListFormatError(
                f"{path}:{lineno}: expected 'u v ts' or 'u v w ts', got {line!r}"
            )
        try:
            stamp = float(ts)
        except ValueError:
            raise EdgeListFormatError(
                f"{path}:{lineno}: timestamp {ts!r} is not a number"
            ) from None
        yield u, v, stamp


def read_edge_list(
    path: "str | os.PathLike[str]",
    *,
    skip_self_loops: bool = True,
) -> DynamicNetwork:
    """Load a :class:`DynamicNetwork` from a timestamped edge-list file.

    Args:
        path: TSV or KONECT-format file.
        skip_self_loops: drop ``u == v`` lines (present in some raw dumps)
            instead of raising.
    """
    network = DynamicNetwork()
    with open(path, "r", encoding="utf-8") as fh:
        for u, v, ts in _parse_lines(fh, str(path)):
            if u == v:
                if skip_self_loops:
                    continue
                raise EdgeListFormatError(f"self-loop on node {u!r} in {path}")
            network.add_edge(u, v, ts)
    return network


def write_edge_list(network: DynamicNetwork, path: "str | os.PathLike[str]") -> None:
    """Write ``network`` as plain ``u v timestamp`` lines (round-trippable)."""
    with open(path, "w", encoding="utf-8") as fh:
        _write_edges(network.edges(), fh)


def _write_edges(edges: Iterable[TemporalEdge], fh: TextIO) -> None:
    for u, v, ts in edges:
        stamp = int(ts) if float(ts).is_integer() else ts
        fh.write(f"{u}\t{v}\t{stamp}\n")

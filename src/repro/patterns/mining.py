"""Mining frequent K-structure-subgraph patterns (Sec. VI-B / Fig. 6).

Two K-structure subgraphs "follow the same pattern when they have the same
connection relations among structure nodes (multiple links between them
are ignored)".  Structure nodes are canonically ordered by Palette-WL, so
a pattern is simply the set of connected order pairs — a frozenset of
``(m, n)`` with ``m < n`` over orders ``1..K``.

:func:`mine_patterns` samples random links from a dynamic network,
extracts each link's K-structure subgraph, and accumulates per-pattern
frequency plus the Fig. 6 display statistics: the average number of
member-level links each structure link combines (drawn as link
*thickness*) and the average member count of each structure node (node
*size*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable


from repro.core.feature import SSFConfig, SSFExtractor
from repro.core.kstructure import KStructureSubgraph
from repro.graph.temporal import DynamicNetwork
from repro.utils.rng import RngLike, ensure_rng

Node = Hashable
Pattern = frozenset  # of (m, n) order pairs, m < n, 1-based


def canonical_pattern(ks: KStructureSubgraph) -> Pattern:
    """The connection-relation pattern of one ordered K-structure subgraph."""
    selected = ks.number_selected()
    pairs = set()
    for m in range(1, selected + 1):
        for n in range(m + 1, selected + 1):
            if m == 1 and n == 2:
                continue  # the target link is not part of the pattern
            if ks.has_link(m, n):
                pairs.add((m, n))
    return frozenset(pairs)


@dataclass
class PatternStatistics:
    """Accumulated statistics for one pattern across sampled links."""

    pattern: Pattern
    count: int = 0
    #: (m, n) -> total member-level links combined by that structure link
    link_mass: dict = field(default_factory=dict)
    #: order -> total member count of the structure node at that order
    node_mass: dict = field(default_factory=dict)

    def add(self, ks: KStructureSubgraph) -> None:
        """Fold one subgraph following this pattern into the statistics."""
        self.count += 1
        for m, n in self.pattern:
            self.link_mass[(m, n)] = self.link_mass.get((m, n), 0) + ks.link_count(
                m, n
            )
        for order in range(1, ks.number_selected() + 1):
            self.node_mass[order] = self.node_mass.get(order, 0) + len(
                ks.node(order)
            )

    def average_link_multiplicity(self, m: int, n: int) -> float:
        """Average links combined by structure link (m, n) — Fig. 6 thickness."""
        if self.count == 0:
            return 0.0
        return self.link_mass.get((m, n), 0) / self.count

    def average_node_size(self, order: int) -> float:
        """Average member count of the structure node at ``order``."""
        if self.count == 0:
            return 0.0
        return self.node_mass.get(order, 0) / self.count


def mine_patterns(
    network: DynamicNetwork,
    *,
    n_samples: int = 2000,
    k: int = 10,
    seed: RngLike = 0,
) -> dict[Pattern, PatternStatistics]:
    """Sample existing links and count their K-structure-subgraph patterns.

    Mirrors the paper's Fig. 6 protocol: 2000 randomly chosen links,
    K = 10.  Sampling is over distinct connected node pairs, with
    replacement avoided; fewer pairs than ``n_samples`` uses them all.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = ensure_rng(seed)
    pairs = list(network.pair_iter())
    if not pairs:
        raise ValueError("network has no links to sample")
    if len(pairs) > n_samples:
        chosen = rng.choice(len(pairs), size=n_samples, replace=False)
        pairs = [pairs[int(i)] for i in chosen]

    extractor = SSFExtractor(network, SSFConfig(k=k))
    stats: dict[Pattern, PatternStatistics] = {}
    for a, b in pairs:
        ks = extractor.k_structure_subgraph(a, b)
        pattern = canonical_pattern(ks)
        entry = stats.get(pattern)
        if entry is None:
            entry = PatternStatistics(pattern=pattern)
            stats[pattern] = entry
        entry.add(ks)
    return stats


def most_frequent_pattern(
    stats: dict[Pattern, PatternStatistics],
) -> PatternStatistics:
    """The Fig. 6 headline: the pattern with the highest frequency."""
    if not stats:
        raise ValueError("no patterns mined")
    return max(stats.values(), key=lambda s: (s.count, sorted(s.pattern)))

"""Text rendering of mined K-structure-subgraph patterns.

The paper's Fig. 6 is a node-link drawing; in a terminal we render the
same information as an annotated adjacency grid: ``#`` marks connected
order pairs, ``*`` marks the (excluded) target link position, and side
tables report the per-link average multiplicity (Fig. 6 line thickness)
and per-node average member count (node size).
"""

from __future__ import annotations

from repro.patterns.mining import PatternStatistics


def render_pattern(stats: PatternStatistics, k: int) -> str:
    """Render one pattern's grid and statistics as a multi-line string."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    lines: list[str] = []
    lines.append(f"pattern frequency: {stats.count} sampled link(s)")
    header = "    " + " ".join(f"{n:2d}" for n in range(1, k + 1))
    lines.append(header)
    pattern = stats.pattern
    for m in range(1, k + 1):
        row = [f"{m:2d} |"]
        for n in range(1, k + 1):
            if m == n:
                cell = " ."
            elif (m, n) in ((1, 2), (2, 1)):
                cell = " *"
            else:
                key = (m, n) if m < n else (n, m)
                cell = " #" if key in pattern else "  "
            row.append(cell)
        lines.append("".join(row))
    lines.append("")
    lines.append("structure links (order pair: avg combined links):")
    for m, n in sorted(pattern):
        lines.append(
            f"  ({m:2d},{n:2d}): {stats.average_link_multiplicity(m, n):6.2f}"
        )
    lines.append("structure nodes (order: avg member count):")
    for order in range(1, k + 1):
        size = stats.average_node_size(order)
        if size > 0:
            lines.append(f"  {order:2d}: {size:6.2f}")
    return "\n".join(lines)

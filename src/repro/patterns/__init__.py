"""K-structure-subgraph pattern mining and rendering (Fig. 6)."""

from repro.patterns.mining import (
    PatternStatistics,
    canonical_pattern,
    mine_patterns,
    most_frequent_pattern,
)
from repro.patterns.dot import k_structure_to_dot, pattern_to_dot
from repro.patterns.render import render_pattern

__all__ = [
    "canonical_pattern",
    "mine_patterns",
    "most_frequent_pattern",
    "PatternStatistics",
    "render_pattern",
    "k_structure_to_dot",
    "pattern_to_dot",
]

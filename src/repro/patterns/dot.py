"""Graphviz DOT export of K-structure subgraphs and mined patterns.

Produces the node-link drawings of the paper's Figs. 3–6 as ``.dot``
text (renderable with ``dot -Tpng``): the target link dashed red, end
nodes square, structure-node size annotated with member count, structure
link thickness scaled by the average number of combined links (the
Fig. 6 encoding).
"""

from __future__ import annotations

from repro.core.kstructure import KStructureSubgraph
from repro.patterns.mining import PatternStatistics


def k_structure_to_dot(ks: KStructureSubgraph, name: str = "kstructure") -> str:
    """DOT for one concrete K-structure subgraph.

    Node labels show the Palette-WL order and the member set; the
    (absent) target link is drawn dashed.
    """
    lines = [f"graph {name} {{", "  layout=neato;", "  overlap=false;"]
    selected = ks.number_selected()
    for order in range(1, selected + 1):
        members = ",".join(sorted(str(m) for m in ks.node(order).members))
        shape = "box" if order <= 2 else "ellipse"
        lines.append(
            f'  n{order} [label="{order}: {{{members}}}", shape={shape}];'
        )
    lines.append("  n1 -- n2 [style=dashed, color=red, label=\"target\"];")
    for m in range(1, selected + 1):
        for n in range(m + 1, selected + 1):
            if (m, n) == (1, 2) or not ks.has_link(m, n):
                continue
            count = ks.link_count(m, n)
            width = 1.0 + min(4.0, count / 2.0)
            lines.append(
                f'  n{m} -- n{n} [penwidth={width:.1f}, label="{count}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def pattern_to_dot(
    stats: PatternStatistics, k: int, name: str = "pattern"
) -> str:
    """DOT for a mined pattern with Fig. 6's visual encoding.

    Structure-link pen width follows the average combined-link count
    (line thickness in the paper's figure); node size annotation follows
    the average member count.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    lines = [f"graph {name} {{", "  layout=neato;", "  overlap=false;"]
    present = {order for pair in stats.pattern for order in pair} | {1, 2}
    for order in sorted(present):
        size = stats.average_node_size(order)
        shape = "box" if order <= 2 else "ellipse"
        lines.append(
            f'  n{order} [label="{order} (x{size:.1f})", shape={shape}];'
        )
    lines.append("  n1 -- n2 [style=dashed, color=red];")
    for m, n in sorted(stats.pattern):
        thickness = stats.average_link_multiplicity(m, n)
        width = 1.0 + min(4.0, thickness / 2.0)
        lines.append(f"  n{m} -- n{n} [penwidth={width:.1f}];")
    lines.append("}")
    return "\n".join(lines)

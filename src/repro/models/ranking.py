"""Threshold selection for the unsupervised ranking baselines.

Sec. VI-C2: "For unsupervised ranking models, we treat the training set as
prior knowledge to decide the threshold for classifying links based on
their feature value."  :func:`best_f1_threshold` scans every candidate
cut between consecutive distinct training scores and keeps the F1-optimal
one; :class:`ThresholdClassifier` wraps a
:class:`~repro.baselines.base.LinkScorer` with that calibration.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.baselines.base import LinkScorer
from repro.graph.temporal import DynamicNetwork
from repro.metrics.classification import f1_score

Node = Hashable


def best_f1_threshold(scores: np.ndarray, labels: np.ndarray) -> float:
    """The score threshold maximising F1 on a labelled training set.

    Candidates are midpoints between consecutive distinct scores plus the
    two outer extremes (classify-all / classify-none).  Ties favour the
    lowest threshold (recall-friendly, matching the ranking-model reading
    of "select the top links").
    """
    scores = np.asarray(scores, dtype=np.float64)
    labels = np.asarray(labels)
    if scores.shape != labels.shape or scores.ndim != 1:
        raise ValueError("scores and labels must be 1-D and aligned")
    if len(scores) == 0:
        raise ValueError("cannot calibrate a threshold on an empty set")

    distinct = np.unique(scores)
    candidates = [distinct[0] - 1.0]
    candidates.extend((distinct[:-1] + distinct[1:]) / 2.0)
    candidates.append(distinct[-1] + 1.0)

    best_threshold = candidates[0]
    best_f1 = -1.0
    for threshold in candidates:
        predicted = (scores >= threshold).astype(np.int64)
        score = f1_score(labels, predicted)
        if score > best_f1:
            best_f1 = score
            best_threshold = float(threshold)
    return best_threshold


class ThresholdClassifier:
    """An unsupervised scorer calibrated into a binary classifier."""

    def __init__(self, scorer: LinkScorer) -> None:
        self.scorer = scorer
        self.threshold: "float | None" = None

    @property
    def name(self) -> str:
        return self.scorer.name

    def fit(
        self,
        network: DynamicNetwork,
        train_pairs: Sequence[tuple[Node, Node]],
        train_labels: np.ndarray,
    ) -> "ThresholdClassifier":
        """Fit the scorer on the history, calibrate the threshold on train."""
        self.scorer.fit(network)
        scores = self.scorer.score_pairs(train_pairs)
        self.threshold = best_f1_threshold(scores, np.asarray(train_labels))
        return self

    def decision_scores(self, pairs: Sequence[tuple[Node, Node]]) -> np.ndarray:
        """Raw similarity scores (ranking signal for AUC)."""
        return self.scorer.score_pairs(pairs)

    def predict(self, pairs: Sequence[tuple[Node, Node]]) -> np.ndarray:
        if self.threshold is None:
            raise RuntimeError("classifier must be fit before predicting")
        return (self.decision_scores(pairs) >= self.threshold).astype(np.int64)

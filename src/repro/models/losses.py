"""Loss functions (softmax + cross-entropy, fused for stability)."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilised by max subtraction."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Fused softmax + cross-entropy head.

    The fused form gives the well-conditioned gradient
    ``(softmax(logits) - onehot) / batch`` instead of chaining two
    numerically delicate backward passes.
    """

    def __init__(self) -> None:
        self._probs: "np.ndarray | None" = None
        self._labels: "np.ndarray | None" = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of integer ``labels`` under ``logits``."""
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
        if labels.shape != (logits.shape[0],):
            raise ValueError(
                f"labels must have shape ({logits.shape[0]},), got {labels.shape}"
            )
        if labels.size == 0:
            raise ValueError("cannot compute a loss over an empty batch")
        probs = softmax(logits)
        self._probs = probs
        self._labels = labels
        picked = probs[np.arange(len(labels)), labels]
        return float(-np.log(np.maximum(picked, 1e-15)).mean())

    def backward(self) -> np.ndarray:
        """dLoss/dLogits for the most recent :meth:`forward` call."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)

"""The "neural machine" classifier (Sec. VI-C2).

Architecture per the paper: three fully-connected hidden layers of 32, 32
and 16 ReLU units and a softmax output layer; minibatch size 10, learning
rate 1e-3.  Inputs are standardised (zero mean, unit variance, statistics
from the training set) before the first layer, which the paper inherits
from WLNM's preprocessing.

The default epoch budget is lower than the paper's 2000 to keep the full
benchmark harness laptop-runnable; pass ``epochs=2000`` for the faithful
setting.  Training supports Adam (default — far faster to the same loss)
or plain SGD.
"""

from __future__ import annotations

import numpy as np

from repro.models.layers import Dense, ReLU, Sequential
from repro.models.losses import SoftmaxCrossEntropy, softmax
from repro.models.optim import SGD, Adam
from repro.utils.rng import RngLike, ensure_rng


class NeuralMachine:
    """MLP binary classifier with the paper's 32-32-16 architecture.

    Example:
        >>> import numpy as np
        >>> x = np.vstack([np.zeros((30, 4)), np.ones((30, 4))])
        >>> y = np.array([0] * 30 + [1] * 30)
        >>> nm = NeuralMachine(input_dim=4, epochs=50, seed=0).fit(x, y)
        >>> int(nm.predict(np.ones((1, 4)))[0])
        1
    """

    def __init__(
        self,
        input_dim: int,
        hidden: tuple[int, ...] = (32, 32, 16),
        *,
        learning_rate: float = 1e-3,
        batch_size: int = 10,
        epochs: int = 200,
        optimizer: str = "adam",
        weight_decay: float = 1e-3,
        validation_fraction: float = 0.15,
        patience: int = 15,
        seed: RngLike = 0,
    ) -> None:
        if input_dim < 1:
            raise ValueError(f"input_dim must be >= 1, got {input_dim}")
        if not hidden:
            raise ValueError("at least one hidden layer is required")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if optimizer not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {optimizer!r}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        if not 0.0 <= validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in [0, 1), got {validation_fraction}"
            )
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.input_dim = input_dim
        self.hidden = tuple(hidden)
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.epochs = epochs
        self.optimizer_name = optimizer
        self.weight_decay = weight_decay
        self.validation_fraction = validation_fraction
        self.patience = patience
        self._rng = ensure_rng(seed)

        layers = []
        previous = input_dim
        for width in hidden:
            layers.append(Dense(previous, width, seed=self._rng))
            layers.append(ReLU())
            previous = width
        layers.append(Dense(previous, 2, seed=self._rng))
        self.network = Sequential(layers)
        self._loss = SoftmaxCrossEntropy()
        self._mean: "np.ndarray | None" = None
        self._std: "np.ndarray | None" = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "NeuralMachine":
        """Train on 0/1 ``labels``; returns ``self``.

        A held-out slice of the training data (``validation_fraction``)
        drives early stopping: training halts after ``patience`` epochs
        without validation-loss improvement and the best weights are
        restored.  Records the mean epoch training loss in
        :attr:`loss_history`.
        """
        x, y = self._check_training_data(features, labels)
        self._mean = x.mean(axis=0)
        std = x.std(axis=0)
        std[std < 1e-12] = 1.0  # constant features pass through unscaled
        self._std = std
        x = (x - self._mean) / self._std

        x_val, y_val = None, None
        n_val = int(len(x) * self.validation_fraction)
        # Early stopping needs both classes and a meaningful sample.
        if n_val >= 10:
            order = self._rng.permutation(len(x))
            x, y = x[order], y[order]
            x_val, y_val = x[:n_val], y[:n_val]
            x, y = x[n_val:], y[n_val:]
            if len(set(y_val.tolist())) < 2:
                x_val, y_val = None, None

        if self.optimizer_name == "adam":
            opt = Adam(
                self.network.parameters, self.network.gradients, lr=self.learning_rate
            )
        else:
            opt = SGD(
                self.network.parameters, self.network.gradients, lr=self.learning_rate
            )

        n = len(x)
        self.loss_history.clear()
        best_val = np.inf
        best_params: "list[np.ndarray] | None" = None
        stale = 0
        val_loss = SoftmaxCrossEntropy()
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                logits = self.network.forward(x[idx])
                epoch_loss += self._loss.forward(logits, y[idx])
                batches += 1
                self.network.backward(self._loss.backward())
                if self.weight_decay:
                    self._apply_weight_decay()
                opt.step()
            self.loss_history.append(epoch_loss / batches)
            if x_val is None:
                continue
            current = val_loss.forward(self.network.forward(x_val), y_val)
            if current < best_val - 1e-6:
                best_val = current
                best_params = [p.copy() for p in self.network.parameters]
                stale = 0
            else:
                stale += 1
                if stale >= self.patience:
                    break
        if best_params is not None:
            for param, best in zip(self.network.parameters, best_params):
                param[...] = best
        return self

    def _apply_weight_decay(self) -> None:
        """Add the L2 penalty gradient to every Dense weight (not biases)."""
        for layer in self.network.layers:
            if isinstance(layer, Dense):
                layer.grad_weight += self.weight_decay * layer.weight

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each row."""
        x = self._check_features(features)
        if self._mean is None or self._std is None:
            raise RuntimeError("model must be fit before predicting")
        logits = self.network.forward((x - self._mean) / self._std)
        return softmax(logits)[:, 1]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """0/1 labels at the 0.5 probability threshold."""
        return (self.predict_proba(features) >= 0.5).astype(np.int64)

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Alias of :meth:`predict_proba`, the ranking score for AUC."""
        return self.predict_proba(features)

    # ------------------------------------------------------------------
    # validation helpers
    # ------------------------------------------------------------------
    def _check_features(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.input_dim:
            raise ValueError(
                f"features must have shape (n, {self.input_dim}), got {x.shape}"
            )
        return x

    def _check_training_data(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        x = self._check_features(features)
        y = np.asarray(labels)
        if y.shape != (x.shape[0],):
            raise ValueError(
                f"labels must have shape ({x.shape[0]},), got {y.shape}"
            )
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")
        if not np.isin(y, (0, 1)).all():
            raise ValueError("labels must be 0 or 1")
        return x, y.astype(np.int64)

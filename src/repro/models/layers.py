"""Neural-network layers with explicit forward/backward passes.

A deliberately small autodiff-free stack: each layer caches what its
backward pass needs, gradients flow by explicit chain-rule calls.  This is
all the paper's neural machine requires (three dense ReLU layers and a
softmax head), and keeping it explicit makes the gradient checks in the
test suite straightforward.
"""

from __future__ import annotations

import abc
from typing import Iterable

import numpy as np

from repro.utils.rng import RngLike, ensure_rng


class Layer(abc.ABC):
    """A differentiable module mapping (batch, in) → (batch, out)."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute outputs, caching anything backward will need."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Given dL/d(output), accumulate parameter grads and return dL/d(input)."""

    @property
    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays (shared, mutated in place by optimizers)."""
        return []

    @property
    def gradients(self) -> list[np.ndarray]:
        """Gradients aligned with :attr:`parameters`."""
        return []


class Dense(Layer):
    """Affine layer ``y = x W + b`` with He-normal initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        seed: RngLike = None,
    ) -> None:
        if in_features < 1 or out_features < 1:
            raise ValueError("layer dimensions must be >= 1")
        rng = ensure_rng(seed)
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"expected input of shape (batch, {self.weight.shape[0]}), "
                f"got {x.shape}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight[...] = self._input.T @ grad_output
        self.grad_bias[...] = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Elementwise ``max(0, x)``."""

    def __init__(self) -> None:
        self._mask: "np.ndarray | None" = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_output, 0.0)


class Sequential(Layer):
    """Chain of layers applied in order."""

    def __init__(self, layers: Iterable[Layer]) -> None:
        self.layers = list(layers)
        if not self.layers:
            raise ValueError("Sequential needs at least one layer")

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    @property
    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients]

"""Saving and loading trained models (``.npz`` archives).

Both predictors serialise to a single numpy archive holding the
hyper-parameters (as a JSON string) and the learned arrays, so a trained
SSFLR/SSFNM model can be shipped and reused without retraining:

    save_model(model, "ssfnm.npz")
    model = load_model("ssfnm.npz")
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.models.layers import Dense
from repro.models.linear import LinearRegressionModel
from repro.models.neural import NeuralMachine

_FORMAT_VERSION = 1


def save_model(
    model: "NeuralMachine | LinearRegressionModel",
    path: "str | os.PathLike[str]",
) -> None:
    """Serialise a trained model to ``path`` (``.npz``).

    Raises:
        RuntimeError: if the model has not been fit.
        TypeError: for unsupported model types.
    """
    if isinstance(model, LinearRegressionModel):
        _save_linear(model, path)
    elif isinstance(model, NeuralMachine):
        _save_neural(model, path)
    else:
        raise TypeError(f"cannot serialise {type(model).__name__}")


def load_model(path: "str | os.PathLike[str]") -> "NeuralMachine | LinearRegressionModel":
    """Reload a model saved by :func:`save_model`."""
    with np.load(path, allow_pickle=False) as archive:
        meta = json.loads(str(archive["meta"]))
        if meta.get("format") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported model format {meta.get('format')!r} in {path}"
            )
        kind = meta["kind"]
        if kind == "linear":
            return _load_linear(meta, archive)
        if kind == "neural":
            return _load_neural(meta, archive)
        raise ValueError(f"unknown model kind {kind!r} in {path}")


# ----------------------------------------------------------------------
# linear
# ----------------------------------------------------------------------


def _save_linear(model: LinearRegressionModel, path) -> None:
    if model.weights is None:
        raise RuntimeError("cannot save an unfitted model")
    meta = {
        "format": _FORMAT_VERSION,
        "kind": "linear",
        "ridge": model.ridge,
        "bias": model.bias,
    }
    np.savez(path, meta=json.dumps(meta), weights=model.weights)


def _load_linear(meta: dict, archive) -> LinearRegressionModel:
    model = LinearRegressionModel(ridge=float(meta["ridge"]))
    model.weights = archive["weights"].copy()
    model.bias = float(meta["bias"])
    return model


# ----------------------------------------------------------------------
# neural
# ----------------------------------------------------------------------


def _save_neural(model: NeuralMachine, path) -> None:
    if model._mean is None or model._std is None:
        raise RuntimeError("cannot save an unfitted model")
    meta = {
        "format": _FORMAT_VERSION,
        "kind": "neural",
        "input_dim": model.input_dim,
        "hidden": list(model.hidden),
        "learning_rate": model.learning_rate,
        "batch_size": model.batch_size,
        "epochs": model.epochs,
        "optimizer": model.optimizer_name,
        "weight_decay": model.weight_decay,
        "validation_fraction": model.validation_fraction,
        "patience": model.patience,
    }
    arrays = {"meta": json.dumps(meta), "mean": model._mean, "std": model._std}
    for index, layer in enumerate(_dense_layers(model)):
        arrays[f"weight_{index}"] = layer.weight
        arrays[f"bias_{index}"] = layer.bias
    np.savez(path, **arrays)


def _load_neural(meta: dict, archive) -> NeuralMachine:
    model = NeuralMachine(
        input_dim=int(meta["input_dim"]),
        hidden=tuple(meta["hidden"]),
        learning_rate=float(meta["learning_rate"]),
        batch_size=int(meta["batch_size"]),
        epochs=int(meta["epochs"]),
        optimizer=str(meta["optimizer"]),
        weight_decay=float(meta["weight_decay"]),
        validation_fraction=float(meta["validation_fraction"]),
        patience=int(meta["patience"]),
    )
    model._mean = archive["mean"].copy()
    model._std = archive["std"].copy()
    for index, layer in enumerate(_dense_layers(model)):
        layer.weight[...] = archive[f"weight_{index}"]
        layer.bias[...] = archive[f"bias_{index}"]
    return model


def _dense_layers(model: NeuralMachine) -> list[Dense]:
    return [layer for layer in model.network.layers if isinstance(layer, Dense)]

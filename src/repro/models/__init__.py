"""Prediction models: linear regression, the neural machine, ranking.

The paper evaluates every feature through one of three model families
(Sec. VI-C1/C2):

* unsupervised heuristics → :class:`repro.models.ranking.ThresholdClassifier`
  (train set picks the classification threshold),
* linear regression → :class:`repro.models.linear.LinearRegressionModel`
  (WLLR, SSFLR, SSFLR-W),
* the "neural machine" → :class:`repro.models.neural.NeuralMachine`
  (WLNM, SSFNM, SSFNM-W): a fully-connected 32-32-16 ReLU network with a
  softmax output, built from scratch on numpy in :mod:`repro.models.layers`.
"""

from repro.models.layers import Dense, ReLU, Sequential
from repro.models.linear import LinearRegressionModel
from repro.models.losses import SoftmaxCrossEntropy
from repro.models.neural import NeuralMachine
from repro.models.optim import SGD, Adam
from repro.models.persistence import load_model, save_model
from repro.models.ranking import ThresholdClassifier, best_f1_threshold

__all__ = [
    "Dense",
    "ReLU",
    "Sequential",
    "SoftmaxCrossEntropy",
    "SGD",
    "Adam",
    "NeuralMachine",
    "LinearRegressionModel",
    "ThresholdClassifier",
    "best_f1_threshold",
    "save_model",
    "load_model",
]

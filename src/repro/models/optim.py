"""Optimizers operating in place on shared parameter arrays."""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np


class Optimizer(abc.ABC):
    """Updates parameters from aligned gradient arrays."""

    def __init__(self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]) -> None:
        if len(parameters) != len(gradients):
            raise ValueError("parameters and gradients must align")
        for p, g in zip(parameters, gradients):
            if p.shape != g.shape:
                raise ValueError(f"shape mismatch: {p.shape} vs {g.shape}")
        self._params = list(parameters)
        self._grads = list(gradients)

    @abc.abstractmethod
    def step(self) -> None:
        """Apply one update using the current gradient values."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        lr: float = 0.01,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(parameters, gradients)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p) for p in self._params]

    def step(self) -> None:
        for param, grad, vel in zip(self._params, self._grads, self._velocity):
            if self.momentum:
                vel *= self.momentum
                vel -= self.lr * grad
                param += vel
            else:
                param -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction."""

    def __init__(
        self,
        parameters: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
        lr: float = 0.001,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, gradients)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m = [np.zeros_like(p) for p in self._params]
        self._v = [np.zeros_like(p) for p in self._params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param, grad, m, v in zip(self._params, self._grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            param -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

"""Linear-regression link classifier (WLLR / SSFLR / SSFLR-W).

The paper's lightweight model family: ordinary least squares on 0/1
targets (with an optional ridge term for rank-deficient feature matrices),
classifying at the 0.5 midpoint of the two targets.  The continuous
regression output doubles as the ranking score for AUC.
"""

from __future__ import annotations

import numpy as np


class LinearRegressionModel:
    """Least-squares regression on binary targets.

    Args:
        ridge: L2 regularisation strength on the weights (not the bias);
            the default small value keeps the normal equations
            well-conditioned for the sparse, collinear SSF/WLF features.

    Example:
        >>> import numpy as np
        >>> x = np.array([[0.0], [0.0], [1.0], [1.0]])
        >>> y = np.array([0, 0, 1, 1])
        >>> model = LinearRegressionModel().fit(x, y)
        >>> int(model.predict(np.array([[0.9]]))[0])
        1
    """

    def __init__(self, ridge: float = 1e-6) -> None:
        if ridge < 0:
            raise ValueError(f"ridge must be >= 0, got {ridge}")
        self.ridge = ridge
        self.weights: "np.ndarray | None" = None
        self.bias: float = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LinearRegressionModel":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(labels, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {x.shape}")
        if y.shape != (x.shape[0],):
            raise ValueError(f"labels must have shape ({x.shape[0]},), got {y.shape}")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on an empty training set")

        # Centre so the bias absorbs the intercept and stays unregularised.
        x_mean = x.mean(axis=0)
        y_mean = y.mean()
        xc = x - x_mean
        gram = xc.T @ xc + self.ridge * np.eye(x.shape[1])
        self.weights = np.linalg.solve(gram, xc.T @ (y - y_mean))
        self.bias = float(y_mean - x_mean @ self.weights)
        return self

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """The raw regression output ``Xw + b`` (ranking score for AUC)."""
        if self.weights is None:
            raise RuntimeError("model must be fit before predicting")
        x = np.asarray(features, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.weights.shape[0]:
            raise ValueError(
                f"features must have shape (n, {self.weights.shape[0]}), got {x.shape}"
            )
        return x @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Regression output clipped to [0, 1] as a pseudo-probability."""
        return np.clip(self.decision_scores(features), 0.0, 1.0)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """0/1 labels, thresholding the regression output at 0.5."""
        return (self.decision_scores(features) >= 0.5).astype(np.int64)

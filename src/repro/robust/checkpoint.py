"""Checkpoint/resume for experiment runs.

A Table-3 run is a grid of ``(dataset, method)`` cells, each minutes of
extraction + training; a crash near the end used to throw the whole grid
away.  :class:`RunCheckpoint` persists every completed cell (and the
extracted feature matrices, which dominate the cost) to a run directory
as it is produced, so ``repro table3 --resume <dir>`` recomputes only
the missing cells.

Layout of a run directory::

    <run_dir>/
      manifest.json                   # settings fingerprint (guard)
      <dataset>/
        features_<kind>.npz           # train/test matrices per feature kind
        method_<method>.json          # one MethodResult per method

Guarantees:

* **Exactness** — results and matrices round-trip bit-exactly: floats
  go through JSON's shortest round-trip repr, arrays through ``.npz``.
  A resumed run's :class:`~repro.experiments.methods.MethodResult`\\ s
  equal an uninterrupted run's (asserted by ``tests/robust``).
* **Crash-safety** — every file is written to a temp name and
  ``os.replace``\\ d into place, so a cell is either fully present or
  absent; a partial write is never loaded.  Unreadable cells are
  treated as absent (recomputed), never trusted.
* **Setting drift** — :meth:`RunCheckpoint.ensure_manifest` refuses to
  resume a directory whose recorded settings differ from the current
  invocation, instead of silently mixing configurations.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.obs import get_logger, incr

_LOG = get_logger("robust.checkpoint")

__all__ = ["CheckpointMismatchError", "RunCheckpoint"]


class CheckpointMismatchError(RuntimeError):
    """The run directory was produced under different settings."""


def _safe(name: str) -> str:
    """Filesystem-safe cell name (method names contain ``.``/`` ``)."""
    return "".join(c if c.isalnum() or c in "-_" else "_" for c in name)


def _encode_extras(extras: Mapping[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in extras.items():
        if isinstance(value, np.ndarray):
            out[key] = {
                "__ndarray__": value.tolist(),
                "dtype": value.dtype.str,
                "shape": list(value.shape),
            }
        elif isinstance(value, (np.floating, np.integer)):
            out[key] = value.item()
        else:
            out[key] = value
    return out


def _decode_extras(payload: Mapping[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, dict) and "__ndarray__" in value:
            out[key] = np.array(value["__ndarray__"], dtype=value["dtype"]).reshape(
                [int(s) for s in value["shape"]]
            )
        else:
            out[key] = value
    return out


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


class RunCheckpoint:
    """Per-cell persistence for one experiment run directory.

    Example:
        >>> import tempfile
        >>> from repro.experiments.methods import MethodResult
        >>> ckpt = RunCheckpoint(tempfile.mkdtemp())
        >>> ckpt.save_result("co-author", MethodResult("CN", 0.9, 0.8))
        >>> ckpt.load_result("co-author", "CN").auc
        0.9
    """

    def __init__(self, run_dir: "str | Path") -> None:
        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # manifest (settings fingerprint)
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.run_dir / "manifest.json"

    def ensure_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Record the run settings, or verify they match what's recorded.

        Raises:
            CheckpointMismatchError: the directory already holds a
                manifest that differs from ``manifest``.
        """
        wanted = json.dumps(dict(manifest), sort_keys=True, indent=2)
        if self.manifest_path.exists():
            recorded = self.manifest_path.read_text(encoding="utf-8")
            if json.loads(recorded) != json.loads(wanted):
                raise CheckpointMismatchError(
                    f"run directory {self.run_dir} was produced under different "
                    "settings; refusing to resume (use a fresh --checkpoint-dir "
                    "or matching flags)"
                )
            return
        _atomic_write_bytes(self.manifest_path, (wanted + "\n").encode("utf-8"))

    # ------------------------------------------------------------------
    # method results
    # ------------------------------------------------------------------
    def _dataset_dir(self, dataset: str) -> Path:
        return self.run_dir / _safe(dataset)

    def _result_path(self, dataset: str, method: str) -> Path:
        return self._dataset_dir(dataset) / f"method_{_safe(method)}.json"

    def save_result(self, dataset: str, result: Any) -> None:
        """Persist one completed cell (a ``MethodResult``)."""
        payload = {
            "dataset": dataset,
            "method": result.method,
            "auc": float(result.auc),
            "f1": float(result.f1),
            "extras": _encode_extras(result.extras),
        }
        path = self._result_path(dataset, result.method)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(
            path, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        )
        _LOG.debug("checkpointed cell (%s, %s) -> %s", dataset, result.method, path)

    def load_result(self, dataset: str, method: str) -> "Any | None":
        """The checkpointed ``MethodResult`` for a cell, or ``None``.

        Corrupt or mismatched cells are treated as absent (the caller
        recomputes them) rather than trusted.
        """
        from repro.experiments.methods import MethodResult

        path = self._result_path(dataset, method)
        if not path.exists():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            _LOG.warning("unreadable checkpoint cell %s (%s); recomputing", path, exc)
            return None
        if payload.get("method") != method or payload.get("dataset") != dataset:
            _LOG.warning("checkpoint cell %s names a different cell; recomputing", path)
            return None
        return MethodResult(
            method=method,
            auc=float(payload["auc"]),
            f1=float(payload["f1"]),
            extras=_decode_extras(payload.get("extras", {})),
        )

    def has_result(self, dataset: str, method: str) -> bool:
        return self._result_path(dataset, method).exists()

    def completed_cells(self) -> list[tuple[str, str]]:
        """All ``(dataset, method)`` cells present, by recorded names."""
        out: list[tuple[str, str]] = []
        for path in sorted(self.run_dir.glob("*/method_*.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                out.append((str(payload["dataset"]), str(payload["method"])))
            except (json.JSONDecodeError, OSError, KeyError):
                continue
        return out

    # ------------------------------------------------------------------
    # feature matrices
    # ------------------------------------------------------------------
    def _features_path(self, dataset: str, kind: str) -> Path:
        return self._dataset_dir(dataset) / f"features_{_safe(kind)}.npz"

    def save_features(
        self, dataset: str, kind: str, train: np.ndarray, test: np.ndarray
    ) -> None:
        """Persist one feature kind's (train, test) matrices."""
        path = self._features_path(dataset, kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp.npz")
        try:
            np.savez(tmp, train=train, test=test)
            os.replace(tmp, path)
        except BaseException:
            tmp.unlink(missing_ok=True)
            raise
        _LOG.debug("checkpointed %s features for %s -> %s", kind, dataset, path)

    def load_features(
        self, dataset: str, kind: str
    ) -> "tuple[np.ndarray, np.ndarray] | None":
        path = self._features_path(dataset, kind)
        if not path.exists():
            return None
        try:
            with np.load(path) as data:
                loaded = (data["train"], data["test"])
        except (OSError, ValueError, KeyError, EOFError) as exc:
            _LOG.warning("unreadable feature checkpoint %s (%s); recomputing", path, exc)
            return None
        incr("robust.resumed_features")
        return loaded

"""Retry/timeout policy for fault-tolerant pool extraction.

One frozen dataclass so the knobs travel together through
:func:`repro.core.parallel.parallel_extract_batch` and
:class:`repro.experiments.config.ExperimentConfig`.  Environment
variables provide deployment-time overrides without touching call
sites:

* ``REPRO_PARALLEL_MAX_RETRIES`` — pool rounds re-dispatching failed
  chunks before the in-parent sequential fallback (default 2).
* ``REPRO_PARALLEL_CHUNK_TIMEOUT`` — seconds a pool may stay silent
  before the round is declared hung and its missing chunks retried
  (default 300; ``0`` or ``none`` disables the timeout entirely, which
  also disables hung-chunk/dead-worker detection).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: default pool rounds before the sequential fallback
DEFAULT_MAX_RETRIES = 2

#: default seconds of pool silence before a chunk counts as hung
DEFAULT_CHUNK_TIMEOUT = 300.0

_MAX_RETRIES_ENV = "REPRO_PARALLEL_MAX_RETRIES"
_CHUNK_TIMEOUT_ENV = "REPRO_PARALLEL_CHUNK_TIMEOUT"


@dataclass(frozen=True)
class RetryPolicy:
    """How :func:`~repro.core.parallel.parallel_extract_batch` survives faults.

    Attributes:
        max_retries: how many extra pool rounds may re-dispatch failed
            chunks.  ``0`` means a single attempt, then straight to the
            in-parent sequential fallback.  Failed pairs are never
            dropped — the fallback is bounded but always complete.
        chunk_timeout: seconds to wait for the *next* chunk result
            before declaring the round hung (covers both a chunk lost
            to an abruptly-dead worker — ``multiprocessing.Pool`` never
            reports those — and a genuinely stuck chunk).  ``None``
            waits forever.
    """

    max_retries: int = DEFAULT_MAX_RETRIES
    chunk_timeout: "float | None" = DEFAULT_CHUNK_TIMEOUT

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be positive or None, got {self.chunk_timeout}"
            )

    @classmethod
    def from_env(
        cls,
        max_retries: "int | None" = None,
        chunk_timeout: "float | None" = None,
        *,
        use_timeout_arg: bool = False,
    ) -> "RetryPolicy":
        """Resolve a policy: explicit args, then env vars, then defaults.

        ``chunk_timeout=None`` is ambiguous between "not given" and
        "disable the timeout"; pass ``use_timeout_arg=True`` to force
        the argument (including ``None``) to win over the environment.
        """
        if max_retries is None:
            raw = os.environ.get(_MAX_RETRIES_ENV)
            max_retries = int(raw) if raw else DEFAULT_MAX_RETRIES
        if not use_timeout_arg and chunk_timeout is None:
            raw = os.environ.get(_CHUNK_TIMEOUT_ENV)
            if raw is None or not raw.strip():
                chunk_timeout = DEFAULT_CHUNK_TIMEOUT
            elif raw.strip().lower() in ("none", "0", "0.0"):
                chunk_timeout = None
            else:
                chunk_timeout = float(raw)
        return cls(max_retries=max_retries, chunk_timeout=chunk_timeout)

"""Deterministic fault injection for the robustness layer.

Production code calls the ``maybe_*`` hooks at its failure points; each
hook is a no-op unless the matching ``REPRO_FAULT_*`` environment
variable arms it.  Environment variables are the channel because the
interesting failures happen in *worker processes*: both ``fork`` and
``spawn`` children inherit ``os.environ`` as it stood at pool creation,
so a test (or an incident reproduction) arms a fault in the parent and
the right worker fires it.

Fault points
============

=======================  ====================================================
environment variable     effect
=======================  ====================================================
``REPRO_FAULT_WORKER_CRASH=<n>``   the worker extracting global pair index
                                   ``n`` dies hard (``os._exit``) — simulates
                                   an OOM-kill/segfault mid-batch.
``REPRO_FAULT_SLOW_CHUNK=<c>:<s>`` the worker holding chunk index ``c``
                                   sleeps ``s`` seconds first — simulates a
                                   hung chunk for timeout testing.
``REPRO_FAULT_SHM_EXPORT=1``       :meth:`CSRSnapshot.to_shared` raises
                                   :class:`InjectedFault` — simulates shm
                                   exhaustion in the parent.
``REPRO_FAULT_SHM_ATTACH=1``       :meth:`CSRSnapshot.from_shared` raises
                                   :class:`InjectedFault` — simulates an
                                   attach failure in a worker.
=======================  ====================================================

Fire budgets
============

A fault that fires on *every* attempt can never be survived by retrying
— useful for testing the terminal fallback, useless for testing
recovery.  Setting ``REPRO_FAULT_STATE_DIR`` to a directory bounds each
point to ``REPRO_FAULT_<POINT>_FIRES`` firings (default 1): each firing
atomically claims a marker file (``O_CREAT | O_EXCL``), which is
race-free across worker processes, so "crash exactly once, then let the
retry succeed" is deterministic.  Without a state dir the fault fires
every time it is reached.

Tests arm points either with ``monkeypatch.setenv`` or the
:func:`inject` context manager.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import get_logger

__all__ = [
    "InjectedFault",
    "inject",
    "maybe_crash_worker",
    "maybe_raise",
    "maybe_slow_chunk",
]

_LOG = get_logger("robust.faults")

_ENV_PREFIX = "REPRO_FAULT_"
_STATE_DIR_ENV = "REPRO_FAULT_STATE_DIR"

#: the hard-exit status of an injected worker crash (visible in waitpid)
CRASH_EXIT_CODE = 86


class InjectedFault(OSError):
    """Raised by raising fault points.

    Subclasses :class:`OSError` so the production ``except OSError``
    paths treat it exactly like the real failure it simulates (shm
    exhaustion, permission denied, ...).
    """


def _spec(point: str) -> "str | None":
    value = os.environ.get(_ENV_PREFIX + point.upper())
    return value if value else None


def _claim_fire(point: str) -> bool:
    """Whether this firing is within the point's budget.

    With no state directory configured the budget is unlimited.  With
    one, each call atomically claims one of ``_FIRES`` marker files;
    once all are claimed the point is exhausted and stops firing.
    """
    state_dir = os.environ.get(_STATE_DIR_ENV)
    if not state_dir:
        return True
    raw = os.environ.get(_ENV_PREFIX + point.upper() + "_FIRES")
    budget = int(raw) if raw else 1
    for slot in range(budget):
        marker = os.path.join(state_dir, f"{point}.{slot}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


def maybe_crash_worker(pair_index: int) -> None:
    """Die hard if armed for this global pair index.

    Only ever called from pool *worker* code paths (never from the
    parent's sequential extraction), so an armed crash cannot take down
    the driving process.
    """
    spec = _spec("worker_crash")
    if spec is None or int(spec) != pair_index:
        return
    if not _claim_fire("worker_crash"):
        return
    _LOG.warning(
        "injected fault: worker %d crashing on pair index %d",
        os.getpid(),
        pair_index,
    )
    os._exit(CRASH_EXIT_CODE)


def maybe_slow_chunk(chunk_index: int) -> None:
    """Sleep if armed for this chunk index (``<chunk>:<seconds>``)."""
    spec = _spec("slow_chunk")
    if spec is None:
        return
    target, _, seconds = spec.partition(":")
    if int(target) != chunk_index:
        return
    if not _claim_fire("slow_chunk"):
        return
    delay = float(seconds) if seconds else 30.0
    _LOG.warning(
        "injected fault: chunk %d sleeping %.1fs in worker %d",
        chunk_index,
        delay,
        os.getpid(),
    )
    time.sleep(delay)


def maybe_raise(point: str) -> None:
    """Raise :class:`InjectedFault` if ``point`` is armed.

    Used by the shared-memory failure points (``shm_export``,
    ``shm_attach``).
    """
    if _spec(point) is None:
        return
    if not _claim_fire(point):
        return
    _LOG.warning("injected fault: raising at point %r", point)
    raise InjectedFault(f"injected fault at {point!r}")


@contextmanager
def inject(
    point: str,
    value: str = "1",
    *,
    fires: "int | None" = None,
    state_dir: "str | None" = None,
) -> Iterator[None]:
    """Arm one fault point for the duration of the block.

    Sets the point's environment variable (so forked/spawned workers
    inherit it) and, when ``fires``/``state_dir`` are given, the fire
    budget.  Restores the previous environment on exit.
    """
    updates: dict[str, str] = {_ENV_PREFIX + point.upper(): value}
    if fires is not None:
        updates[_ENV_PREFIX + point.upper() + "_FIRES"] = str(fires)
    if state_dir is not None:
        os.makedirs(state_dir, exist_ok=True)
        updates[_STATE_DIR_ENV] = state_dir
    saved = {name: os.environ.get(name) for name in updates}
    os.environ.update(updates)
    try:
        yield
    finally:
        for name, previous in saved.items():
            if previous is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = previous

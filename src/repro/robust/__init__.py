"""repro.robust — fault tolerance for extraction and experiment runs.

The robustness layer of the reproduction, threaded through
:mod:`repro.core.parallel`, :mod:`repro.experiments.runner` and
:mod:`repro.graph.csr`:

* :mod:`repro.robust.policy` — :class:`RetryPolicy`: how many times a
  failed pool chunk is re-dispatched and how long a chunk may stay
  silent before it is declared hung (both env-overridable).
* :mod:`repro.robust.faults` — a deterministic fault-injection harness.
  Production code calls the ``maybe_*`` hooks at its failure points;
  they are no-ops unless the matching ``REPRO_FAULT_*`` environment
  variable arms them, which only the ``tests/robust`` suite (and anyone
  reproducing an incident) does.
* :mod:`repro.robust.checkpoint` — :class:`~repro.robust.checkpoint.RunCheckpoint`:
  per-``(dataset, method)`` persistence of experiment results and
  feature matrices so a killed Table-3 run resumes instead of
  recomputing (``repro table3 --resume <dir>``).

Counters exported through :mod:`repro.obs`:

* ``robust.retries`` — pool chunks re-dispatched after a failure,
* ``robust.fallbacks`` — degradations taken (shm → dict payload,
  pool → in-parent sequential extraction),
* ``robust.resumed_cells`` — experiment cells served from checkpoint.

Everything here preserves bit-identical results: retries are pure
re-execution, degradations swap the substrate for one with the same
feature contract, and resumed cells are exact round-trips of what an
uninterrupted run would have produced.

``repro.robust.checkpoint`` is deliberately not imported here: it pulls
in :mod:`repro.experiments.methods`, which the low-level importers of
this package (``repro.graph.csr``) must not depend on.
"""

from repro.robust.faults import InjectedFault, inject
from repro.robust.policy import RetryPolicy

__all__ = [
    "InjectedFault",
    "RetryPolicy",
    "inject",
]

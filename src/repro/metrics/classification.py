"""Binary-classification metrics, implemented from their definitions.

AUC uses the Mann–Whitney rank statistic (ties contribute ½), equivalent
to the trapezoidal area under the ROC curve and robust to constant-score
degeneracies.  All functions accept 0/1 label arrays and raise on
malformed input rather than guessing.
"""

from __future__ import annotations

import numpy as np


def _check_binary(labels: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise ValueError(f"{name} must contain only 0/1 values")
    return arr.astype(np.int64)


def _check_aligned(y_true: np.ndarray, other: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(other, dtype=np.float64)
    if arr.shape != y_true.shape:
        raise ValueError(
            f"{name} must align with y_true: {arr.shape} vs {y_true.shape}"
        )
    return arr


def roc_auc_score(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the Mann–Whitney U statistic.

    ``AUC = P(score⁺ > score⁻) + ½ P(score⁺ = score⁻)`` over random
    positive/negative pairs.

    Raises:
        ValueError: if only one class is present (AUC undefined).
    """
    true = _check_binary(y_true, "y_true")
    score = _check_aligned(true, y_score, "y_score")
    n_pos = int(true.sum())
    n_neg = len(true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score needs both classes present")

    order = np.argsort(score, kind="mergesort")
    ranks = np.empty(len(score), dtype=np.float64)
    sorted_scores = score[order]
    # Midranks for ties.
    i = 0
    position = 1
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        midrank = (position + position + (j - i)) / 2.0
        ranks[order[i : j + 1]] = midrank
        position += j - i + 1
        i = j + 1

    rank_sum_pos = ranks[true == 1].sum()
    u_statistic = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2×2 matrix ``[[tn, fp], [fn, tp]]``."""
    true = _check_binary(y_true, "y_true")
    pred = _check_binary(y_pred, "y_pred")
    if pred.shape != true.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {true.shape}")
    tp = int(((true == 1) & (pred == 1)).sum())
    tn = int(((true == 0) & (pred == 0)).sum())
    fp = int(((true == 0) & (pred == 1)).sum())
    fn = int(((true == 1) & (pred == 0)).sum())
    return np.array([[tn, fp], [fn, tp]], dtype=np.int64)


def precision_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """``tp / (tp + fp)``; 0 when nothing was predicted positive."""
    (_, fp), (_, tp) = confusion_matrix(y_true, y_pred)
    return tp / (tp + fp) if tp + fp else 0.0


def recall_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """``tp / (tp + fn)``; 0 when there are no positives."""
    (_, _), (fn, tp) = confusion_matrix(y_true, y_pred)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Harmonic mean of precision and recall; 0 when both are 0."""
    (_, fp), (fn, tp) = confusion_matrix(y_true, y_pred)
    denom = 2 * tp + fp + fn
    return 2 * tp / denom if denom else 0.0


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    matrix = confusion_matrix(y_true, y_pred)
    total = matrix.sum()
    if total == 0:
        raise ValueError("accuracy undefined on empty input")
    return float((matrix[0, 0] + matrix[1, 1]) / total)


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC points ``(fpr, tpr, thresholds)``, thresholds descending.

    Each threshold is a distinct score value; predictions are
    ``score >= threshold``.  The curve starts at (0, 0) with an infinite
    threshold and ends at (1, 1).
    """
    true = _check_binary(y_true, "y_true")
    score = _check_aligned(true, y_score, "y_score")
    n_pos = int(true.sum())
    n_neg = len(true) - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs both classes present")

    order = np.argsort(-score, kind="mergesort")
    sorted_true = true[order]
    sorted_score = score[order]
    distinct = np.where(np.diff(sorted_score))[0]
    cut_indices = np.concatenate([distinct, [len(sorted_true) - 1]])

    tps = np.cumsum(sorted_true)[cut_indices]
    fps = (cut_indices + 1) - tps
    tpr = np.concatenate([[0.0], tps / n_pos])
    fpr = np.concatenate([[0.0], fps / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_score[cut_indices]])
    return fpr, tpr, thresholds


def precision_recall_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Precision/recall points over descending score thresholds."""
    true = _check_binary(y_true, "y_true")
    score = _check_aligned(true, y_score, "y_score")
    n_pos = int(true.sum())
    if n_pos == 0:
        raise ValueError("precision_recall_curve needs at least one positive")

    order = np.argsort(-score, kind="mergesort")
    sorted_true = true[order]
    sorted_score = score[order]
    distinct = np.where(np.diff(sorted_score))[0]
    cut_indices = np.concatenate([distinct, [len(sorted_true) - 1]])

    tps = np.cumsum(sorted_true)[cut_indices]
    predicted = cut_indices + 1
    precision = tps / predicted
    recall = tps / n_pos
    thresholds = sorted_score[cut_indices]
    return precision, recall, thresholds

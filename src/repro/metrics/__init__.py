"""Classification metrics (AUC and F1 per Sec. VI-C2, plus companions)."""

from repro.metrics.ranking import (
    average_precision,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.metrics.classification import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    precision_recall_curve,
    precision_score,
    recall_score,
    roc_auc_score,
    roc_curve,
)

__all__ = [
    "roc_auc_score",
    "f1_score",
    "precision_score",
    "recall_score",
    "accuracy_score",
    "confusion_matrix",
    "roc_curve",
    "precision_recall_curve",
    "average_precision",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
]

"""Ranking metrics: average precision, precision@k, reciprocal rank.

The paper evaluates with AUC and F1; link-prediction systems in
deployment are usually consumed as rankings ("recommend the top-k most
likely links"), so the library also ships the standard ranking metrics.
All functions take 0/1 labels and real-valued scores; ties are broken
pessimistically (by treating tied negatives as ranked above positives
would be unstable — instead ties are resolved by stable sort order, and
the tests pin the behaviour).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.classification import _check_aligned, _check_binary


def _ranked_labels(y_true: np.ndarray, y_score: np.ndarray) -> np.ndarray:
    true = _check_binary(y_true, "y_true")
    score = _check_aligned(true, y_score, "y_score")
    order = np.argsort(-score, kind="mergesort")
    return true[order]


def precision_at_k(y_true: np.ndarray, y_score: np.ndarray, k: int) -> float:
    """Fraction of positives among the ``k`` highest-scored items.

    Raises:
        ValueError: if ``k`` exceeds the number of items or is < 1.
    """
    ranked = _ranked_labels(y_true, y_score)
    if not 1 <= k <= len(ranked):
        raise ValueError(f"k must be in [1, {len(ranked)}], got {k}")
    return float(ranked[:k].mean())


def recall_at_k(y_true: np.ndarray, y_score: np.ndarray, k: int) -> float:
    """Fraction of all positives found within the top ``k``."""
    ranked = _ranked_labels(y_true, y_score)
    if not 1 <= k <= len(ranked):
        raise ValueError(f"k must be in [1, {len(ranked)}], got {k}")
    n_pos = int(ranked.sum())
    if n_pos == 0:
        raise ValueError("recall@k needs at least one positive")
    return float(ranked[:k].sum() / n_pos)


def average_precision(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the precision-recall curve (step interpolation).

    ``AP = Σ_i P@rank(i) / n_pos`` over the positive items ``i``.
    """
    ranked = _ranked_labels(y_true, y_score)
    n_pos = int(ranked.sum())
    if n_pos == 0:
        raise ValueError("average precision needs at least one positive")
    cumulative = np.cumsum(ranked)
    positions = np.flatnonzero(ranked) + 1
    precisions = cumulative[positions - 1] / positions
    return float(precisions.mean())


def reciprocal_rank(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """``1 / rank`` of the highest-ranked positive item."""
    ranked = _ranked_labels(y_true, y_score)
    hits = np.flatnonzero(ranked)
    if len(hits) == 0:
        raise ValueError("reciprocal rank needs at least one positive")
    return float(1.0 / (hits[0] + 1))

"""Prequential ("test-then-train") evaluation over the link stream.

Sec. III frames a dynamic network as a *stream* of timestamped links.
The paper evaluates one frozen split; a streaming system would instead
interleave prediction and learning: at every timestamp ``t`` the model —
trained on everything before ``t`` — predicts which pairs link at ``t``,
is scored, and then absorbs timestamp ``t``'s links before moving on.
This module provides that protocol:

* :class:`StreamingSSFPredictor` — an online SSF model: it maintains the
  growing history network, refits its downstream model (linear or
  neural) every ``refit_every`` timestamps on a sliding window of
  labelled pairs, and answers ``score(pairs)`` at any point of the
  stream.
* :func:`prequential_evaluate` — drives any scorer factory through the
  stream, collecting per-timestamp AUC and the running mean.

This is an extension beyond the paper (its natural deployment mode for a
systems venue) and doubles as a harder robustness test: the model is
evaluated on *every* prediction time, not one cherry-picked split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.temporal import DynamicNetwork, median_timestamp_gap
from repro.metrics.classification import roc_auc_score
from repro.models.linear import LinearRegressionModel
from repro.models.neural import NeuralMachine
from repro.obs import emit_alert, get_logger, heartbeat_tick, incr, observe, set_gauge, span
from repro.utils.rng import ensure_rng

Node = Hashable
Pair = tuple[Node, Node]

_LOG = get_logger("streaming.prequential")


class StreamingSSFPredictor:
    """An SSF link predictor that learns as the stream advances.

    Lifecycle: ``observe(edges_of_t)`` per timestamp; ``score(pairs)``
    may be called at any time and uses the model trained on the history
    seen so far.  Training pairs are harvested online: each observed
    timestamp contributes its new positive pairs plus matched random
    negatives, kept in a sliding window of the most recent
    ``window_size`` labelled pairs.

    Args:
        config: SSF hyper-parameters.
        model: ``"linear"`` (cheap, default for streams) or ``"neural"``.
        refit_every: refit the downstream model after this many observed
            timestamps (1 = every timestamp).
        window_size: labelled-pair memory; older pairs are dropped so the
            model tracks drift.
        epochs: neural-machine epochs per refit (ignored for linear).
        backend: SSF extraction substrate.  Streams build a fresh
            extractor per observed timestamp over a growing history, so
            the default is ``"dict"`` — a per-stamp snapshot freeze for a
            handful of pairs would cost more than it saves.  Pass
            ``"auto"``/``"csr"`` for dense streams with many labelled
            pairs per stamp.
        seed: RNG for negative harvesting and model init.
    """

    def __init__(
        self,
        config: "SSFConfig | None" = None,
        *,
        model: str = "linear",
        refit_every: int = 1,
        window_size: int = 600,
        epochs: int = 30,
        backend: str = "dict",
        seed: int = 0,
    ) -> None:
        if model not in ("linear", "neural"):
            raise ValueError(f"model must be 'linear' or 'neural', got {model!r}")
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        if window_size < 10:
            raise ValueError(f"window_size must be >= 10, got {window_size}")
        self.config = config or SSFConfig()
        self.backend = backend
        self.model_kind = model
        self.refit_every = refit_every
        self.window_size = window_size
        self.epochs = epochs
        self._rng = ensure_rng(seed)
        self._seed = seed

        self.history = DynamicNetwork()
        self._observed_times: list[float] = []
        self._window_pairs: list[Pair] = []
        self._window_labels: list[int] = []
        self._window_features: list[np.ndarray] = []
        self._model: "LinearRegressionModel | NeuralMachine | None" = None
        self._observed_stamps = 0
        self._current_time: "float | None" = None

    # ------------------------------------------------------------------
    # stream ingestion
    # ------------------------------------------------------------------
    def observe(self, edges: Sequence[tuple[Node, Node, float]]) -> None:
        """Absorb one timestamp's batch of links (test-then-train order:
        call :meth:`score` for this timestamp *before* observing it)."""
        if not edges:
            return
        stamps = {float(ts) for _, _, ts in edges}
        if len(stamps) != 1:
            raise ValueError("observe() expects links of a single timestamp")
        stamp = stamps.pop()
        if self._current_time is not None and stamp <= self._current_time:
            raise ValueError(
                f"stream must advance: got {stamp} after {self._current_time}"
            )

        # Harvest labelled pairs BEFORE updating the history, so their
        # features reflect exactly the pre-stamp knowledge.  Only pairs
        # whose endpoints the history already knows qualify: a node
        # arriving with this very stamp has the degenerate empty-history
        # feature vector, and labelling it 1 while negatives are sampled
        # from observed nodes would teach the model "degenerate ⇒
        # positive" (the same filter prequential_evaluate applies before
        # scoring a window).
        positives = [
            (u, v)
            for u, v in self._new_positive_pairs(edges)
            if self.history.has_node(u) and self.history.has_node(v)
        ]
        if positives and self.history.number_of_links():
            negatives = self._sample_negatives(len(positives), positives)
            extractor = SSFExtractor(
                self.history, self.config, present_time=stamp, backend=self.backend
            )
            for pair, label in [(p, 1) for p in positives] + [
                (n, 0) for n in negatives
            ]:
                self._window_pairs.append(pair)
                self._window_labels.append(label)
                self._window_features.append(extractor.extract(*pair))
            overflow = len(self._window_pairs) - self.window_size
            if overflow > 0:
                del self._window_pairs[:overflow]
                del self._window_labels[:overflow]
                del self._window_features[:overflow]

        for u, v, ts in edges:
            self.history.add_edge(u, v, ts)
        self._current_time = stamp
        self._observed_times.append(stamp)
        self._observed_stamps += 1
        if self._observed_stamps % self.refit_every == 0:
            self._refit()

    def _new_positive_pairs(self, edges) -> list[Pair]:
        seen: set[frozenset] = set()
        out: list[Pair] = []
        for u, v, _ in edges:
            key = frozenset((u, v))
            if key not in seen:
                seen.add(key)
                out.append((u, v))
        return out

    def _sample_negatives(self, count: int, positives: list[Pair]) -> list[Pair]:
        """Random non-linked pairs to pair with this stamp's positives.

        A negative must be genuinely unlinked *in the knowledge the
        features are extracted from*: pairs already connected somewhere
        in the observed history are rejected alongside the current
        stamp's positives — labelling a historical link 0 would feed the
        model contradictory training data.
        """
        nodes = self.history.nodes
        if len(nodes) < 3:
            return []
        forbidden = {frozenset(p) for p in positives}
        out: list[Pair] = []
        attempts = 0
        while len(out) < count and attempts < 50 * count:
            attempts += 1
            i, j = self._rng.integers(len(nodes)), self._rng.integers(len(nodes))
            if i == j:
                continue
            u, v = nodes[int(i)], nodes[int(j)]
            key = frozenset((u, v))
            if key in forbidden:
                continue
            if self.history.has_edge(u, v):
                continue
            forbidden.add(key)
            out.append((u, v))
        return out

    def _refit(self) -> None:
        labels = np.array(self._window_labels)
        if len(labels) < 10 or len(set(labels.tolist())) < 2:
            return
        features = np.stack(self._window_features)
        if self.model_kind == "linear":
            self._model = LinearRegressionModel().fit(features, labels)
        else:
            self._model = NeuralMachine(
                input_dim=features.shape[1],
                epochs=self.epochs,
                seed=self._seed,
            ).fit(features, labels)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    @property
    def is_ready(self) -> bool:
        """Whether at least one refit has produced a usable model."""
        return self._model is not None

    def _stream_step(self) -> float:
        """The stream's characteristic inter-stamp spacing.

        Delegates to :func:`repro.graph.temporal.median_timestamp_gap`
        (shared with the recommender's serving clock): the median gap
        between observed timestamps, falling back to 1.0 until two
        stamps have been observed (a single stamp has no gap to
        measure).
        """
        return median_timestamp_gap(self._observed_times)

    def scoring_time(self) -> float:
        """The ``present_time`` used by :meth:`score`.

        One stream step past the last observed stamp, where the step is
        the observed median inter-stamp gap (:meth:`_stream_step`).  A
        hard-coded ``+1.0`` would distort the ``exp(-θ·Δt)`` influence
        whenever the stream's stamps are not unit-spaced: on a stream
        with spacing 100 it would treat every historical link as ~one
        step fresher than it is about to be at the next real stamp.
        """
        if self._current_time is None:
            return 1.0
        return self._current_time + self._stream_step()

    def score(self, pairs: Sequence[Pair]) -> np.ndarray:
        """Scores for candidate pairs at the current stream position.

        Before the first refit every pair scores 0 (no model yet).
        Features are extracted at :meth:`scoring_time` — one observed
        median inter-stamp gap past the newest history.
        """
        if not pairs:
            return np.zeros(0)
        if self._model is None or self.history.number_of_links() == 0:
            return np.zeros(len(pairs))
        extractor = SSFExtractor(
            self.history,
            self.config,
            present_time=self.scoring_time(),
            backend=self.backend,
        )
        features = extractor.extract_batch(list(pairs))
        return self._model.decision_scores(features)


@dataclass
class PrequentialResult:
    """Per-timestamp AUCs of one prequential run.

    ``alerts`` holds one dict per drift-threshold crossing (timestamp,
    window auc, running mean, drift, threshold) — the same facts the
    structured ``obs.alert`` log record carried when it fired.
    """

    timestamps: list[float] = field(default_factory=list)
    aucs: list[float] = field(default_factory=list)
    skipped: list[float] = field(default_factory=list)
    alerts: list[dict] = field(default_factory=list)

    @property
    def mean_auc(self) -> float:
        return float(np.mean(self.aucs)) if self.aucs else float("nan")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"prequential AUC={self.mean_auc:.3f} over {len(self.aucs)} "
            f"timestamps ({len(self.skipped)} skipped)"
        )


def prequential_evaluate(
    network: DynamicNetwork,
    predictor: StreamingSSFPredictor,
    *,
    warmup_fraction: float = 0.5,
    min_positives: int = 5,
    negative_ratio: float = 1.0,
    seed: int = 0,
    drift_threshold: "float | None" = 0.2,
) -> PrequentialResult:
    """Drive ``predictor`` through ``network``'s stream, test-then-train.

    The first ``warmup_fraction`` of timestamps are only observed; each
    later timestamp with at least ``min_positives`` new positive pairs is
    scored (positives vs. random negatives) before being absorbed.

    Every scored window also feeds the live quality monitors: gauges
    ``stream.last_window_auc``, ``stream.auc_drift`` (window AUC minus
    the running mean of previous windows), ``stream.positive_rate`` and
    ``stream.score_shift`` (window mean score minus the mean of previous
    windows' mean scores).  When a window's AUC falls more than
    ``drift_threshold`` below the running mean, one structured
    ``auc_drift`` alert fires per crossing (``obs.alert`` log record,
    ``stream.drift_alerts`` counter, and an entry in ``result.alerts``).
    ``drift_threshold=None`` disables alerting; the gauges cost nothing
    unless observability is enabled.
    """
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if drift_threshold is not None and drift_threshold <= 0:
        raise ValueError(f"drift_threshold must be > 0 or None, got {drift_threshold}")
    rng = ensure_rng(seed)
    stamps = sorted(network.timestamp_set())
    if len(stamps) < 2:
        raise ValueError("need at least two timestamps to stream")
    by_stamp: dict[float, list[tuple]] = {s: [] for s in stamps}
    for u, v, ts in network.edges():
        by_stamp[ts].append((u, v, ts))

    warmup_end = stamps[int(len(stamps) * warmup_fraction)]
    result = PrequentialResult()
    window_mean_scores: list[float] = []
    for stamp_index, stamp in enumerate(stamps):
        edges = by_stamp[stamp]
        heartbeat_tick("stream", done=stamp_index, total=len(stamps))
        if stamp > warmup_end and predictor.is_ready:
            positives = predictor._new_positive_pairs(edges)
            positives = [
                (u, v)
                for u, v in positives
                if predictor.history.has_node(u) and predictor.history.has_node(v)
            ]
            if len(positives) >= min_positives:
                # Negatives come from the nodes the predictor has
                # actually seen — exactly the pool the positives were
                # filtered to.  Sampling from the *full* network would
                # admit nodes that only appear at future timestamps,
                # whose degenerate (empty-history) features are trivial
                # to rank below any real pair and inflate the AUC.
                negatives = _random_negatives(
                    predictor.history.nodes,
                    int(len(positives) * negative_ratio),
                    {frozenset(p) for p in positives},
                    rng,
                )
                pairs = positives + negatives
                labels = np.array([1] * len(positives) + [0] * len(negatives))
                with span("stream.window", timestamp=stamp):
                    scores = predictor.score(pairs)
                auc = roc_auc_score(labels, scores)
                # live quality monitors: absolute window quality, its
                # distance from the run so far, the class balance scored,
                # and how far the score distribution itself moved.
                set_gauge("stream.last_window_auc", auc)
                set_gauge("stream.positive_rate", len(positives) / len(pairs))
                window_mean = float(np.mean(scores))
                if window_mean_scores:
                    set_gauge(
                        "stream.score_shift",
                        window_mean - float(np.mean(window_mean_scores)),
                    )
                window_mean_scores.append(window_mean)
                if result.aucs:
                    # drift: how far this window sits from the mean so
                    # far — a sustained negative gauge means the model is
                    # falling behind the stream.
                    drift = auc - result.mean_auc
                    set_gauge("stream.auc_drift", drift)
                    if drift_threshold is not None and -drift > drift_threshold:
                        incr("stream.drift_alerts")
                        alert = {
                            "timestamp": float(stamp),
                            "auc": float(auc),
                            "mean_auc": float(result.mean_auc),
                            "drift": float(-drift),
                            "threshold": float(drift_threshold),
                        }
                        result.alerts.append(alert)
                        emit_alert(
                            "auc_drift",
                            f"window t={stamp} AUC {auc:.3f} fell "
                            f"{-drift:.3f} below running mean "
                            f"{result.mean_auc:.3f}",
                            **alert,
                        )
                incr("stream.windows_scored")
                observe("stream.window_auc", auc)
                result.timestamps.append(stamp)
                result.aucs.append(auc)
                _LOG.debug(
                    "prequential window t=%s: AUC=%.3f over %d pairs "
                    "(running mean %.3f)",
                    stamp,
                    auc,
                    len(pairs),
                    result.mean_auc,
                )
            else:
                incr("stream.windows_skipped")
                result.skipped.append(stamp)
        predictor.observe(edges)
    heartbeat_tick("stream", done=len(stamps), total=len(stamps), force=True)
    _LOG.info(
        "prequential run complete: %d windows scored, %d skipped, mean AUC=%.3f",
        len(result.aucs),
        len(result.skipped),
        result.mean_auc,
    )
    return result


def _random_negatives(nodes, count, forbidden, rng) -> list[Pair]:
    out: list[Pair] = []
    attempts = 0
    while len(out) < count and attempts < 100 * max(count, 1):
        attempts += 1
        i, j = rng.integers(len(nodes)), rng.integers(len(nodes))
        if i == j:
            continue
        u, v = nodes[int(i)], nodes[int(j)]
        key = frozenset((u, v))
        if key in forbidden:
            continue
        forbidden.add(key)
        out.append((u, v))
    return out

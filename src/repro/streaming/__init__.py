"""Streaming (prequential) evaluation of link predictors."""

from repro.streaming.prequential import (
    PrequentialResult,
    StreamingSSFPredictor,
    prequential_evaluate,
)

__all__ = [
    "StreamingSSFPredictor",
    "prequential_evaluate",
    "PrequentialResult",
]

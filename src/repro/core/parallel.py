"""Multiprocess SSF extraction for large pair batches.

Per-link SSF extraction is embarrassingly parallel: each target link's
subgraph growth, structure combination and ordering touch only the
(read-only) history network.  This module fans a pair list out over a
``multiprocessing`` pool; the history is shipped once per worker
(initializer), not per pair.

What "shipped" means depends on the backend:

* ``"dict"`` — the :class:`~repro.graph.temporal.DynamicNetwork` is
  inherited through ``fork`` (or pickled per worker where only ``spawn``
  exists).  Worker start-up is O(|E|) on spawn platforms.
* ``"csr"`` — the frozen :class:`~repro.graph.csr.CSRSnapshot` is a
  handful of flat numpy arrays.  Under ``fork`` the child inherits the
  parent's pages copy-on-write (workers never write them, so start-up is
  O(1) regardless of |E|); without ``fork`` the arrays are exported once
  into a single :mod:`multiprocessing.shared_memory` block and each
  worker maps it zero-copy.  The per-link influence table for the batch's
  ``present_time`` is materialised in the parent *before* the pool starts
  so children share those pages too.

Fault tolerance (see docs/ROBUSTNESS.md): the batch is dispatched as
*indexed chunks* through ``imap_unordered``, so the parent knows exactly
which chunks have landed.  A chunk lost to a dead worker or stuck past
the :class:`~repro.robust.RetryPolicy` timeout only costs that chunk: the
pool is respawned and the missing chunks — nothing else — are re-run, up
to ``max_retries`` rounds, after which the parent extracts the stragglers
itself, sequentially.  Failed pairs are therefore never dropped, and
because retries are pure re-execution of a deterministic extraction, a
faulty run returns **bit-identical** features to a fault-free one.  When
the ``spawn``-path shared-memory export or attach fails (shm exhaustion,
permissions), the batch degrades to a pickled payload with a warning
instead of aborting.  Counters: ``robust.retries``, ``robust.fallbacks``.

Observability (see docs/OBSERVABILITY.md): the parent's observability
switches are forwarded to every worker through the pool initializer, and
each worker drains its process-local registry (as a mergeable delta) and
any recorded spans at every chunk boundary, piggybacked on the chunk
result.  The parent merges the payloads as results land, so one registry
snapshot / one Chrome trace describes the whole run — worker-side stage
timings included, across retried rounds and in-parent fallbacks.  The
counter ``parallel.pairs_extracted`` is bumped on every path (pool
chunk, sequential, parent fallback), so its merged value always equals
the number of pairs extracted.  When observability is disabled the
payload slot ships ``None`` and nothing else changes.

Results are order-preserving and bit-identical to the sequential path —
guaranteed by the differential tests — so callers can enable workers
freely.  For small batches the pool start-up costs more than it saves;
:func:`parallel_extract_batch` therefore falls back to sequential
extraction below :func:`min_pairs_for_pool` (default
:data:`MIN_PAIRS_FOR_POOL`, overridable per call or with the
``REPRO_MIN_PAIRS_FOR_POOL`` environment variable).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Any, Callable, Hashable, Sequence

import numpy as np

from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.csr import CSRSnapshot, SharedSnapshotHandle
from repro.graph.temporal import DynamicNetwork
from repro.obs import (
    enabled as obs_enabled,
    get_logger,
    heartbeat_tick,
    incr,
    observe,
    set_gauge,
    span,
)
from repro.obs.rtrace import TraceContext, activate, current_wire, rspan
from repro.obs.aggregate import (
    ObsState,
    apply_worker_obs_state,
    collect_worker_payload,
    merge_worker_payload,
    parent_obs_state,
)
from repro.robust import RetryPolicy
from repro.robust import faults

Node = Hashable
Pair = tuple[Node, Node]

#: (chunk index, offset of the chunk's first pair in the batch, pairs,
#: requesting trace context as a :data:`repro.obs.rtrace.TraceWire` —
#: contextvars do not cross the process boundary, so the wire rides the
#: task payload and the worker re-activates it around its chunk span)
ChunkTask = tuple[int, int, list[Pair], "tuple[str, str, str | None] | None"]

_LOG = get_logger("core.parallel")

#: below this many pairs, the pool start-up costs more than it saves
MIN_PAIRS_FOR_POOL = 64

# Per-worker state, installed by _initialize (once per worker).
class _WorkerState:
    """Per-process worker slot, filled by the pool initializer.

    A module-level container whose *attributes* are mutated — the worker
    path never rebinds module globals, so parent and child state can't
    be confused (lint R503).  ``init_error`` holds ``(failure point,
    message)`` when the initializer could not build the extractor;
    surfaced lazily through :class:`_WorkerInitError` so a failed init
    never kills the worker process (a dying initializer would make the
    pool respawn workers forever instead of reporting anything).
    """

    __slots__ = ("extractor", "modes", "init_seconds", "init_error")

    def __init__(self) -> None:
        self.extractor: "SSFExtractor | None" = None
        self.modes: "tuple[str, ...] | None" = None
        self.init_seconds: float = 0.0
        self.init_error: "tuple[str, str] | None" = None


_WORKER = _WorkerState()


class _WorkerInitError(RuntimeError):
    """A pool worker could not initialise; raised at first chunk use.

    ``args[0]`` is the failure point (``"shm_attach"`` or ``"error"``),
    ``args[1]`` the original message — picklable, so it crosses the
    process boundary intact.
    """

    @property
    def point(self) -> str:
        return str(self.args[0])


def min_pairs_for_pool(override: "int | None" = None) -> int:
    """The sequential-fallback threshold actually in effect.

    Resolution order: explicit ``override`` argument, then the
    ``REPRO_MIN_PAIRS_FOR_POOL`` environment variable, then the module
    default :data:`MIN_PAIRS_FOR_POOL`.
    """
    if override is not None:
        if override < 0:
            raise ValueError(f"min_pairs_for_pool must be >= 0, got {override}")
        return int(override)
    raw = os.environ.get("REPRO_MIN_PAIRS_FOR_POOL")
    return int(raw) if raw else MIN_PAIRS_FOR_POOL


def _initialize(
    kind: str,
    payload: "DynamicNetwork | CSRSnapshot | SharedSnapshotHandle",
    config: SSFConfig,
    present_time: float,
    modes: "tuple[str, ...] | None",
    obs_state: "ObsState | None" = None,
) -> None:
    """Install the per-worker extractor.

    ``kind`` says how the history arrived: ``"csr"`` (a snapshot reference
    inherited through fork — zero-copy — or pickled by spawn), ``"csr_shared"``
    (a :class:`SharedSnapshotHandle` to attach to), or ``"dict"`` (the
    DynamicNetwork itself, inherited or pickled by the start method).
    ``obs_state`` forwards the parent's observability switches so the
    worker's instrumentation records (and ships) exactly when the
    parent's does.

    Never raises: failures are recorded in ``_WORKER.init_error`` and
    re-raised per chunk, so the parent sees one clean error instead of a
    pool stuck respawning crashed workers.
    """
    if obs_state is not None:
        apply_worker_obs_state(obs_state)
    started = time.perf_counter()
    _WORKER.init_error = None
    with span("parallel.worker_init", kind=kind):
        try:
            if kind == "csr_shared":
                assert isinstance(payload, SharedSnapshotHandle)
                substrate: "DynamicNetwork | CSRSnapshot" = CSRSnapshot.from_shared(
                    payload
                )
                backend = "csr"
            elif kind == "csr":
                assert isinstance(payload, CSRSnapshot)
                substrate = payload
                backend = "csr"
            else:
                assert isinstance(payload, DynamicNetwork)
                substrate = payload
                backend = "dict"
            _WORKER.extractor = SSFExtractor(
                substrate, config, present_time=present_time, backend=backend
            )
            _WORKER.modes = modes
        except OSError as exc:
            # shared-memory attach failure (or an injected stand-in):
            # the parent degrades the payload and respawns the pool.
            point = "shm_attach" if kind == "csr_shared" else "error"
            _WORKER.init_error = (point, f"{type(exc).__name__}: {exc}")
            _WORKER.extractor = None
        except Exception as exc:  # pragma: no cover - defensive: unknown init failure
            _WORKER.init_error = ("error", f"{type(exc).__name__}: {exc}")
            _WORKER.extractor = None
    _WORKER.init_seconds = time.perf_counter() - started


def _extract_rows(
    extractor: SSFExtractor,
    pairs: "Sequence[Pair]",
    modes: "tuple[str, ...] | None",
) -> "list[np.ndarray | dict[str, np.ndarray]]":
    """One batched-driver call for a whole chunk, split back into rows.

    The row-list shape (one entry per pair, dict-of-rows under multi-mode)
    is what the chunk assembly and retry bookkeeping already speak; the
    rows are views into the batch driver's preallocated output matrices.
    """
    pair_list = list(pairs)
    if modes is None:
        return list(extractor.extract_batch(pair_list))
    multi = extractor.extract_multi_batch(pair_list, modes)
    return [
        {mode: multi[mode][i] for mode in modes}
        for i in range(len(pair_list))
    ]


def _extract_chunk(
    task: ChunkTask,
) -> "tuple[int, list[np.ndarray | dict[str, np.ndarray]], dict | None]":
    """Worker entry point: extract one indexed chunk of pairs.

    Returns ``(chunk index, rows, observability payload)``; the payload
    is the worker's metrics delta + recorded spans since its previous
    chunk (``None`` when observability is off), merged parent-side by
    :func:`repro.obs.aggregate.merge_worker_payload`.
    """
    index, offset, pairs, wire = task
    if _WORKER.init_error is not None:
        raise _WorkerInitError(*_WORKER.init_error)
    faults.maybe_slow_chunk(index)
    rows: "list[np.ndarray | dict[str, np.ndarray]]" = []
    with activate(TraceContext.from_wire(wire)):
        with rspan("parallel.worker_chunk", chunk=index, pairs=len(pairs)):
            # Crash probes are hoisted ahead of the extraction: a crash loses
            # the whole chunk either way (it is re-dispatched as a unit), so
            # probing every pair position up front preserves the injected
            # fault budgets while the chunk runs as ONE batched-driver call.
            for position in range(len(pairs)):
                faults.maybe_crash_worker(offset + position)
            assert _WORKER.extractor is not None
            rows = _extract_rows(_WORKER.extractor, pairs, _WORKER.modes)
            incr("parallel.pairs_extracted", len(pairs))
    return index, rows, collect_worker_payload()


def _init_probe(_index: int) -> tuple[int, float]:
    """Report ``(pid, init seconds)`` so the parent can observe start-up."""
    return os.getpid(), _WORKER.init_seconds


def parallel_extract_batch(
    network: "DynamicNetwork | CSRSnapshot",
    config: SSFConfig,
    pairs: Sequence[Pair],
    *,
    present_time: "float | None" = None,
    modes: "tuple[str, ...] | None" = None,
    workers: "int | None" = None,
    backend: str = "auto",
    min_pairs: "int | None" = None,
    chunksize: "int | None" = None,
    retry: "RetryPolicy | None" = None,
) -> "np.ndarray | dict[str, np.ndarray]":
    """Extract SSF vectors for many pairs, optionally in parallel.

    Args:
        network: the observed history — a :class:`DynamicNetwork` or a
            prebuilt :class:`CSRSnapshot` (build one per observed window
            and reuse it across batches to amortise the freeze cost).
        config: SSF hyper-parameters.
        pairs: target links.
        present_time: prediction time (defaults like
            :class:`~repro.core.feature.SSFExtractor`).
        modes: when given, extract these entry modes per pair (shared
            subgraph extraction) and return ``{mode: matrix}``; when
            ``None``, return a single feature matrix for the configured
            mode.
        workers: process count; ``None`` or ``<= 1`` runs sequentially,
            as does any batch smaller than the pool threshold.
        backend: ``"dict"``, ``"csr"``, or ``"auto"`` (see
            :func:`~repro.core.feature.resolve_backend`).  A
            ``CSRSnapshot`` input always runs the csr path.
        min_pairs: per-call override of the sequential-fallback threshold
            (see :func:`min_pairs_for_pool`).
        chunksize: per-call override of the pool chunk size; defaults to
            ``len(pairs) // (workers * 4)`` so each worker sees a few
            chunks for load balancing.  Must be ``>= 1`` when given.
        retry: fault-tolerance knobs (defaults to
            :meth:`~repro.robust.RetryPolicy.from_env`); see
            docs/ROBUSTNESS.md.
    """
    reference = SSFExtractor(network, config, present_time=present_time, backend=backend)
    resolved_present = reference.present_time
    resolved_backend = reference.backend
    pair_list = list(pairs)

    threshold = min_pairs_for_pool(min_pairs)
    use_pool = (
        workers is not None and workers > 1 and len(pair_list) >= threshold
    )
    started = time.perf_counter()
    if not use_pool:
        # requested parallelism that fell back to the sequential path is
        # worth counting — it usually means the batch was below the pool
        # threshold, which a sharding PR would want to know.
        if workers is not None and workers > 1:
            incr("parallel.sequential_fallbacks")
        heartbeat_tick("extract", done=0, total=len(pair_list))
        with span("parallel.extract_batch", pairs=len(pair_list), workers=1):
            if modes is None:
                result = reference.extract_batch(pair_list)
            else:
                result = reference.extract_multi_batch(pair_list, modes)
            incr("parallel.pairs_extracted", len(pair_list))
        elapsed = time.perf_counter() - started
        heartbeat_tick(
            "extract",
            done=len(pair_list),
            total=len(pair_list),
            pairs_per_second=len(pair_list) / elapsed if elapsed > 0 else None,
        )
        _record_throughput(pair_list, started, workers=1)
        return result

    assert workers is not None
    policy = retry if retry is not None else RetryPolicy.from_env()
    incr("parallel.pool_runs")
    set_gauge("parallel.workers", workers)
    _LOG.debug(
        "extracting %d pairs with %d worker processes (%s backend)",
        len(pair_list),
        workers,
        resolved_backend,
    )
    # REPRO_START_METHOD forces the pool start method — mainly so the
    # spawn/shared-memory transport is exercisable on fork platforms
    # (tests/robust does this; ops can use it to diagnose fork issues).
    forced_method = os.environ.get("REPRO_START_METHOD")
    if forced_method:
        context = mp.get_context(forced_method)
        fork_available = forced_method == "fork"
    else:
        fork_available = "fork" in mp.get_all_start_methods()
        context = mp.get_context("fork") if fork_available else mp.get_context()

    # Validate chunking BEFORE any shared-memory export, so a bad
    # argument cannot leak an shm block.  `chunksize is not None` (not
    # truthiness): an explicit 0 must hit the guard, not the default.
    if chunksize is not None:
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        chunk = chunksize
    else:
        chunk = max(1, len(pair_list) // (workers * 4))
    set_gauge("parallel.chunksize", chunk)

    # capture the dispatching request's trace context once: every chunk
    # of this batch belongs to the same request (serving path) or to no
    # request at all (offline batch), and the wire is what survives
    # pickling into fork/spawn workers
    wire = current_wire()
    tasks: list[ChunkTask] = [
        (index, start, pair_list[start : start + chunk], wire)
        for index, start in enumerate(range(0, len(pair_list), chunk))
    ]

    snapshot: "CSRSnapshot | None" = None
    handle: "SharedSnapshotHandle | None" = None
    init_args: "tuple[Any, ...]"
    obs_state = parent_obs_state()
    try:
        if resolved_backend == "csr":
            snapshot = reference.snapshot
            # Materialise the batch's influence table in the parent so forked
            # children share its pages instead of each recomputing it.
            snapshot.influence_table(resolved_present, config.theta)
            if fork_available:
                init_args = ("csr", snapshot, config, resolved_present, modes, obs_state)
            else:
                try:
                    handle = snapshot.to_shared()
                    init_args = (
                        "csr_shared", handle, config, resolved_present, modes, obs_state
                    )
                except OSError as exc:
                    init_args = _degraded_init_args(
                        network, snapshot, config, resolved_present, modes, obs_state, exc
                    )
        else:
            init_args = ("dict", network, config, resolved_present, modes, obs_state)

        with span(
            "parallel.extract_batch",
            pairs=len(pair_list),
            workers=workers,
            backend=resolved_backend,
        ):
            results: "dict[int, list[Any]]" = {}
            retries_left = policy.max_retries
            degraded = False

            # Heartbeat progress: chunks completed / total, with a
            # running pairs/sec over the whole batch.  Chunk indices are
            # counted once across rounds (retried chunks re-enter
            # ``tasks`` only while missing from ``results``), so the
            # reported ``done`` is monotone.
            n_chunks_total = len(tasks)
            progress = {"chunks": 0, "pairs": 0}

            def _on_chunk(n_pairs: int) -> None:
                progress["chunks"] += 1
                progress["pairs"] += n_pairs
                elapsed = time.perf_counter() - started
                heartbeat_tick(
                    "parallel_extract",
                    done=progress["chunks"],
                    total=n_chunks_total,
                    pairs_per_second=(
                        progress["pairs"] / elapsed if elapsed > 0 else None
                    ),
                )

            heartbeat_tick("parallel_extract", done=0, total=n_chunks_total)
            while tasks:
                received, init_error = _run_pool_round(
                    context, workers, init_args, tasks, policy.chunk_timeout,
                    on_chunk=_on_chunk,
                )
                results.update(received)
                tasks = [task for task in tasks if task[0] not in results]
                if not tasks:
                    break
                if (
                    init_error is not None
                    and init_error.point == "shm_attach"
                    and init_args[0] == "csr_shared"
                    and not degraded
                ):
                    # shm attach failed inside the workers: degrade the
                    # payload once, without spending a retry.
                    assert snapshot is not None
                    init_args = _degraded_init_args(
                        network, snapshot, config, resolved_present, modes,
                        obs_state, init_error,
                    )
                    degraded = True
                    continue
                if retries_left <= 0:
                    break
                retries_left -= 1
                incr("robust.retries", len(tasks))
                _LOG.warning(
                    "pool round lost %d/%d chunks (%s); respawning pool to "
                    "re-run them (%d of %d retries left)",
                    len(tasks),
                    len(tasks) + len(received),
                    init_error if init_error is not None else "timeout/worker death",
                    retries_left,
                    policy.max_retries,
                )
            if tasks:
                # Bounded retries exhausted: extract the stragglers in the
                # parent.  Slower, but complete and bit-identical — pairs
                # are never silently dropped.
                incr("robust.fallbacks")
                _LOG.warning(
                    "retries exhausted with %d chunks (%d pairs) outstanding; "
                    "extracting them sequentially in the parent",
                    len(tasks),
                    sum(len(task[2]) for task in tasks),
                )
                # runs in the dispatching thread, where the request's
                # context (if any) is still live — fallback spans parent
                # to the ORIGINAL request, not to a dead worker
                for index, _offset, chunk_pairs, _wire in tasks:
                    with rspan(
                        "parallel.fallback_chunk",
                        chunk=index,
                        pairs=len(chunk_pairs),
                    ):
                        results[index] = _extract_rows(
                            reference, chunk_pairs, modes
                        )
                    incr("parallel.pairs_extracted", len(chunk_pairs))
                    _on_chunk(len(chunk_pairs))
            rows = [row for index in sorted(results) for row in results[index]]
    finally:
        if handle is not None:
            handle.unlink()
    _record_throughput(pair_list, started, workers=workers)

    if modes is None:
        return (
            np.stack(rows)
            if rows
            else np.zeros((0, reference.feature_dim))
        )
    return _stack_multi(rows, modes, reference.feature_dim)


def _degraded_init_args(
    network: "DynamicNetwork | CSRSnapshot",
    snapshot: CSRSnapshot,
    config: SSFConfig,
    present_time: float,
    modes: "tuple[str, ...] | None",
    obs_state: ObsState,
    cause: Exception,
) -> "tuple[Any, ...]":
    """Worker payload when the shared-memory transport is unavailable.

    Degrades ``csr_shared`` to the ``dict`` payload (the network pickled
    per worker) when the caller handed us a :class:`DynamicNetwork`;
    a prebuilt snapshot has no dict twin, so it is shipped pickled on the
    csr path instead.  Either way the features stay bit-identical — only
    worker start-up cost changes.
    """
    incr("robust.fallbacks")
    incr("robust.shm_degradations")
    if isinstance(network, DynamicNetwork):
        _LOG.warning(
            "shared-memory transport unavailable (%s); degrading csr_shared -> "
            "dict worker payload",
            cause,
        )
        return ("dict", network, config, present_time, modes, obs_state)
    _LOG.warning(
        "shared-memory transport unavailable (%s); shipping the snapshot "
        "pickled per worker instead",
        cause,
    )
    return ("csr", snapshot, config, present_time, modes, obs_state)


def _run_pool_round(
    context: "mp.context.BaseContext",
    workers: int,
    init_args: "tuple[Any, ...]",
    tasks: "list[ChunkTask]",
    chunk_timeout: "float | None",
    on_chunk: "Callable[[int], None] | None" = None,
) -> "tuple[dict[int, list[Any]], _WorkerInitError | None]":
    """Run one pool round over ``tasks``; never raises for chunk loss.

    Returns the chunks that landed and, when worker initialisation
    failed, the first :class:`_WorkerInitError` (so the caller can
    degrade the payload).  Chunks missing from the result — lost to a
    dead worker, stuck past ``chunk_timeout``, or abandoned after an
    error — are simply absent; the caller decides whether to retry them.
    ``on_chunk(n_pairs)`` is invoked as each chunk lands (progress
    heartbeats).
    """
    received: "dict[int, list[Any]]" = {}
    init_error: "_WorkerInitError | None" = None
    pool = context.Pool(
        processes=workers,
        initializer=_initialize,
        initargs=init_args,
    )
    try:
        if obs_enabled():
            # the probe is observability-only: bound the wait so a pool
            # whose workers never come up cannot hang the round forever
            probe_timeout = 30.0 if chunk_timeout is None else min(chunk_timeout, 30.0)
            try:
                probes = dict(
                    pool.map_async(_init_probe, range(workers), chunksize=1).get(
                        probe_timeout
                    )
                )
                for seconds in probes.values():
                    observe("parallel.worker_init_seconds", seconds)
            except mp.TimeoutError:
                _LOG.warning(
                    "worker init probes timed out after %.1fs; skipping "
                    "start-up metrics for this round",
                    probe_timeout,
                )
        iterator = pool.imap_unordered(_extract_chunk, tasks, chunksize=1)
        for _ in range(len(tasks)):
            try:
                index, rows, obs_payload = iterator.next(chunk_timeout)
            except mp.TimeoutError:
                _LOG.warning(
                    "no chunk result within %.1fs; declaring the round hung",
                    chunk_timeout if chunk_timeout is not None else float("inf"),
                )
                break
            except _WorkerInitError as exc:
                init_error = exc
                break
            except Exception as exc:
                # A chunk failed inside a worker (or the pool machinery
                # broke).  Conservative recovery: abandon the round and
                # let the caller re-dispatch whatever is missing.
                _LOG.warning(
                    "pool round aborted by %s: %s", type(exc).__name__, exc
                )
                break
            received[index] = rows
            merge_worker_payload(obs_payload)
            if on_chunk is not None:
                on_chunk(len(rows))
    finally:
        pool.terminate()
        pool.join()
    return received, init_error


def _record_throughput(pair_list: Sequence[Pair], started: float, workers: int) -> None:
    """Batch-level pairs/s, total and per worker (parent-process view)."""
    if not obs_enabled() or not pair_list:
        return
    elapsed = time.perf_counter() - started
    if elapsed <= 0:
        return
    observe("parallel.pairs_per_run", len(pair_list))
    observe("parallel.pairs_per_second", len(pair_list) / elapsed)
    observe(
        "parallel.pairs_per_second_per_worker",
        len(pair_list) / elapsed / max(1, workers),
    )


def _stack_multi(
    rows: "Sequence[dict[str, np.ndarray]]",
    modes: "tuple[str, ...]",
    dim: int,
) -> dict[str, np.ndarray]:
    return {
        mode: (
            np.stack([row[mode] for row in rows])
            if rows
            else np.zeros((0, dim))
        )
        for mode in modes
    }

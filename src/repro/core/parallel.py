"""Multiprocess SSF extraction for large pair batches.

Per-link SSF extraction is embarrassingly parallel: each target link's
subgraph growth, structure combination and ordering touch only the
(read-only) history network.  This module fans a pair list out over a
``multiprocessing`` pool; the network and configuration are shipped once
per worker (initializer), not per pair.

Results are order-preserving and bit-identical to the sequential path —
guaranteed by the differential tests — so callers can enable workers
freely.  For small batches the fork/pickle overhead dominates;
:func:`parallel_extract_batch` therefore falls back to sequential
extraction below ``MIN_PAIRS_FOR_POOL``.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from typing import Hashable, Sequence

import numpy as np

from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.temporal import DynamicNetwork
from repro.obs import enabled as obs_enabled, get_logger, incr, observe, set_gauge, span

Node = Hashable
Pair = tuple[Node, Node]

_LOG = get_logger("core.parallel")

#: below this many pairs, the pool start-up costs more than it saves
MIN_PAIRS_FOR_POOL = 64

# Per-worker state, installed by _initialize (one pickle per worker).
_worker_extractor: "SSFExtractor | None" = None
_worker_modes: "tuple[str, ...] | None" = None


def _initialize(
    network: DynamicNetwork,
    config: SSFConfig,
    present_time: float,
    modes: "tuple[str, ...] | None",
) -> None:
    global _worker_extractor, _worker_modes
    _worker_extractor = SSFExtractor(network, config, present_time=present_time)
    _worker_modes = modes


def _extract_one(pair: Pair):
    assert _worker_extractor is not None
    if _worker_modes is None:
        return _worker_extractor.extract(*pair)
    return _worker_extractor.extract_multi(*pair, _worker_modes)


def parallel_extract_batch(
    network: DynamicNetwork,
    config: SSFConfig,
    pairs: Sequence[Pair],
    *,
    present_time: "float | None" = None,
    modes: "tuple[str, ...] | None" = None,
    workers: "int | None" = None,
) -> "np.ndarray | dict[str, np.ndarray]":
    """Extract SSF vectors for many pairs, optionally in parallel.

    Args:
        network: the observed history.
        config: SSF hyper-parameters.
        pairs: target links.
        present_time: prediction time (defaults like
            :class:`~repro.core.feature.SSFExtractor`).
        modes: when given, extract these entry modes per pair (shared
            subgraph extraction) and return ``{mode: matrix}``; when
            ``None``, return a single feature matrix for the configured
            mode.
        workers: process count; ``None`` or ``<= 1`` runs sequentially,
            as does any batch smaller than ``MIN_PAIRS_FOR_POOL``.
    """
    reference = SSFExtractor(network, config, present_time=present_time)
    resolved_present = reference.present_time
    pair_list = list(pairs)

    use_pool = (
        workers is not None
        and workers > 1
        and len(pair_list) >= MIN_PAIRS_FOR_POOL
    )
    started = time.perf_counter()
    if not use_pool:
        # requested parallelism that fell back to the sequential path is
        # worth counting — it usually means the batch was below the pool
        # threshold, which a sharding PR would want to know.
        if workers is not None and workers > 1:
            incr("parallel.sequential_fallbacks")
        with span("parallel.extract_batch", pairs=len(pair_list), workers=1):
            if modes is None:
                result = reference.extract_batch(pair_list)
            else:
                result = _stack_multi(
                    [reference.extract_multi(a, b, modes) for a, b in pair_list],
                    modes,
                    reference.feature_dim,
                )
        _record_throughput(pair_list, started, workers=1)
        return result

    incr("parallel.pool_runs")
    set_gauge("parallel.workers", workers)
    _LOG.debug(
        "extracting %d pairs with %d worker processes", len(pair_list), workers
    )
    context = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
    with span("parallel.extract_batch", pairs=len(pair_list), workers=workers):
        with context.Pool(
            processes=workers,
            initializer=_initialize,
            initargs=(network, config, resolved_present, modes),
        ) as pool:
            chunk = max(1, len(pair_list) // (workers * 4))
            rows = pool.map(_extract_one, pair_list, chunksize=chunk)
    _record_throughput(pair_list, started, workers=workers)

    if modes is None:
        return (
            np.stack(rows)
            if rows
            else np.zeros((0, reference.feature_dim))
        )
    return _stack_multi(rows, modes, reference.feature_dim)


def _record_throughput(pair_list, started: float, workers: int) -> None:
    """Batch-level pairs/s, total and per worker (parent-process view)."""
    if not obs_enabled() or not pair_list:
        return
    elapsed = time.perf_counter() - started
    if elapsed <= 0:
        return
    observe("parallel.pairs_per_run", len(pair_list))
    observe("parallel.pairs_per_second", len(pair_list) / elapsed)
    observe(
        "parallel.pairs_per_second_per_worker",
        len(pair_list) / elapsed / max(1, workers),
    )


def _stack_multi(rows, modes, dim) -> dict[str, np.ndarray]:
    return {
        mode: (
            np.stack([row[mode] for row in rows])
            if rows
            else np.zeros((0, dim))
        )
        for mode in modes
    }

"""Multiprocess SSF extraction for large pair batches.

Per-link SSF extraction is embarrassingly parallel: each target link's
subgraph growth, structure combination and ordering touch only the
(read-only) history network.  This module fans a pair list out over a
``multiprocessing`` pool; the history is shipped once per worker
(initializer), not per pair.

What "shipped" means depends on the backend:

* ``"dict"`` — the :class:`~repro.graph.temporal.DynamicNetwork` is
  inherited through ``fork`` (or pickled per worker where only ``spawn``
  exists).  Worker start-up is O(|E|) on spawn platforms.
* ``"csr"`` — the frozen :class:`~repro.graph.csr.CSRSnapshot` is a
  handful of flat numpy arrays.  Under ``fork`` the child inherits the
  parent's pages copy-on-write (workers never write them, so start-up is
  O(1) regardless of |E|); without ``fork`` the arrays are exported once
  into a single :mod:`multiprocessing.shared_memory` block and each
  worker maps it zero-copy.  The per-link influence table for the batch's
  ``present_time`` is materialised in the parent *before* the pool starts
  so children share those pages too.

Results are order-preserving and bit-identical to the sequential path —
guaranteed by the differential tests — so callers can enable workers
freely.  For small batches the pool start-up costs more than it saves;
:func:`parallel_extract_batch` therefore falls back to sequential
extraction below :func:`min_pairs_for_pool` (default
:data:`MIN_PAIRS_FOR_POOL`, overridable per call or with the
``REPRO_MIN_PAIRS_FOR_POOL`` environment variable).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from typing import Hashable, Sequence

import numpy as np

from repro.core.feature import SSFConfig, SSFExtractor
from repro.graph.csr import CSRSnapshot, SharedSnapshotHandle
from repro.graph.temporal import DynamicNetwork
from repro.obs import enabled as obs_enabled, get_logger, incr, observe, set_gauge, span

Node = Hashable
Pair = tuple[Node, Node]

_LOG = get_logger("core.parallel")

#: below this many pairs, the pool start-up costs more than it saves
MIN_PAIRS_FOR_POOL = 64

# Per-worker state, installed by _initialize (once per worker).
_worker_extractor: "SSFExtractor | None" = None
_worker_modes: "tuple[str, ...] | None" = None
_worker_init_seconds: float = 0.0


def min_pairs_for_pool(override: "int | None" = None) -> int:
    """The sequential-fallback threshold actually in effect.

    Resolution order: explicit ``override`` argument, then the
    ``REPRO_MIN_PAIRS_FOR_POOL`` environment variable, then the module
    default :data:`MIN_PAIRS_FOR_POOL`.
    """
    if override is not None:
        if override < 0:
            raise ValueError(f"min_pairs_for_pool must be >= 0, got {override}")
        return int(override)
    raw = os.environ.get("REPRO_MIN_PAIRS_FOR_POOL")
    return int(raw) if raw else MIN_PAIRS_FOR_POOL


def _initialize(
    kind: str,
    payload: "DynamicNetwork | CSRSnapshot | SharedSnapshotHandle",
    config: SSFConfig,
    present_time: float,
    modes: "tuple[str, ...] | None",
) -> None:
    """Install the per-worker extractor.

    ``kind`` says how the history arrived: ``"csr"`` (a snapshot reference
    inherited through fork — zero-copy), ``"csr_shared"`` (a
    :class:`SharedSnapshotHandle` to attach to), or ``"dict"`` (the
    DynamicNetwork itself, inherited or pickled by the start method).
    """
    global _worker_extractor, _worker_modes, _worker_init_seconds
    started = time.perf_counter()
    with span("parallel.worker_init", kind=kind):
        if kind == "csr_shared":
            substrate = CSRSnapshot.from_shared(payload)
            backend = "csr"
        elif kind == "csr":
            substrate = payload
            backend = "csr"
        else:
            substrate = payload
            backend = "dict"
        _worker_extractor = SSFExtractor(
            substrate, config, present_time=present_time, backend=backend
        )
        _worker_modes = modes
    _worker_init_seconds = time.perf_counter() - started


def _extract_one(pair: Pair) -> "np.ndarray | dict[str, np.ndarray]":
    assert _worker_extractor is not None
    if _worker_modes is None:
        return _worker_extractor.extract(*pair)
    return _worker_extractor.extract_multi(*pair, _worker_modes)


def _init_probe(_index: int) -> tuple[int, float]:
    """Report ``(pid, init seconds)`` so the parent can observe start-up."""
    return os.getpid(), _worker_init_seconds


def parallel_extract_batch(
    network: "DynamicNetwork | CSRSnapshot",
    config: SSFConfig,
    pairs: Sequence[Pair],
    *,
    present_time: "float | None" = None,
    modes: "tuple[str, ...] | None" = None,
    workers: "int | None" = None,
    backend: str = "auto",
    min_pairs: "int | None" = None,
    chunksize: "int | None" = None,
) -> "np.ndarray | dict[str, np.ndarray]":
    """Extract SSF vectors for many pairs, optionally in parallel.

    Args:
        network: the observed history — a :class:`DynamicNetwork` or a
            prebuilt :class:`CSRSnapshot` (build one per observed window
            and reuse it across batches to amortise the freeze cost).
        config: SSF hyper-parameters.
        pairs: target links.
        present_time: prediction time (defaults like
            :class:`~repro.core.feature.SSFExtractor`).
        modes: when given, extract these entry modes per pair (shared
            subgraph extraction) and return ``{mode: matrix}``; when
            ``None``, return a single feature matrix for the configured
            mode.
        workers: process count; ``None`` or ``<= 1`` runs sequentially,
            as does any batch smaller than the pool threshold.
        backend: ``"dict"``, ``"csr"``, or ``"auto"`` (see
            :func:`~repro.core.feature.resolve_backend`).  A
            ``CSRSnapshot`` input always runs the csr path.
        min_pairs: per-call override of the sequential-fallback threshold
            (see :func:`min_pairs_for_pool`).
        chunksize: per-call override of the pool chunk size; defaults to
            ``len(pairs) // (workers * 4)`` so each worker sees a few
            chunks for load balancing.
    """
    reference = SSFExtractor(network, config, present_time=present_time, backend=backend)
    resolved_present = reference.present_time
    resolved_backend = reference.backend
    pair_list = list(pairs)

    threshold = min_pairs_for_pool(min_pairs)
    use_pool = (
        workers is not None and workers > 1 and len(pair_list) >= threshold
    )
    started = time.perf_counter()
    if not use_pool:
        # requested parallelism that fell back to the sequential path is
        # worth counting — it usually means the batch was below the pool
        # threshold, which a sharding PR would want to know.
        if workers is not None and workers > 1:
            incr("parallel.sequential_fallbacks")
        with span("parallel.extract_batch", pairs=len(pair_list), workers=1):
            if modes is None:
                result = reference.extract_batch(pair_list)
            else:
                result = _stack_multi(
                    [reference.extract_multi(a, b, modes) for a, b in pair_list],
                    modes,
                    reference.feature_dim,
                )
        _record_throughput(pair_list, started, workers=1)
        return result

    incr("parallel.pool_runs")
    set_gauge("parallel.workers", workers)
    _LOG.debug(
        "extracting %d pairs with %d worker processes (%s backend)",
        len(pair_list),
        workers,
        resolved_backend,
    )
    fork_available = "fork" in mp.get_all_start_methods()
    context = mp.get_context("fork") if fork_available else mp.get_context()

    handle: "SharedSnapshotHandle | None" = None
    if resolved_backend == "csr":
        snapshot = reference.snapshot
        # Materialise the batch's influence table in the parent so forked
        # children share its pages instead of each recomputing it.
        snapshot.influence_table(resolved_present, config.theta)
        if fork_available:
            init_args = ("csr", snapshot, config, resolved_present, modes)
        else:
            handle = snapshot.to_shared()
            init_args = ("csr_shared", handle, config, resolved_present, modes)
    else:
        init_args = ("dict", network, config, resolved_present, modes)

    chunk = chunksize if chunksize else max(1, len(pair_list) // (workers * 4))
    if chunk < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunk}")
    set_gauge("parallel.chunksize", chunk)

    try:
        with span(
            "parallel.extract_batch",
            pairs=len(pair_list),
            workers=workers,
            backend=resolved_backend,
        ):
            with context.Pool(
                processes=workers,
                initializer=_initialize,
                initargs=init_args,
            ) as pool:
                if obs_enabled():
                    probes = dict(pool.map(_init_probe, range(workers), chunksize=1))
                    for seconds in probes.values():
                        observe("parallel.worker_init_seconds", seconds)
                rows = pool.map(_extract_one, pair_list, chunksize=chunk)
    finally:
        if handle is not None:
            handle.unlink()
    _record_throughput(pair_list, started, workers=workers)

    if modes is None:
        return (
            np.stack(rows)
            if rows
            else np.zeros((0, reference.feature_dim))
        )
    return _stack_multi(rows, modes, reference.feature_dim)


def _record_throughput(pair_list: Sequence[Pair], started: float, workers: int) -> None:
    """Batch-level pairs/s, total and per worker (parent-process view)."""
    if not obs_enabled() or not pair_list:
        return
    elapsed = time.perf_counter() - started
    if elapsed <= 0:
        return
    observe("parallel.pairs_per_run", len(pair_list))
    observe("parallel.pairs_per_second", len(pair_list) / elapsed)
    observe(
        "parallel.pairs_per_second_per_worker",
        len(pair_list) / elapsed / max(1, workers),
    )


def _stack_multi(
    rows: "Sequence[dict[str, np.ndarray]]",
    modes: "tuple[str, ...]",
    dim: int,
) -> dict[str, np.ndarray]:
    return {
        mode: (
            np.stack([row[mode] for row in rows])
            if rows
            else np.zeros((0, dim))
        )
        for mode in modes
    }

"""Temporal influence of links — Definitions 8–9 and Eq. 2–3 of the paper.

A historical link that emerged at time ``l_s`` retains influence

    f(l_t, l_s) = exp(-θ (l_t - l_s))                       (Eq. 2)

at the prediction time ``l_t``, with damping factor ``θ ∈ (0, 1)``
(the paper fixes ``θ = 0.5``).  All links collected by one structure link
sum into a single **normalized influence** (Eq. 3), which becomes the
adjacency-matrix entry of the normalized K-structure subgraph (Eq. 4).
"""

from __future__ import annotations

import math
from typing import Iterable

DEFAULT_THETA = 0.5


def link_influence(present_time: float, link_time: float, theta: float = DEFAULT_THETA) -> float:
    """Remaining influence ``f(l_t, l_s)`` of one link (Eq. 2).

    Args:
        present_time: the prediction time ``l_t``.
        link_time: the link's emergence time ``l_s`` (must not exceed
            ``present_time`` — influence does not flow backwards).
        theta: damping factor in ``(0, 1]``; larger decays faster.
    """
    _check_theta(theta)
    if link_time > present_time:
        raise ValueError(
            f"link time {link_time} is after the present time {present_time}"
        )
    return math.exp(-theta * (present_time - link_time))


def normalized_influence(
    timestamps: Iterable[float],
    present_time: float,
    theta: float = DEFAULT_THETA,
) -> float:
    """Normalized influence of a structure link (Eq. 3).

    Sums the decayed influence of every member-level link between two
    structure nodes.  Empty ``timestamps`` yield 0, matching the zero
    entry for absent structure links (Eq. 4).
    """
    _check_theta(theta)
    total = 0.0
    for ts in timestamps:
        if ts > present_time:
            raise ValueError(
                f"link time {ts} is after the present time {present_time}"
            )
        total += math.exp(-theta * (present_time - ts))
    return total


def _check_theta(theta: float) -> None:
    if not (0.0 < theta <= 1.0) or not math.isfinite(theta):
        raise ValueError(f"theta must be in (0, 1], got {theta}")

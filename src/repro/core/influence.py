"""Temporal influence of links — Definitions 8–9 and Eq. 2–3 of the paper.

A historical link that emerged at time ``l_s`` retains influence

    f(l_t, l_s) = exp(-θ (l_t - l_s))                       (Eq. 2)

at the prediction time ``l_t``, with damping factor ``θ ∈ (0, 1)``
(the paper fixes ``θ = 0.5``).  All links collected by one structure link
sum into a single **normalized influence** (Eq. 3), which becomes the
adjacency-matrix entry of the normalized K-structure subgraph (Eq. 4).
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

DEFAULT_THETA = 0.5


def link_influence(present_time: float, link_time: float, theta: float = DEFAULT_THETA) -> float:
    """Remaining influence ``f(l_t, l_s)`` of one link (Eq. 2).

    Args:
        present_time: the prediction time ``l_t``.
        link_time: the link's emergence time ``l_s`` (must not exceed
            ``present_time`` — influence does not flow backwards).
        theta: damping factor in ``(0, 1]``; larger decays faster.
    """
    _check_theta(theta)
    if link_time > present_time:
        raise ValueError(
            f"link time {link_time} is after the present time {present_time}"
        )
    return math.exp(-theta * (present_time - link_time))


def normalized_influence(
    timestamps: Iterable[float],
    present_time: float,
    theta: float = DEFAULT_THETA,
) -> float:
    """Normalized influence of a structure link (Eq. 3).

    Sums the decayed influence of every member-level link between two
    structure nodes.  Empty ``timestamps`` yield 0, matching the zero
    entry for absent structure links (Eq. 4).
    """
    _check_theta(theta)
    total = 0.0
    for ts in timestamps:
        if ts > present_time:
            raise ValueError(
                f"link time {ts} is after the present time {present_time}"
            )
        total += math.exp(-theta * (present_time - ts))
    return total


def influence_array(
    timestamps: "np.ndarray | Iterable[float]",
    present_time: float,
    theta: float = DEFAULT_THETA,
) -> np.ndarray:
    """Per-link decayed influence ``f(l_t, l_s)`` for a timestamp array.

    The batch form of :func:`link_influence`, used by the CSR backend to
    precompute one influence value per stored link (Eq. 2 evaluated once
    per snapshot instead of once per candidate pair).

    Bit-parity note: evaluated through ``math.exp`` on the *unique*
    timestamps and gathered back, not ``np.exp`` — numpy's vectorised
    ``exp`` may differ from the C library ``exp`` in the last ulp, and the
    CSR backend promises bit-identical sums against the ``math.exp``-based
    scalar path.  Real networks have far fewer distinct timestamps than
    links, so this costs O(unique) scalar ``exp`` calls.
    """
    _check_theta(theta)
    ts = np.ascontiguousarray(timestamps, dtype=np.float64)
    if ts.size == 0:
        return np.zeros(0, dtype=np.float64)
    if float(ts.max()) > present_time:
        raise ValueError(
            f"link time {float(ts.max())} is after the present time {present_time}"
        )
    unique, inverse = np.unique(ts, return_inverse=True)
    decayed = np.array(
        [math.exp(-theta * (present_time - u)) for u in unique.tolist()],
        dtype=np.float64,
    )
    return decayed[inverse]


def _check_theta(theta: float) -> None:
    if not (0.0 < theta <= 1.0) or not math.isfinite(theta):
        raise ValueError(f"theta must be in (0, 1], got {theta}")

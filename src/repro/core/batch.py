"""Batched multi-pair SSF extraction over the CSR backend.

`SSFExtractor.extract` pays its full pipeline cost per pair: a fresh BFS,
fresh combine scratch, a Python-loop Palette-WL, per-link influence sums
and per-pair span bookkeeping.  For the paper's motivating workload —
scoring *many* candidate links against one frozen snapshot — most of that
cost is shareable.  :class:`BatchExtractionEngine` runs a whole pair list
through the CSR pipeline at once:

* **Frontier-sharing BFS** — h-hop balls are grown per *endpoint* (one
  level ahead, lazily) and cached for the whole batch, so pairs touching
  the same hub expand its ball once (``batch.ball_reuse_hits`` /
  ``batch.ball_reuse_misses`` count the sharing).  A pair's joint ball at
  radius ``h`` is exactly the union of its two endpoint balls, and
  "exhausted" is exactly "the union stopped growing".  Growth is
  level-synchronous: every pair still growing at radius ``h`` is advanced
  together, so all structure combination at one radius happens in ONE
  cross-pair array pass (:meth:`BatchExtractionEngine._combine_many`)
  instead of one quadratic-ish pass per pair.
* **Arena buffers** — the |V|-sized BFS visited map and ball-membership
  stamp are allocated once per engine and reused across every pair of
  every batch via monotonically increasing token/epoch stamps (never
  cleared, never reallocated).
* **Vectorized Palette-WL** — all structure subgraphs of a batch are laid
  out flat and refined together by
  :func:`repro.core.palette_wl.palette_wl_order_many`; tie-break scores
  and SSF matrix entries are likewise evaluated as whole-batch array
  queries against one flat sorted structure-link index.
* **Memoized influence** — Eq. 4 decayed influences are read from one
  per-snapshot ``influence_table``; per-edge-slot influence sums are
  precomputed once per engine with the reference's exact left-to-right
  accumulation order, and multi-slot structure links are memoized across
  pairs.

The result is **bit-identical** to looping ``extract`` on the dict
backend (the untouched reference) — every floating-point reduction below
replays the reference operation sequence exactly (integer reductions are
always exact; the few genuinely sequential float sums stay scalar); the
randomized batched differential suite enforces it across all entry modes.

Arena lifetime rules: the engine (and its arena) lives as long as its
:class:`~repro.core.feature.SSFExtractor` — in pool workers that is the
whole worker lifetime, so chunks after the first allocate nothing
|V|-sized.  Ball caches are scoped per batch; slot-sum tables and
multi-slot memos are scoped per engine; per-pair structures are dropped
when their batch returns.
"""

from __future__ import annotations

import math
from typing import Hashable, Sequence

import numpy as np

from repro.core.palette_wl import (
    _gather_rows,
    flat_hop_distances,
    palette_wl_order_many,
)
from repro.graph.csr import (
    CSRSnapshot,
    concatenate_neighbor_slices,
    concatenate_neighbor_slices_with_slots,
)
from repro.obs import enabled as obs_enabled, incr, observe, observe_many, span

Node = Hashable
Pair = "tuple[Node, Node]"


class BatchArena:
    """Reusable |V|-sized work buffers, shared by every pair of an engine.

    Both maps are *token-stamped*: an entry is "set" only when it holds
    the current token/epoch, so reuse never needs a clearing pass.
    ``visited`` carries per-ball BFS ownership; ``stamp`` carries
    per-combine ball membership.
    """

    def __init__(self, n_nodes: int) -> None:
        self.visited = np.zeros(n_nodes, dtype=np.int64)
        self.stamp = np.zeros(n_nodes, dtype=np.int64)
        self._token = 0
        self._epoch = 0

    def next_token(self) -> int:
        """A fresh BFS ownership token for :attr:`visited`."""
        self._token += 1
        return self._token

    def next_epoch(self) -> int:
        """A fresh ball-membership epoch for :attr:`stamp`."""
        self._epoch += 1
        return self._epoch


_EMPTY_LEVEL = np.zeros(0, dtype=np.int64)


class _Ball:
    """Level-synchronously grown single-source BFS ball around one endpoint.

    ``levels[d]`` holds the (sorted) node ids first claimed by this ball at
    level ``d``; extension stops when a level comes back empty (the
    component is absorbed).  Balls share the arena's token-stamped
    ``visited`` map, so a concurrently growing ball may re-stamp a node
    this ball already claimed and cause it to be *re*-claimed at a later
    level — harmless, because pair unions deduplicate (the union over
    ``levels[0..d]`` is always exactly the radius-``d`` ball as a set)
    and redundant frontier work is bounded by one level per clobber.
    """

    __slots__ = ("levels", "token", "exhausted")

    def __init__(self, seed: int, token: int) -> None:
        self.levels: list[np.ndarray] = [np.array([seed], dtype=np.int64)]
        self.token = token
        self.exhausted = False

    def level(self, depth: int) -> np.ndarray:
        """The nodes claimed at ``depth`` (empty beyond the last level)."""
        if depth < len(self.levels):
            return self.levels[depth]
        return _EMPTY_LEVEL


class _Growth:
    """Level-synchronous growth state for one not-yet-finished pair."""

    __slots__ = ("row", "a_id", "b_id", "ball_a", "ball_b", "union", "prev_size")

    def __init__(self, row: int, a_id: int, b_id: int) -> None:
        self.row = row
        self.a_id = a_id
        self.b_id = b_id
        self.ball_a: "_Ball | None" = None
        self.ball_b: "_Ball | None" = None
        self.union = np.zeros(0, dtype=np.int64)
        self.prev_size = 2


class _PairJob:
    """One finalized pair: its combined structure subgraph in flat-array
    form (identical partition / adjacency / member order / slot order to
    :class:`~repro.core.structure.CSRStructureSubgraph`).

    ``codes_sorted``/``slots_sorted`` index the restricted member-level
    edge list by ``src_group * n_groups + dst_group`` so a structure
    link's member edge slots — in the reference's exact small-side scan
    order — are one ``searchsorted`` away.
    """

    __slots__ = (
        "row",
        "n_groups",
        "adj_indptr",
        "adj_dst",
        "member_indptr",
        "members_flat",
        "codes_sorted",
        "slots_sorted",
    )

    def __init__(
        self,
        row: int,
        n_groups: int,
        adj_indptr: np.ndarray,
        adj_dst: np.ndarray,
        member_indptr: np.ndarray,
        members_flat: np.ndarray,
        codes_sorted: np.ndarray,
        slots_sorted: np.ndarray,
    ) -> None:
        self.row = row
        self.n_groups = n_groups
        self.adj_indptr = adj_indptr
        self.adj_dst = adj_dst
        self.member_indptr = member_indptr
        self.members_flat = members_flat
        self.codes_sorted = codes_sorted
        self.slots_sorted = slots_sorted


class _PassState:
    """Merge-converged state of one cross-pair combine pass.

    Segment ``s`` (one pair's candidate subgraph) owns global node-rows
    ``row_offsets[s]:row_offsets[s+1]`` and global structure-group ids
    ``group_offsets[s]:group_offsets[s+1]``; ``grp_row`` maps every
    node-row to its (global) group.  The kept restricted member-level
    edges carry their owning node-row, destination node-row and directed
    snapshot edge slot.  ``adj_indptr``/``adj_dst`` is the final global
    group-level adjacency (rows ascending).
    """

    __slots__ = (
        "node_of_row",
        "seg_of_row",
        "row_offsets",
        "grp_row",
        "group_counts",
        "group_offsets",
        "kept_owner_row",
        "kept_dst_row",
        "kept_slots",
        "adj_indptr",
        "adj_dst",
        "_final",
    )

    def __init__(
        self,
        node_of_row: np.ndarray,
        seg_of_row: np.ndarray,
        row_offsets: np.ndarray,
        grp_row: np.ndarray,
        group_counts: np.ndarray,
        group_offsets: np.ndarray,
        kept_owner_row: np.ndarray,
        kept_dst_row: np.ndarray,
        kept_slots: np.ndarray,
        adj_indptr: np.ndarray,
        adj_dst: np.ndarray,
    ) -> None:
        self.node_of_row = node_of_row
        self.seg_of_row = seg_of_row
        self.row_offsets = row_offsets
        self.grp_row = grp_row
        self.group_counts = group_counts
        self.group_offsets = group_offsets
        self.kept_owner_row = kept_owner_row
        self.kept_dst_row = kept_dst_row
        self.kept_slots = kept_slots
        self.adj_indptr = adj_indptr
        self.adj_dst = adj_dst
        # lazy finalize arrays (built once, on the first _finalize call)
        self._final: "tuple[np.ndarray, ...] | None" = None

    def finalize_arrays(self) -> "tuple[np.ndarray, ...]":
        """Member CSR + per-segment sorted link codes, built lazily.

        Members of each group are its node ids ascending (the reference's
        ``np.sort`` per group); kept edges are stably sorted by
        ``(segment, local_src_group * G + local_dst_group)``, which within
        each segment replays the reference's stable argsort of its local
        codes — kept entries are generated in (owner node-row ascending,
        neighbour ascending) order, exactly the reference's scan order.
        """
        if self._final is None:
            n_groups_total = int(self.group_offsets[-1])
            member_order = np.lexsort((self.node_of_row, self.grp_row))
            member_indptr = np.searchsorted(
                self.grp_row[member_order],
                np.arange(n_groups_total + 1, dtype=np.int64),
            )
            member_nodes = self.node_of_row[member_order]
            kept_seg = self.seg_of_row[self.kept_owner_row]
            seg_sizes = self.group_counts[kept_seg]
            base = self.group_offsets[kept_seg]
            codes_local = (self.grp_row[self.kept_owner_row] - base) * seg_sizes + (
                self.grp_row[self.kept_dst_row] - base
            )
            max_g = int(self.group_counts.max()) if self.group_counts.size else 1
            code_order = np.argsort(
                kept_seg * (max_g * max_g) + codes_local, kind="stable"
            )
            kept_counts = np.bincount(kept_seg, minlength=self.group_counts.size)
            kept_bounds = np.zeros(self.group_counts.size + 1, dtype=np.int64)
            np.cumsum(kept_counts, out=kept_bounds[1:])
            self._final = (
                member_indptr,
                member_nodes,
                codes_local[code_order],
                self.kept_slots[code_order],
                kept_bounds,
            )
        return self._final


def _group_ragged_rows(
    bounds: np.ndarray,
    flat: np.ndarray,
    rows: np.ndarray,
    segs: np.ndarray,
    n_segs: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Segment-aware grouping of content-identical ragged rows.

    Returns ``(ids, counts)``: ``ids[t]`` is the 0-based group id of
    ``rows[t]`` *within its segment*, numbered in order of each group's
    first occurrence among that segment's rows (the array form of the
    reference's sequential dict-keyed grouping, run for every segment at
    once); ``counts[s]`` is segment ``s``'s group count.  Rows of
    different segments never group together.

    Rows are first bucketed by the cheap summary ``(segment, length, sum,
    first, last)``; a bucket of short rows (length <= 2) is fully
    determined by its summary, and the rare ambiguous bucket (equal
    summaries, length >= 3) is split exactly by raw bytes.  The result is
    therefore exact, never merely hash-probable.
    """
    count = int(rows.size)
    if count == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(n_segs, dtype=np.int64)
    lo = bounds[:-1][rows]
    hi = bounds[1:][rows]
    lengths = hi - lo
    running = np.zeros(flat.size + 1, dtype=np.int64)
    np.cumsum(flat, out=running[1:])
    sums = running[hi] - running[lo]
    firsts = np.full(count, -1, dtype=np.int64)
    lasts = np.full(count, -1, dtype=np.int64)
    nonempty = lengths > 0
    firsts[nonempty] = flat[lo[nonempty]]
    lasts[nonempty] = flat[hi[nonempty] - 1]

    order = np.lexsort((lasts, firsts, sums, lengths, segs))
    seg_s = segs[order]
    length_s = lengths[order]
    sum_s = sums[order]
    first_s = firsts[order]
    last_s = lasts[order]
    new_bucket = np.empty(count, dtype=bool)
    new_bucket[0] = True
    new_bucket[1:] = (
        (seg_s[1:] != seg_s[:-1])
        | (length_s[1:] != length_s[:-1])
        | (sum_s[1:] != sum_s[:-1])
        | (first_s[1:] != first_s[:-1])
        | (last_s[1:] != last_s[:-1])
    )
    bucket = np.empty(count, dtype=np.int64)
    bucket[order] = np.cumsum(new_bucket) - 1
    tokens = bucket

    starts = np.flatnonzero(new_bucket)
    ends = np.append(starts[1:], count)
    ambiguous = (ends - starts > 1) & (length_s[starts] >= 3)
    if bool(ambiguous.any()):
        tokens = bucket * (count + 1)
        for which in np.flatnonzero(ambiguous).tolist():
            members = order[starts[which] : ends[which]]
            sub: dict[bytes, int] = {}
            for local in members.tolist():
                key = flat[lo[local] : hi[local]].tobytes()
                tokens[local] = tokens[local] + sub.setdefault(key, len(sub))

    token_order = np.argsort(tokens, kind="stable")
    token_s = tokens[token_order]
    run_new = np.empty(count, dtype=bool)
    run_new[0] = True
    run_new[1:] = token_s[1:] != token_s[:-1]
    run_ids = np.cumsum(run_new) - 1
    # The first member of each token run (stable sort => smallest position
    # within ``rows``) is the group's representative; numbering groups by
    # representative position *within each segment* reproduces the
    # reference's first-occurrence numbering per segment.
    representatives = token_order[np.flatnonzero(run_new)]
    rep_seg = segs[representatives]
    rep_order = np.lexsort((representatives, rep_seg))
    ordered_seg = rep_seg[rep_order]
    n_groups = representatives.size
    first_in_seg = np.empty(n_groups, dtype=bool)
    first_in_seg[0] = True
    first_in_seg[1:] = ordered_seg[1:] != ordered_seg[:-1]
    seg_starts = np.flatnonzero(first_in_seg)
    run_lengths = np.append(seg_starts[1:], n_groups) - seg_starts
    rank_in_seg = np.arange(n_groups, dtype=np.int64) - np.repeat(
        seg_starts, run_lengths
    )
    rank = np.empty(n_groups, dtype=np.int64)
    rank[rep_order] = rank_in_seg
    out = np.empty(count, dtype=np.int64)
    out[token_order] = rank[run_ids]
    counts = np.bincount(rep_seg, minlength=n_segs)
    return out, counts


def _feature_positions(k: int) -> np.ndarray:
    """(k, k) map from 0-based (row, col) to Eq. 5 feature position."""
    from repro.core.feature import unfold_indices

    rows, cols = unfold_indices(k)
    positions = np.full((k, k), -1, dtype=np.int64)
    positions[rows, cols] = np.arange(rows.size, dtype=np.int64)
    return positions


def _log1p_each(values: np.ndarray) -> np.ndarray:
    """Element-wise ``math.log1p`` — NOT ``np.log1p``, whose results can
    differ in the last bit from the C library call the reference makes."""
    return np.fromiter(
        (math.log1p(v) for v in values.tolist()),
        dtype=np.float64,
        count=values.size,
    )


class BatchExtractionEngine:
    """Chunk-level batched SSF extraction against one CSR snapshot.

    Owned (lazily) by a csr-backend :class:`~repro.core.feature.SSFExtractor`;
    its ``extract_batch``/``extract_multi_batch`` delegate here.  See the
    module docstring for the sharing model and docs/PERFORMANCE.md for
    when batching wins.
    """

    def __init__(
        self,
        snapshot: CSRSnapshot,
        k: int,
        theta: float,
        present_time: float,
        compress: bool,
        ordering: str,
        max_hop: "int | None",
    ) -> None:
        self._snapshot = snapshot
        self._k = k
        self._theta = theta
        self._present = present_time
        self._compress = compress
        self._ordering = ordering
        self._max_hop = max_hop
        self._dim = k * (k - 1) // 2 - 1
        self._arena = BatchArena(snapshot.number_of_nodes())
        self._positions = _feature_positions(k)
        self._slot_sums: "np.ndarray | None" = None
        self._slot_ts_len: "np.ndarray | None" = None
        self._multi_slot_memo: dict[bytes, float] = {}
        self._sort_key_memo: "dict[bytes, tuple[str, ...]]" = {}
        self._single_key_memo: "dict[int, tuple[str, ...]]" = {}
        self._label_reprs: dict[int, str] = {}
        self._repr_rank: "np.ndarray | None" = None

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def extract_batch(self, pairs: "Sequence[Pair]", mode: str) -> np.ndarray:
        """Feature matrix ``(len(pairs), dim)`` for one entry mode."""
        with span(f"feature.{mode}", k=self._k, pairs=len(pairs)):
            return self._extract_all(pairs, (mode,), shared=False)[mode]

    def extract_multi_batch(
        self, pairs: "Sequence[Pair]", modes: "tuple[str, ...]"
    ) -> "dict[str, np.ndarray]":
        """Per-mode feature matrices from ONE shared subgraph pass."""
        return self._extract_all(pairs, modes, shared=True)

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def _extract_all(
        self,
        pairs: "Sequence[Pair]",
        modes: "tuple[str, ...]",
        shared: bool,
    ) -> "dict[str, np.ndarray]":
        out = {
            mode: np.zeros((len(pairs), self._dim), dtype=np.float64)
            for mode in modes
        }
        if not pairs:
            return out

        with span("subgraph_growth", pairs=len(pairs)):
            with span("structure_combination", pairs=len(pairs)):
                jobs = self._grow_and_combine(pairs)
        if not jobs:
            return out

        k = self._k
        n_segments = len(jobs)
        sizes = np.array([job.n_groups for job in jobs], dtype=np.int64)
        seg_indptr = np.zeros(n_segments + 1, dtype=np.int64)
        np.cumsum(sizes, out=seg_indptr[1:])
        total = int(seg_indptr[-1])
        seg_ids = np.repeat(np.arange(n_segments, dtype=np.int64), sizes)
        job_rows = np.array([job.row for job in jobs], dtype=np.int64)

        # Flat structure-graph adjacency (WL input) + member CSR + the
        # global sorted link-code index used by every influence query.
        degrees = np.concatenate(
            [job.adj_indptr[1:] - job.adj_indptr[:-1] for job in jobs]
        )
        nbr_indptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(degrees, out=nbr_indptr[1:])
        nbr_indices = np.concatenate(
            [job.adj_dst + seg_indptr[s] for s, job in enumerate(jobs)]
        )
        member_counts = np.concatenate(
            [job.member_indptr[1:] - job.member_indptr[:-1] for job in jobs]
        )
        member_indptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(member_counts, out=member_indptr[1:])
        members_flat = np.concatenate([job.members_flat for job in jobs])
        code_offsets = np.zeros(n_segments + 1, dtype=np.int64)
        np.cumsum(sizes * sizes, out=code_offsets[1:])
        codes_cat = np.concatenate(
            [job.codes_sorted + code_offsets[s] for s, job in enumerate(jobs)]
        )
        slots_cat = np.concatenate([job.slots_sorted for job in jobs])

        def influence_values(
            q_seg: np.ndarray, i_loc: np.ndarray, j_loc: np.ndarray
        ) -> np.ndarray:
            """Normalized influences of many (adjacent) structure links."""
            low = np.minimum(i_loc, j_loc)
            high = np.maximum(i_loc, j_loc)
            base = seg_indptr[q_seg]
            swap = member_counts[base + low] > member_counts[base + high]
            small = np.where(swap, high, low)
            large = np.where(swap, low, high)
            q_code = code_offsets[q_seg] + small * sizes[q_seg] + large
            lo = np.searchsorted(codes_cat, q_code, side="left")
            hi = np.searchsorted(codes_cat, q_code, side="right")
            values = np.zeros(q_code.size, dtype=np.float64)
            single = np.flatnonzero(hi - lo == 1)
            if single.size:
                values[single] = self._slot_sum_table()[
                    slots_cat[lo[single]]
                ]
            multi = np.flatnonzero(hi - lo > 1)
            if multi.size:
                values[multi] = self._multi_slot_influence_many(
                    slots_cat, lo[multi], hi[multi]
                )
            return values

        # Tie-break scores: two whole-batch passes (endpoint 0 then 1),
        # exactly the reference's per-endpoint subtraction order; indices
        # within one pass are distinct, so the fancy -= is exact.
        tie_break: "np.ndarray | None" = None
        if self._ordering != "hops":
            tie_break = np.zeros(total, dtype=np.float64)
            for endpoint in (0, 1):
                rows_e = seg_indptr[:-1] + endpoint
                deg_e = nbr_indptr[rows_e + 1] - nbr_indptr[rows_e]
                neighbors = _gather_rows(nbr_indptr, nbr_indices, rows_e)
                seg_rep = np.repeat(np.arange(n_segments, dtype=np.int64), deg_e)
                nb_loc = neighbors - seg_indptr[seg_rep]
                valid = nb_loc != endpoint
                q_seg = seg_rep[valid]
                tie_break[neighbors[valid]] -= influence_values(
                    q_seg,
                    nb_loc[valid],
                    np.full(q_seg.size, endpoint, dtype=np.int64),
                )

        # Residual WL ties sort by member-label reprs; the same hub groups
        # recur across pairs and batches, so keys are memoized per engine
        # (singleton groups — the common case — by member id, larger ones
        # by member-id bytes) with reprs cached per node id.
        labels = self._snapshot.labels
        key_memo = self._sort_key_memo
        single_memo = self._single_key_memo
        repr_memo = self._label_reprs
        bounds_list = member_indptr.tolist()
        members_list = members_flat.tolist()

        def sort_key(flat_index: int) -> "tuple[str, ...]":
            m_lo = bounds_list[flat_index]
            m_hi = bounds_list[flat_index + 1]
            if m_hi - m_lo == 1:
                m = members_list[m_lo]
                key = single_memo.get(m)
                if key is None:
                    text = repr_memo.get(m)
                    if text is None:
                        text = repr(labels[m])
                        repr_memo[m] = text
                    key = (text,)
                    single_memo[m] = key
                return key
            member_bytes = members_flat[m_lo:m_hi].tobytes()
            key = key_memo.get(member_bytes)
            if key is None:
                parts: "list[str]" = []
                for m in members_list[m_lo:m_hi]:
                    text = repr_memo.get(m)
                    if text is None:
                        text = repr(labels[m])
                        repr_memo[m] = text
                    parts.append(text)
                key = tuple(sorted(parts))
                key_memo[member_bytes] = key
            return key

        def singleton_ranks() -> np.ndarray:
            """Scalar sort-key ranks: singleton groups (the common case)
            key by ONE label repr, so its rank in the engine's repr order
            substitutes for the tuple in any all-singleton tied run."""
            rank = self._node_repr_rank()
            first = members_flat[member_indptr[:-1]]
            return np.where(
                member_counts == 1, rank[first], np.int64(-1)
            )

        orders = palette_wl_order_many(
            seg_indptr,
            nbr_indptr,
            nbr_indices,
            tie_break,
            sort_key,
            singleton_ranks,
        )

        sources = np.concatenate([seg_indptr[:-1], seg_indptr[:-1] + 1])
        distances = flat_hop_distances(nbr_indptr, nbr_indices, sources)

        # Top-K selection: orders are a 1-based permutation per segment,
        # so "order <= k" IS the reference's stable top-min(k, size) pick.
        selected_mask = orders <= k
        sel_sizes = np.minimum(sizes, k)
        sel_indptr = np.zeros(n_segments + 1, dtype=np.int64)
        np.cumsum(sel_sizes, out=sel_indptr[1:])
        sel_nodes = np.flatnonzero(selected_mask)
        sel_flat = np.empty(int(sel_indptr[-1]), dtype=np.int64)
        sel_flat[sel_indptr[seg_ids[sel_nodes]] + orders[sel_nodes] - 1] = sel_nodes
        position_of = np.where(selected_mask, orders, 0)

        # Present structure links among the selected nodes: one global
        # adjacency gather; (m, n) kept when n > m, minus the target link.
        deg_sel = nbr_indptr[sel_flat + 1] - nbr_indptr[sel_flat]
        gathered = _gather_rows(nbr_indptr, nbr_indices, sel_flat)
        m_orders = np.repeat(orders[sel_flat], deg_sel)
        src_rep = np.repeat(sel_flat, deg_sel)
        seg_rep = np.repeat(seg_ids[sel_flat], deg_sel)
        n_orders = position_of[gathered]
        present = (n_orders > m_orders) & ~((m_orders == 1) & (n_orders == 2))
        link_m = m_orders[present]
        link_n = n_orders[present]
        link_i = src_rep[present]
        link_j = gathered[present]
        link_seg = seg_rep[present]
        link_row = job_rows[link_seg]
        feature_cols = self._positions[link_m - 1, link_n - 1]

        compress = self._compress
        link_infl: "np.ndarray | None" = None
        link_dist: "np.ndarray | None" = None

        def influences() -> np.ndarray:
            nonlocal link_infl
            if link_infl is None:
                link_infl = influence_values(
                    link_seg,
                    link_i - seg_indptr[link_seg],
                    link_j - seg_indptr[link_seg],
                )
            return link_infl

        def distance_entries() -> np.ndarray:
            nonlocal link_dist
            if link_dist is None:
                d_m = distances[link_i]
                d_n = distances[link_j]
                both_unreachable = (d_m < 0) & (d_n < 0)
                nearest = np.where(
                    d_m < 0, d_n, np.where(d_n < 0, d_m, np.minimum(d_m, d_n))
                )
                link_dist = np.where(
                    both_unreachable, 0.0, 1.0 / np.maximum(nearest, 1)
                )
            return link_dist

        for mode in modes:
            tags: dict[str, object] = {"k": k, "pairs": len(pairs)}
            if shared:
                tags["shared"] = True
            with span(f"feature.{mode}", **tags):
                with span("influence_matrix", mode=mode, pairs=len(pairs)):
                    if mode == "binary":
                        values = np.ones(link_m.size, dtype=np.float64)
                    elif mode == "count":
                        values = self._link_counts(
                            link_seg,
                            link_i - seg_indptr[link_seg],
                            link_j - seg_indptr[link_seg],
                            seg_indptr,
                            sizes,
                            member_counts,
                            code_offsets,
                            codes_cat,
                            slots_cat,
                        )
                        if compress:
                            values = _log1p_each(values)
                    elif mode == "influence":
                        values = influences()
                        if compress:
                            values = _log1p_each(values)
                    elif mode == "distance":
                        values = distance_entries()
                    elif mode == "influence_distance":
                        values = influences() * distance_entries()
                    else:  # "temporal"
                        values = (1.0 + _log1p_each(influences())) * (
                            distance_entries()
                        )
                    out[mode][link_row, feature_cols] = values
        return out

    # ------------------------------------------------------------------
    # phase 1: level-synchronous growth + cross-pair combination
    # ------------------------------------------------------------------
    def _grow_and_combine(self, pairs: "Sequence[Pair]") -> "list[_PairJob]":
        snapshot = self._snapshot
        arena = self._arena
        k = self._k
        balls: dict[int, _Ball] = {}
        hits = 0
        misses = 0

        def ball_of(node_id: int) -> _Ball:
            nonlocal hits, misses
            ball = balls.get(node_id)
            if ball is None:
                misses += 1
                token = arena.next_token()
                arena.visited[node_id] = token
                ball = _Ball(node_id, token)
                balls[node_id] = ball
            else:
                hits += 1
            return ball

        active: "list[_Growth]" = []
        for row, (a, b) in enumerate(pairs):
            if not (snapshot.has_node(a) and snapshot.has_node(b)):
                continue
            a_id = snapshot.node_id(a)
            b_id = snapshot.node_id(b)
            if a_id == b_id:
                raise ValueError("target link end nodes must be distinct")
            growth = _Growth(row, a_id, b_id)
            growth.ball_a = ball_of(a_id)
            growth.ball_b = ball_of(b_id)
            active.append(growth)
        incr("batch.ball_reuse_hits", hits)
        incr("batch.ball_reuse_misses", misses)
        self._extend_balls([g.ball_a for g in active] + [g.ball_b for g in active], 1)
        init_parts: "list[np.ndarray]" = []
        init_owner: "list[int]" = []
        for index, growth in enumerate(active):
            assert growth.ball_a is not None and growth.ball_b is not None
            for part in (
                growth.ball_a.levels[0],
                growth.ball_a.level(1),
                growth.ball_b.levels[0],
                growth.ball_b.level(1),
            ):
                init_parts.append(part)
                init_owner.append(index)
        merged, bounds = self._merge_per_pair(init_parts, init_owner, len(active))
        for index, growth in enumerate(active):
            growth.union = (
                merged[bounds[index] : bounds[index + 1]]
                - index * self._snapshot.number_of_nodes()
            )

        jobs: "list[_PairJob]" = []
        h = 1
        while active:
            if obs_enabled():
                sizes = [int(g.union.size) for g in active]
                observe_many("subgraph.ball_size", sizes)
                observe_many(
                    "subgraph.frontier_size",
                    [size - g.prev_size for size, g in zip(sizes, active)],
                )
            candidates = [g for g in active if g.union.size >= k]
            state = self._combine_many(candidates) if candidates else None
            done_segments: "list[tuple[_Growth, int]]" = []
            pending: "list[tuple[_Growth, int | None]]" = []
            if state is not None:
                for segment, growth in enumerate(candidates):
                    if int(state.group_counts[segment]) >= k:
                        done_segments.append((growth, segment))
                    else:
                        pending.append((growth, segment))
            for growth in active:
                if growth.union.size < k:
                    pending.append((growth, None))

            forced: "list[tuple[_Growth, int | None]]" = []
            growing: "list[_Growth]" = []
            if pending:
                if self._max_hop is not None and h >= self._max_hop:
                    forced = pending
                else:
                    self._extend_balls(
                        [g.ball_a for g, _ in pending]
                        + [g.ball_b for g, _ in pending],
                        h + 1,
                    )
                    # One global merge decides both questions per pair —
                    # did the radius-(h+1) ball grow (else the pair is
                    # forced), and what is the new union if it did.
                    probe_parts: "list[np.ndarray]" = []
                    probe_owner: "list[int]" = []
                    for index, (growth, _segment) in enumerate(pending):
                        assert growth.ball_a is not None
                        assert growth.ball_b is not None
                        for part in (
                            growth.union,
                            growth.ball_a.level(h + 1),
                            growth.ball_b.level(h + 1),
                        ):
                            probe_parts.append(part)
                            probe_owner.append(index)
                    merged, bounds = self._merge_per_pair(
                        probe_parts, probe_owner, len(pending)
                    )
                    n_nodes = self._snapshot.number_of_nodes()
                    for index, (growth, segment) in enumerate(pending):
                        lo, hi = int(bounds[index]), int(bounds[index + 1])
                        if hi - lo == growth.union.size:
                            forced.append((growth, segment))
                        else:
                            growth.prev_size = int(growth.union.size)
                            growth.union = merged[lo:hi] - index * n_nodes
                            growing.append(growth)

            finishing = done_segments + [
                (growth, segment)
                for growth, segment in forced
                if segment is not None
            ]
            if state is not None and finishing:
                jobs.extend(
                    self._finalize(
                        state,
                        [(g.row, segment) for g, segment in finishing],
                    )
                )
            small = [growth for growth, segment in forced if segment is None]
            if small:
                small_state = self._combine_many(small)
                jobs.extend(
                    self._finalize(
                        small_state,
                        [(g.row, i) for i, g in enumerate(small)],
                    )
                )
            observe_many(
                "subgraph.growth_h", [h] * (len(done_segments) + len(forced))
            )
            active = growing
            h += 1
        jobs.sort(key=lambda job: job.row)
        return jobs

    def _merge_per_pair(
        self,
        parts: "list[np.ndarray]",
        owner: "list[int]",
        n_pairs: int,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Sorted-unique merge of many per-pair node-id piles at once.

        ``parts[i]`` belongs to pair ``owner[i]``; the merge of each
        pair's piles is one slice of the returned globally sorted key
        array (keys are ``pair * |V| + node`` — subtract the pair offset
        to recover node ids).  One global ``np.unique`` replaces a
        Python-level unique/union call per pair.
        """
        n_nodes = self._snapshot.number_of_nodes()
        sizes = np.array([part.size for part in parts], dtype=np.int64)
        cat = np.concatenate(parts) if parts else _EMPTY_LEVEL
        owners = np.repeat(np.array(owner, dtype=np.int64), sizes)
        merged = np.unique(owners * n_nodes + cat)
        bounds = np.searchsorted(
            merged, np.arange(n_pairs + 1, dtype=np.int64) * n_nodes
        )
        return merged, bounds

    def _extend_balls(self, requested: "list[_Ball | None]", depth: int) -> None:
        """Grow every requested ball to ``depth`` in shared array passes.

        All live balls sit at the same level (growth is level-synchronous),
        so one pass gathers the neighbours of EVERY ball's frontier at
        once, masks out nodes already stamped with their ball's token, and
        splits the per-(ball, node) unique survivors back into per-ball
        sorted levels.  Nodes claimed by two balls in the same pass keep
        only one stamp — see :class:`_Ball` for why the later re-claim
        this can cause is harmless.
        """
        snapshot = self._snapshot
        visited = self._arena.visited
        n_nodes = snapshot.number_of_nodes()
        seen: "set[int]" = set()
        need: "list[_Ball]" = []
        for ball in requested:
            if (
                ball is not None
                and ball.token not in seen
                and not ball.exhausted
                and len(ball.levels) - 1 < depth
            ):
                seen.add(ball.token)
                need.append(ball)
        while need:
            frontier_sizes = np.array(
                [ball.levels[-1].size for ball in need], dtype=np.int64
            )
            frontier = np.concatenate([ball.levels[-1] for ball in need])
            degrees = (
                snapshot.indptr[frontier + 1] - snapshot.indptr[frontier]
            ).astype(np.int64)
            owner = np.repeat(
                np.repeat(np.arange(len(need), dtype=np.int64), frontier_sizes),
                degrees,
            )
            neighbors = concatenate_neighbor_slices(snapshot, frontier)
            tokens = np.array([ball.token for ball in need], dtype=np.int64)
            fresh = visited[neighbors] != tokens[owner]
            claim = np.unique(owner[fresh] * n_nodes + neighbors[fresh])
            claim_owner = claim // n_nodes
            claim_node = claim % n_nodes
            visited[claim_node] = tokens[claim_owner]
            bounds = np.searchsorted(
                claim_owner, np.arange(len(need) + 1, dtype=np.int64)
            )
            for index, ball in enumerate(need):
                level = claim_node[bounds[index] : bounds[index + 1]]
                if level.size == 0:
                    ball.exhausted = True
                else:
                    ball.levels.append(level)
            need = [
                ball
                for ball in need
                if not ball.exhausted and len(ball.levels) - 1 < depth
            ]

    def _combine_many(self, growths: "list[_Growth]") -> _PassState:
        """Algorithm 1 over every candidate pair of one level, in shared
        array passes — same partition, adjacency, member order and slot
        order per pair as :func:`~repro.core.structure.combine_structures_csr`."""
        snapshot = self._snapshot
        n_nodes = snapshot.number_of_nodes()
        n_segments = len(growths)
        ball_list = [g.union for g in growths]
        ball_sizes = np.array([b.size for b in ball_list], dtype=np.int64)
        row_offsets = np.zeros(n_segments + 1, dtype=np.int64)
        np.cumsum(ball_sizes, out=row_offsets[1:])
        n_rows = int(row_offsets[-1])
        node_of_row = np.concatenate(ball_list)
        seg_of_row = np.repeat(np.arange(n_segments, dtype=np.int64), ball_sizes)
        # Per-segment sorted balls + disjoint per-segment key ranges give
        # one globally sorted haystack: membership AND destination row for
        # every gathered neighbour is a single searchsorted.
        haystack = seg_of_row * n_nodes + node_of_row

        flat, flat_slots = concatenate_neighbor_slices_with_slots(
            snapshot, node_of_row
        )
        counts = (
            snapshot.indptr[node_of_row + 1] - snapshot.indptr[node_of_row]
        ).astype(np.int64)
        entry_bounds = np.zeros(n_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=entry_bounds[1:])
        owner_row = np.repeat(np.arange(n_rows, dtype=np.int64), counts)
        probe = np.searchsorted(haystack, seg_of_row[owner_row] * n_nodes + flat)
        probe_c = np.minimum(probe, n_rows - 1)
        keep = haystack[probe_c] == seg_of_row[owner_row] * n_nodes + flat
        kept_dst_row = probe_c[keep]
        kept_owner_row = owner_row[keep]
        kept_slots = flat_slots[keep]
        keep_cum = np.zeros(flat.size + 1, dtype=np.int64)
        np.cumsum(keep, out=keep_cum[1:])
        kept_indptr = keep_cum[entry_bounds]

        a_ids = np.array([g.a_id for g in growths], dtype=np.int64)
        b_ids = np.array([g.b_id for g in growths], dtype=np.int64)
        seg_range = np.arange(n_segments, dtype=np.int64)
        row_a = np.searchsorted(haystack, seg_range * n_nodes + a_ids)
        row_b = np.searchsorted(haystack, seg_range * n_nodes + b_ids)
        is_end_row = np.zeros(n_rows, dtype=bool)
        is_end_row[row_a] = True
        is_end_row[row_b] = True
        rest_rows = np.flatnonzero(~is_end_row)

        # Round 0: group non-end nodes by restricted-neighbour content per
        # segment (ascending node order = ascending row order), then pin
        # the end nodes to local groups 0/1.
        rest_ids, extra_counts = _group_ragged_rows(
            kept_indptr, kept_dst_row, rest_rows, seg_of_row[rest_rows], n_segments
        )
        group_counts = extra_counts + 2
        group_offsets = np.zeros(n_segments + 1, dtype=np.int64)
        np.cumsum(group_counts, out=group_offsets[1:])
        grp_row = np.empty(n_rows, dtype=np.int64)
        grp_row[row_a] = group_offsets[:-1]
        grp_row[row_b] = group_offsets[:-1] + 1
        grp_row[rest_rows] = group_offsets[seg_of_row[rest_rows]] + 2 + rest_ids

        # Global merge loop: every segment iterates together.  A converged
        # segment is at a fixed point of the deterministic merge update, so
        # recomputing it is a no-op; per-segment rounds are tracked for the
        # metrics and the global stop condition.  A merge strictly reduces
        # a segment's group count, so "counts unchanged" == "no merge".
        rounds_of = np.zeros(n_segments, dtype=np.int64)
        round_index = 0
        while True:
            round_index += 1
            n_groups_total = int(group_offsets[-1])
            seg_of_group = np.repeat(seg_range, group_counts)
            src_group = grp_row[kept_owner_row]
            dst_group = grp_row[kept_dst_row]
            distinct = src_group != dst_group
            codes = src_group[distinct] * n_groups_total + dst_group[distinct]
            unique_codes = np.unique(codes)
            adj_src = unique_codes // n_groups_total
            adj_dst = unique_codes % n_groups_total
            adj_indptr = np.searchsorted(
                adj_src, np.arange(n_groups_total + 1, dtype=np.int64)
            )
            is_end_group = np.zeros(n_groups_total, dtype=bool)
            is_end_group[group_offsets[:-1]] = True
            is_end_group[group_offsets[:-1] + 1] = True
            merge_rows = np.flatnonzero(~is_end_group)
            merged_ids, merged_extra = _group_ragged_rows(
                adj_indptr,
                adj_dst,
                merge_rows,
                seg_of_group[merge_rows],
                n_segments,
            )
            new_counts = merged_extra + 2
            converged = new_counts == group_counts
            fresh = converged & (rounds_of == 0)
            rounds_of[fresh] = round_index
            if bool(converged.all()):
                break
            new_offsets = np.zeros(n_segments + 1, dtype=np.int64)
            np.cumsum(new_counts, out=new_offsets[1:])
            remap = np.empty(n_groups_total, dtype=np.int64)
            remap[group_offsets[:-1]] = new_offsets[:-1]
            remap[group_offsets[:-1] + 1] = new_offsets[:-1] + 1
            remap[merge_rows] = (
                new_offsets[seg_of_group[merge_rows]] + 2 + merged_ids
            )
            grp_row = remap[grp_row]
            group_counts = new_counts
            group_offsets = new_offsets

        if obs_enabled():
            observe_many(
                "structure.merge_rounds",
                [int(rounds_of[s]) for s in range(n_segments)],
            )
            nodes_in = [int(ball_sizes[s]) for s in range(n_segments)]
            nodes_out = [int(group_counts[s]) for s in range(n_segments)]
            observe_many("structure.nodes_in", nodes_in)
            observe_many("structure.nodes_out", nodes_out)
            observe_many(
                "structure.compression_ratio",
                [i / o for i, o in zip(nodes_in, nodes_out)],
            )
        return _PassState(
            node_of_row,
            seg_of_row,
            row_offsets,
            grp_row,
            group_counts,
            group_offsets,
            kept_owner_row,
            kept_dst_row,
            kept_slots,
            adj_indptr,
            adj_dst,
        )

    def _finalize(
        self, state: _PassState, items: "list[tuple[int, int]]"
    ) -> "list[_PairJob]":
        """Cut per-pair structure arrays out of a pass for finishing pairs."""
        (
            member_indptr,
            member_nodes,
            codes_sorted,
            slots_sorted,
            kept_bounds,
        ) = state.finalize_arrays()
        adj_indptr = state.adj_indptr
        adj_dst = state.adj_dst
        group_offsets = state.group_offsets
        group_counts = state.group_counts
        jobs: "list[_PairJob]" = []
        for row, segment in items:
            g_lo = int(group_offsets[segment])
            g_hi = g_lo + int(group_counts[segment])
            a_lo = int(adj_indptr[g_lo])
            a_hi = int(adj_indptr[g_hi])
            m_lo = int(member_indptr[g_lo])
            m_hi = int(member_indptr[g_hi])
            k_lo = int(kept_bounds[segment])
            k_hi = int(kept_bounds[segment + 1])
            jobs.append(
                _PairJob(
                    row,
                    g_hi - g_lo,
                    adj_indptr[g_lo : g_hi + 1] - a_lo,
                    adj_dst[a_lo:a_hi] - g_lo,
                    member_indptr[g_lo : g_hi + 1] - m_lo,
                    member_nodes[m_lo:m_hi],
                    codes_sorted[k_lo:k_hi],
                    slots_sorted[k_lo:k_hi],
                )
            )
        return jobs

    # ------------------------------------------------------------------
    # phase 3 helpers: influence + counts
    # ------------------------------------------------------------------
    def _slot_sum_table(self) -> np.ndarray:
        """Per-edge-slot influence sums, each accumulated left to right
        from 0.0 exactly as the reference's scalar loop does."""
        if self._slot_sums is None:
            snapshot = self._snapshot
            table = snapshot.influence_table(self._present, self._theta)
            ts_indptr = snapshot.ts_indptr
            lengths = ts_indptr[1:] - ts_indptr[:-1]
            sums = np.zeros(lengths.size, dtype=np.float64)
            max_len = int(lengths.max()) if lengths.size else 0
            for position in range(max_len):
                rows = np.flatnonzero(lengths > position)
                sums[rows] += table[ts_indptr[rows] + position]
            self._slot_sums = sums
        return self._slot_sums

    def _slot_lengths(self) -> np.ndarray:
        if self._slot_ts_len is None:
            ts_indptr = self._snapshot.ts_indptr
            self._slot_ts_len = (ts_indptr[1:] - ts_indptr[:-1]).astype(np.int64)
        return self._slot_ts_len

    def _node_repr_rank(self) -> np.ndarray:
        """Rank of each node's label repr among the snapshot's distinct
        reprs — a scalar stand-in for the 1-tuple sort keys of singleton
        groups (equal reprs share a rank, so WL-tie stability holds)."""
        if self._repr_rank is None:
            labels = self._snapshot.labels
            reprs = [repr(labels[m]) for m in range(len(labels))]
            rank_of = {
                text: rank for rank, text in enumerate(sorted(set(reprs)))
            }
            self._repr_rank = np.fromiter(
                (rank_of[text] for text in reprs),
                dtype=np.int64,
                count=len(reprs),
            )
        return self._repr_rank

    def _multi_slot_influence_many(
        self, slots_cat: np.ndarray, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        """Reference multi-slot influences of many queries at once.

        The reference concatenates each query's per-slot event lists,
        stable-sorts by timestamp and accumulates scalar left-to-right.
        Here all uncached queries share ONE ragged gather and ONE stable
        lexsort, and the accumulation runs column-wise — position ``p``
        adds every query's ``p``-th event in a single vectorized ``+=``,
        replaying each query's scalar add sequence bit-exactly.  Results
        are memoized per slot-set across batches (same snapshot table).
        """
        out = np.empty(lo.size, dtype=np.float64)
        memo = self._multi_slot_memo
        lo_list = lo.tolist()
        hi_list = hi.tolist()
        miss_rows: "list[int]" = []
        miss_keys: "list[bytes]" = []
        for t in range(lo.size):
            key = slots_cat[lo_list[t] : hi_list[t]].tobytes()
            cached = memo.get(key)
            if cached is None:
                miss_rows.append(t)
                miss_keys.append(key)
            else:
                out[t] = cached
        if not miss_rows:
            return out
        snapshot = self._snapshot
        table = snapshot.influence_table(self._present, self._theta)
        ts_indptr = snapshot.ts_indptr
        rows = np.array(miss_rows, dtype=np.int64)
        n_slots = hi[rows] - lo[rows]
        slot_offsets = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(n_slots, out=slot_offsets[1:])
        slot_pos = np.arange(int(slot_offsets[-1]), dtype=np.int64)
        slot_pos -= np.repeat(slot_offsets[:-1], n_slots)
        flat_slots = slots_cat[np.repeat(lo[rows], n_slots) + slot_pos]
        slot_owner = np.repeat(np.arange(rows.size, dtype=np.int64), n_slots)
        ev_counts = ts_indptr[flat_slots + 1] - ts_indptr[flat_slots]
        ev_offsets = np.zeros(flat_slots.size + 1, dtype=np.int64)
        np.cumsum(ev_counts, out=ev_offsets[1:])
        ev_pos = np.arange(int(ev_offsets[-1]), dtype=np.int64)
        ev_pos -= np.repeat(ev_offsets[:-1], ev_counts)
        ev_src = np.repeat(ts_indptr[flat_slots], ev_counts) + ev_pos
        ev_owner = np.repeat(slot_owner, ev_counts)
        # Stable (owner, ts) sort == per-query argsort(ts, kind="stable")
        # over the slot-order concatenation the reference builds.
        order = np.lexsort((self._snapshot.ts[ev_src], ev_owner))
        values_sorted = table[ev_src[order]]
        per_query = np.bincount(ev_owner, minlength=rows.size)
        query_offsets = np.zeros(rows.size + 1, dtype=np.int64)
        np.cumsum(per_query, out=query_offsets[1:])
        sums = np.zeros(rows.size, dtype=np.float64)
        max_events = int(per_query.max()) if rows.size else 0
        for position in range(max_events):
            active = np.flatnonzero(per_query > position)
            sums[active] += values_sorted[query_offsets[active] + position]
        out[rows] = sums
        for key, value in zip(miss_keys, sums.tolist()):
            memo[key] = value
        return out

    def _link_counts(
        self,
        q_seg: np.ndarray,
        i_loc: np.ndarray,
        j_loc: np.ndarray,
        seg_indptr: np.ndarray,
        sizes: np.ndarray,
        member_counts: np.ndarray,
        code_offsets: np.ndarray,
        codes_cat: np.ndarray,
        slots_cat: np.ndarray,
    ) -> np.ndarray:
        """Member-level link counts (exact integer sums) of many links."""
        low = np.minimum(i_loc, j_loc)
        high = np.maximum(i_loc, j_loc)
        base = seg_indptr[q_seg]
        swap = member_counts[base + low] > member_counts[base + high]
        small = np.where(swap, high, low)
        large = np.where(swap, low, high)
        q_code = code_offsets[q_seg] + small * sizes[q_seg] + large
        lo = np.searchsorted(codes_cat, q_code, side="left")
        hi = np.searchsorted(codes_cat, q_code, side="right")
        prefix = np.zeros(slots_cat.size + 1, dtype=np.int64)
        np.cumsum(self._slot_lengths()[slots_cat], out=prefix[1:])
        return (prefix[hi] - prefix[lo]).astype(np.float64)


def batch_extract(
    network: "object",
    config: "object" = None,
    pairs: "Sequence[Pair] | None" = None,
    *,
    present_time: "float | None" = None,
    modes: "tuple[str, ...] | None" = None,
    backend: str = "auto",
    extractor: "object | None" = None,
) -> "np.ndarray | dict[str, np.ndarray]":
    """Extract SSF vectors for many pairs through the batched driver.

    Thin convenience wrapper over
    :meth:`~repro.core.feature.SSFExtractor.extract_batch` /
    :meth:`~repro.core.feature.SSFExtractor.extract_multi_batch` that
    plumbs ``backend`` like every other entry point: ``"csr"`` runs the
    batched engine, ``"dict"`` the untouched reference loop, ``"auto"``
    resolves by network size (see
    :func:`~repro.core.feature.resolve_backend`).

    ``extractor`` is the serving fast path: pass a prebuilt
    :class:`~repro.core.feature.SSFExtractor` to reuse its batched
    engine (arena buffers, palette memos, slot-sum caches) across calls
    instead of paying engine construction per batch.  The extractor's
    own network/config/present_time govern the extraction; they must
    agree with any also-given ``network``/``config``/``present_time``
    (mismatches raise rather than silently extracting against the wrong
    substrate).
    """
    from repro.core.feature import SSFConfig, SSFExtractor, resolve_backend

    if extractor is not None:
        assert isinstance(extractor, SSFExtractor)
        if config is not None and extractor.config != config:
            raise ValueError(
                "extractor reuse: extractor config does not match the "
                "config argument"
            )
        if (
            present_time is not None
            and float(present_time) != extractor.present_time
        ):
            raise ValueError(
                f"extractor reuse: extractor present_time "
                f"{extractor.present_time} != requested {present_time}"
            )
        pair_list = list(pairs) if pairs is not None else []
        if modes is None:
            return extractor.extract_batch(pair_list)
        return extractor.extract_multi_batch(pair_list, modes)

    ssf_config = config if config is not None else SSFConfig()
    assert isinstance(ssf_config, SSFConfig)
    resolved = resolve_backend(network, backend)  # type: ignore[arg-type]
    if resolved == "dict":
        extractor = SSFExtractor(
            network,  # type: ignore[arg-type]
            ssf_config,
            present_time=present_time,
            backend="dict",
        )
    elif resolved == "csr":
        extractor = SSFExtractor(
            network,  # type: ignore[arg-type]
            ssf_config,
            present_time=present_time,
            backend="csr",
        )
    else:  # pragma: no cover - resolve_backend never returns anything else
        raise ValueError(f"unresolvable backend {backend!r}")
    pair_list = list(pairs) if pairs is not None else []
    if modes is None:
        return extractor.extract_batch(pair_list)
    return extractor.extract_multi_batch(pair_list, modes)

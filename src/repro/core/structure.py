"""Structure combination — Algorithm 1 and Definitions 4–6 of the paper.

Nodes of an h-hop subgraph that have *identical neighbour sets* play the
same topological role, so the paper merges each such equivalence class into
a single **structure node**; the merge is repeated on the resulting graph
until no two (non-end) structure nodes share a neighbourhood.  Links
between members of two structure nodes are collected into one **structure
link** that keeps every underlying timestamp, which later feeds the
normalized influence (Def. 8).

Two interchangeable implementations are provided, differing only in the
substrate they read:

* :func:`combine_structures` + :class:`StructureSubgraph` — the faithful
  reference over the dict-of-dict :class:`~repro.graph.temporal.DynamicNetwork`;
* :func:`combine_structures_csr` + :class:`CSRStructureSubgraph` — the
  array path over a frozen :class:`~repro.graph.csr.CSRSnapshot`: member
  neighbourhoods are sorted int slices, the round-0 grouping key is the
  raw bytes of each restricted neighbour slice (canonical because slices
  are id-sorted), and structure-link timestamps/influences are gathered
  straight from the snapshot's flat arrays.  Output is guaranteed
  bit-identical to the dict path (same partition, same sorted timestamps,
  same influence sums) — enforced by the backend differential tests.

Implementation notes:

* The two end nodes of the target link are always kept as singleton
  structure nodes (Def. 4, last sentence), even if another node happens to
  share their neighbourhood.
* Nodes merged into one structure node are never adjacent to each other:
  ``Γ(u) = Γ(v)`` and ``u ~ v`` would imply the self-loop ``u ∈ Γ(u)``,
  and the substrate forbids self-loops.  The same argument holds at every
  merge round, so structure links never need a self-loop case.
* Neither implementation copies the h-hop subgraph; both keep a reference
  to the parent substrate plus the node set ``V_h`` and resolve
  member-level timestamps lazily.  This is what makes per-link SSF
  extraction affordable on dense networks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence, TypeVar

import numpy as np

from repro.core.influence import normalized_influence
from repro.graph.csr import CSRSnapshot, concatenate_neighbor_slices
from repro.graph.temporal import DynamicNetwork
from repro.obs import enabled as obs_enabled, observe, span

Node = Hashable

#: opaque group-member type: node labels on the dict path, int ids on csr
_Member = TypeVar("_Member")


@dataclass(frozen=True)
class StructureNode:
    """A maximal set of nodes with a common neighbourhood (Def. 4)."""

    members: frozenset[Node]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a structure node must have at least one member")

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node: Node) -> bool:
        return node in self.members

    def representative(self) -> Node:
        """A deterministic member (smallest by repr), for display."""
        return min(self.members, key=repr)

    def sort_key(self) -> tuple[str, ...]:
        """Deterministic, label-based key used for tie-breaking orders."""
        return tuple(sorted(repr(m) for m in self.members))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ",".join(sorted(repr(m) for m in self.members))
        return f"StructureNode({{{inner}}})"


class _StructureTopology:
    """Structure-level graph queries shared by both substrates.

    Subclasses must set ``self._adjacency`` (tuple of frozensets of int
    structure-node indices) and implement :meth:`number_of_structure_nodes`
    and :meth:`sort_key`.
    """

    _adjacency: tuple[frozenset[int], ...]
    # per-index sorted-neighbour cache, created on first use (class-level
    # None default so subclasses need no cooperative __init__)
    _adjacency_sorted: "list[tuple[int, ...] | None] | None" = None

    def number_of_structure_nodes(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def sort_key(self, index: int) -> tuple[str, ...]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def endpoint_indices(self) -> tuple[int, int]:
        return (0, 1)

    def number_of_structure_links(self) -> int:
        return sum(len(adj) for adj in self._adjacency) // 2

    def adjacency(self, index: int) -> frozenset[int]:
        """Indices of structure nodes linked to ``index``."""
        return self._adjacency[index]

    def adjacency_sorted(self, index: int) -> tuple[int, ...]:
        """Neighbour indices of ``index`` as a sorted tuple (cached).

        The Palette-WL refinement sums floating hash contributions over a
        node's neighbours; iterating a *sorted* tuple makes that summation
        order canonical instead of depending on set-iteration order.
        """
        cache = self._adjacency_sorted
        if cache is None:
            cache = [None] * len(self._adjacency)
            self._adjacency_sorted = cache
        entry = cache[index]
        if entry is None:
            entry = tuple(sorted(self._adjacency[index]))
            cache[index] = entry
        return entry

    def has_structure_link(self, i: int, j: int) -> bool:
        return j in self._adjacency[i]

    def structure_link_pairs(self) -> Iterable[tuple[int, int]]:
        """All structure links as ``(i, j)`` with ``i < j``."""
        for i, adj in enumerate(self._adjacency):
            for j in adj:
                if i < j:
                    yield (i, j)

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def distances_to_target(self) -> list[int]:
        """Hop distance of each structure node to the target link.

        Measured in the structure subgraph itself, as a multi-source BFS
        from the two end structure nodes (indices 0 and 1); both end nodes
        are at distance 0.  Unreachable structure nodes (possible when the
        two end nodes live in different components) get ``-1``.
        """
        dist = [-1] * self.number_of_structure_nodes()
        dist[0] = dist[1] = 0
        frontier = [0, 1]
        depth = 0
        while frontier:
            depth += 1
            nxt: list[int] = []
            for idx in frontier:
                for nb in self._adjacency[idx]:
                    if dist[nb] == -1:
                        dist[nb] = depth
                        nxt.append(nb)
            frontier = nxt
        return dist

    def weighted_distances_from(
        self, start: int, edge_length: "Callable[[int, int], float]"
    ) -> list[float]:
        """Dijkstra distances from one structure node.

        ``edge_length(i, j)`` must return a positive length for the
        structure link ``(i, j)``.  The paper's footnote 1 sets lengths to
        the *reciprocal normalized influence*, so strongly/recently
        connected structure nodes are "closer" — which is what lets the
        ordering prioritise the most active structure on dense networks
        where plain hop distances are all ties.

        Unreachable structure nodes get ``math.inf``.
        """
        if not 0 <= start < self.number_of_structure_nodes():
            raise IndexError(f"structure node index {start} out of range")
        dist = [math.inf] * self.number_of_structure_nodes()
        dist[start] = 0.0
        heap: list[tuple[float, int]] = [(0.0, start)]
        while heap:
            d, idx = heapq.heappop(heap)
            if d > dist[idx]:
                continue
            for nb in self._adjacency[idx]:
                length = edge_length(idx, nb)
                if length <= 0:
                    raise ValueError(
                        f"edge_length({idx}, {nb}) must be > 0, got {length}"
                    )
                candidate = d + length
                if candidate < dist[nb]:
                    dist[nb] = candidate
                    heapq.heappush(heap, (candidate, nb))
        return dist

    def distances_from(self, start: int) -> list[int]:
        """Hop distances from one structure node to all others (BFS).

        Unreachable structure nodes get ``-1``.  Used to build the
        Palette-WL initial ordering from *both* end nodes separately: a
        structure node adjacent to both ends (a common neighbour) must
        rank before one adjacent to a single end, which the single
        min-distance of :meth:`distances_to_target` cannot express.
        """
        if not 0 <= start < self.number_of_structure_nodes():
            raise IndexError(f"structure node index {start} out of range")
        dist = [-1] * self.number_of_structure_nodes()
        dist[start] = 0
        frontier = [start]
        depth = 0
        while frontier:
            depth += 1
            nxt: list[int] = []
            for idx in frontier:
                for nb in self._adjacency[idx]:
                    if dist[nb] == -1:
                        dist[nb] = depth
                        nxt.append(nb)
            frontier = nxt
        return dist


class StructureSubgraph(_StructureTopology):
    """An h-hop structure subgraph ``G_S`` (Def. 6), dict substrate.

    Structure nodes are addressed by integer index; indices 0 and 1 are
    always the end-node singletons ``{a}`` and ``{b}`` of the target link.

    Built by :func:`combine_structures`; not intended to be constructed
    directly except in tests.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        node_set: frozenset[Node],
        member_sets: Sequence[frozenset[Node]],
        adjacency: Sequence[frozenset[int]],
        endpoints: tuple[Node, Node],
    ) -> None:
        self._network = network
        self._node_set = node_set
        self._nodes = tuple(StructureNode(m) for m in member_sets)
        self._adjacency = tuple(adjacency)
        self._endpoints = endpoints
        self._member_of = {
            member: idx for idx, ms in enumerate(member_sets) for member in ms
        }
        self._timestamp_cache: dict[tuple[int, int], tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # structure-level queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[StructureNode, ...]:
        """All structure nodes; ``nodes[0]``/``nodes[1]`` are the end nodes."""
        return self._nodes

    @property
    def endpoints(self) -> tuple[Node, Node]:
        """The (member-level) end nodes of the target link."""
        return self._endpoints

    def number_of_structure_nodes(self) -> int:
        return len(self._nodes)

    def sort_key(self, index: int) -> tuple[str, ...]:
        return self._nodes[index].sort_key()

    def structure_node_of(self, member: Node) -> int:
        """Index of the structure node containing ``member``."""
        try:
            return self._member_of[member]
        except KeyError:
            raise KeyError(f"node {member!r} not in this structure subgraph") from None

    # ------------------------------------------------------------------
    # member-level (timestamp) queries — resolved lazily, cached
    # ------------------------------------------------------------------
    def link_timestamps(self, i: int, j: int) -> tuple[float, ...]:
        """Sorted timestamps of every member-level link between structure
        nodes ``i`` and ``j`` (the set ``E_k`` of Def. 5)."""
        if i == j:
            raise ValueError("structure nodes have no internal links")
        key = (i, j) if i < j else (j, i)
        cached = self._timestamp_cache.get(key)
        if cached is not None:
            return cached
        if j not in self._adjacency[i]:
            stamps: tuple[float, ...] = ()
        else:
            small, large = self._nodes[key[0]].members, self._nodes[key[1]].members
            if len(small) > len(large):
                small, large = large, small
            collected: list[float] = []
            for member in small:
                row = self._network.neighbor_view(member)
                for other in large:
                    ts = row.get(other)
                    if ts:
                        collected.extend(ts)
            collected.sort()
            stamps = tuple(collected)
        self._timestamp_cache[key] = stamps
        return stamps

    def link_count(self, i: int, j: int) -> int:
        """Number of member-level links between structure nodes ``i``/``j``."""
        return len(self.link_timestamps(i, j))

    def link_influence(self, i: int, j: int, present_time: float, theta: float) -> float:
        """Normalized influence (Eq. 3) of the structure link ``(i, j)``."""
        return normalized_influence(self.link_timestamps(i, j), present_time, theta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StructureSubgraph(structure_nodes={len(self._nodes)}, "
            f"structure_links={self.number_of_structure_links()})"
        )


class CSRStructureSubgraph(_StructureTopology):
    """An h-hop structure subgraph over a :class:`CSRSnapshot` substrate.

    Same index contract as :class:`StructureSubgraph` (end nodes at 0/1);
    members are stored as sorted int-id arrays and member-level timestamps
    / influences are gathered from the snapshot's flat arrays on demand.
    """

    def __init__(
        self,
        snapshot: CSRSnapshot,
        node_ids: np.ndarray,
        member_ids: Sequence[np.ndarray],
        adjacency: Sequence[frozenset[int]],
        endpoint_ids: tuple[int, int],
    ) -> None:
        self._snapshot = snapshot
        self._node_ids = node_ids
        self._member_ids = tuple(member_ids)
        self._adjacency = tuple(adjacency)
        self._endpoint_ids = endpoint_ids
        self._nodes_cache: "tuple[StructureNode, ...] | None" = None
        self._sort_key_cache: dict[int, tuple[str, ...]] = {}
        self._slot_cache: dict[tuple[int, int], np.ndarray] = {}
        self._timestamp_cache: dict[tuple[int, int], tuple[float, ...]] = {}
        self._influence_cache: dict[tuple[int, int, float, float], float] = {}

    # ------------------------------------------------------------------
    # structure-level queries
    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> CSRSnapshot:
        return self._snapshot

    @property
    def nodes(self) -> tuple[StructureNode, ...]:
        """Label-level :class:`StructureNode` views (built lazily)."""
        if self._nodes_cache is None:
            labels = self._snapshot.labels
            self._nodes_cache = tuple(
                StructureNode(frozenset(labels[int(m)] for m in ms))
                for ms in self._member_ids
            )
        return self._nodes_cache

    @property
    def endpoints(self) -> tuple[Node, Node]:
        labels = self._snapshot.labels
        return (labels[self._endpoint_ids[0]], labels[self._endpoint_ids[1]])

    def number_of_structure_nodes(self) -> int:
        return len(self._member_ids)

    def member_ids(self, index: int) -> np.ndarray:
        """Sorted int ids of the members of structure node ``index``."""
        return self._member_ids[index]

    def sort_key(self, index: int) -> tuple[str, ...]:
        """Label-based tie-break key, identical to the dict backend's
        ``StructureNode.sort_key`` (computed lazily per index)."""
        key = self._sort_key_cache.get(index)
        if key is None:
            labels = self._snapshot.labels
            key = tuple(
                sorted(repr(labels[int(m)]) for m in self._member_ids[index])
            )
            self._sort_key_cache[index] = key
        return key

    def structure_node_of(self, member: Node) -> int:
        """Index of the structure node containing member *label*."""
        member_id = self._snapshot.node_id(member)
        for idx, ms in enumerate(self._member_ids):
            pos = int(np.searchsorted(ms, member_id))
            if pos < ms.size and int(ms[pos]) == member_id:
                return idx
        raise KeyError(f"node {member!r} not in this structure subgraph")

    # ------------------------------------------------------------------
    # member-level queries — gathered from the snapshot arrays, cached
    # ------------------------------------------------------------------
    def _link_slots(self, key: tuple[int, int]) -> np.ndarray:
        """Directed edge slots covering every member-level link of one
        structure link (scanned from the smaller member side)."""
        cached = self._slot_cache.get(key)
        if cached is not None:
            return cached
        small, large = self._member_ids[key[0]], self._member_ids[key[1]]
        if small.size > large.size:
            small, large = large, small
        if small.size == 1 and large.size == 1:
            # singleton groups (the overwhelmingly common case): one probe
            slot = self._snapshot.edge_slot(int(small[0]), int(large[0]))
            slots = (
                np.array([slot], dtype=np.int64)
                if slot >= 0
                else np.zeros(0, dtype=np.int64)
            )
            self._slot_cache[key] = slots
            return slots
        indptr = self._snapshot.indptr
        indices = self._snapshot.indices
        found: list[np.ndarray] = []
        for u in small.tolist():
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            row = indices[lo:hi]
            pos = np.searchsorted(row, large)
            valid = pos < row.size
            pos = pos[valid]
            hits = row[pos] == large[valid]
            if hits.any():
                found.append(lo + pos[hits])
        slots = (
            np.concatenate(found) if found else np.zeros(0, dtype=np.int64)
        )
        self._slot_cache[key] = slots
        return slots

    def link_timestamps(self, i: int, j: int) -> tuple[float, ...]:
        """Sorted timestamps of every member-level link between structure
        nodes ``i`` and ``j`` — bit-identical to the dict backend's."""
        if i == j:
            raise ValueError("structure nodes have no internal links")
        key = (i, j) if i < j else (j, i)
        cached = self._timestamp_cache.get(key)
        if cached is not None:
            return cached
        if j not in self._adjacency[i]:
            stamps: tuple[float, ...] = ()
        else:
            slots = self._link_slots(key)
            ts_indptr = self._snapshot.ts_indptr
            ts = self._snapshot.ts
            parts = [
                ts[ts_indptr[s] : ts_indptr[s + 1]] for s in slots.tolist()
            ]
            if parts:
                merged = np.sort(np.concatenate(parts), kind="stable")
                stamps = tuple(merged.tolist())
            else:
                stamps = ()
        self._timestamp_cache[key] = stamps
        return stamps

    def link_count(self, i: int, j: int) -> int:
        if i == j:
            raise ValueError("structure nodes have no internal links")
        if j not in self._adjacency[i]:
            return 0
        key = (i, j) if i < j else (j, i)
        slots = self._link_slots(key)
        ts_indptr = self._snapshot.ts_indptr
        return int((ts_indptr[slots + 1] - ts_indptr[slots]).sum())

    def link_influence(self, i: int, j: int, present_time: float, theta: float) -> float:
        """Normalized influence (Eq. 3) from the precomputed table.

        Gathers the per-link decayed influences and accumulates them in
        ascending-timestamp order with a scalar loop — the exact operation
        sequence of :func:`~repro.core.influence.normalized_influence`, so
        the sum is bit-identical to the dict backend's.
        """
        if i == j:
            raise ValueError("structure nodes have no internal links")
        key = (i, j) if i < j else (j, i)
        cache_key = (key, present_time, theta)
        cached = self._influence_cache.get(cache_key)
        if cached is not None:
            return cached
        if j not in self._adjacency[i]:
            value = 0.0
        else:
            slots = self._link_slots(key)
            table = self._snapshot.influence_table(present_time, theta)
            ts_indptr = self._snapshot.ts_indptr
            ts = self._snapshot.ts
            if slots.size == 1:
                # single edge slot: its segment is already ascending
                s = int(slots[0])
                total = 0.0
                for v in table[int(ts_indptr[s]) : int(ts_indptr[s + 1])].tolist():
                    total += v
                value = total
            elif slots.size:
                ts_parts: list[np.ndarray] = []
                influence_parts: list[np.ndarray] = []
                for s in slots.tolist():
                    lo, hi = int(ts_indptr[s]), int(ts_indptr[s + 1])
                    ts_parts.append(ts[lo:hi])
                    influence_parts.append(table[lo:hi])
                all_ts = np.concatenate(ts_parts)
                all_influence = np.concatenate(influence_parts)
                order = np.argsort(all_ts, kind="stable")
                total = 0.0
                for v in all_influence[order].tolist():
                    total += v
                value = total
            else:
                value = 0.0
        self._influence_cache[cache_key] = value
        return value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRStructureSubgraph(structure_nodes={len(self._member_ids)}, "
            f"structure_links={self.number_of_structure_links()})"
        )


def combine_structures(
    network: DynamicNetwork,
    node_set: Iterable[Node],
    a: Node,
    b: Node,
) -> StructureSubgraph:
    """Algorithm 1: collapse an h-hop subgraph into its structure subgraph.

    Args:
        network: the parent dynamic network.
        node_set: the h-hop node set ``V_h`` (must contain ``a`` and ``b``).
        a: first end node of the target link.
        b: second end node of the target link.

    Returns:
        The fixed point of repeated same-neighbourhood merging, with the
        end nodes pinned to structure-node indices 0 and 1.
    """
    nodes = frozenset(node_set)
    if a not in nodes or b not in nodes:
        raise ValueError("node_set must contain both end nodes of the target link")
    if a == b:
        raise ValueError("target link end nodes must be distinct")

    with span("structure_combination"):
        result = _combine_structures(network, nodes, a, b)
    if obs_enabled():
        structure_nodes = result.number_of_structure_nodes()
        observe("structure.nodes_in", len(nodes))
        observe("structure.nodes_out", structure_nodes)
        observe("structure.compression_ratio", len(nodes) / structure_nodes)
    return result


def _combine_structures(
    network: DynamicNetwork,
    nodes: frozenset[Node],
    a: Node,
    b: Node,
) -> StructureSubgraph:
    # Member-level neighbourhoods restricted to V_h.  Nodes are visited in
    # repr order: labels are arbitrary hashables (possibly mixed types), so
    # repr is the only total order available, and any fixed order makes
    # group numbering independent of the hash seed.
    ordered_nodes = sorted(nodes, key=repr)
    restricted: dict[Node, frozenset[Node]] = {}
    for n in ordered_nodes:
        row = network.neighbor_view(n)
        if len(row) <= len(nodes):
            restricted[n] = frozenset(m for m in row if m in nodes)
        else:
            restricted[n] = frozenset(m for m in nodes if m in row)

    # Round 0: group non-end nodes by exact neighbourhood; end nodes pinned.
    group_of: dict[Node, int] = {a: 0, b: 1}
    groups: list[list[Node]] = [[a], [b]]
    by_key: dict[frozenset[Node], int] = {}
    for n in ordered_nodes:
        if n == a or n == b:
            continue
        key = restricted[n]
        idx = by_key.get(key)
        if idx is None:
            idx = len(groups)
            by_key[key] = idx
            groups.append([n])
        else:
            groups[idx].append(n)
        group_of[n] = idx

    # Iterate the merge at the structure level until a fixed point
    # (the paper argues one round usually suffices; chains like
    # leaf -> merged-hub patterns genuinely need a second round).
    rounds = 0
    while True:
        rounds += 1
        adjacency = _group_adjacency(groups, group_of, restricted)
        merged_groups, merged_of, changed = _merge_once(groups, adjacency)
        if not changed:
            break
        group_of = {
            member: merged_of[old_idx]
            for member, old_idx in group_of.items()
        }
        groups = merged_groups

    observe("structure.merge_rounds", rounds)
    member_sets = [frozenset(g) for g in groups]
    adjacency = _group_adjacency(groups, group_of, restricted)
    return StructureSubgraph(
        network=network,
        node_set=nodes,
        member_sets=member_sets,
        adjacency=[frozenset(adj) for adj in adjacency],
        endpoints=(a, b),
    )


def combine_structures_csr(
    snapshot: CSRSnapshot,
    node_ids: np.ndarray,
    a_id: int,
    b_id: int,
) -> CSRStructureSubgraph:
    """Algorithm 1 over a CSR snapshot — array form of
    :func:`combine_structures`, producing the identical partition.

    Args:
        snapshot: the frozen observed window.
        node_ids: sorted int ids of the h-hop node set ``V_h``.
        a_id: int id of the first end node (must be in ``node_ids``).
        b_id: int id of the second end node.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if a_id == b_id:
        raise ValueError("target link end nodes must be distinct")
    if not (_sorted_contains(node_ids, a_id) and _sorted_contains(node_ids, b_id)):
        raise ValueError("node_set must contain both end nodes of the target link")

    with span("structure_combination"):
        result = _combine_structures_csr(snapshot, node_ids, a_id, b_id)
    if obs_enabled():
        structure_nodes = result.number_of_structure_nodes()
        observe("structure.nodes_in", len(node_ids))
        observe("structure.nodes_out", structure_nodes)
        observe("structure.compression_ratio", len(node_ids) / structure_nodes)
    return result


def _sorted_contains(sorted_ids: np.ndarray, value: int) -> bool:
    pos = int(np.searchsorted(sorted_ids, value))
    return pos < sorted_ids.size and int(sorted_ids[pos]) == value


def _combine_structures_csr(
    snapshot: CSRSnapshot,
    node_ids: np.ndarray,
    a_id: int,
    b_id: int,
) -> CSRStructureSubgraph:
    n = snapshot.number_of_nodes()
    in_set = np.zeros(n, dtype=bool)
    in_set[node_ids] = True

    # Member-level neighbourhoods restricted to V_h: each a sorted int
    # slice, so its raw bytes are a canonical grouping key (the
    # "sorted neighbour-slice hash" — dict keys hash the bytes).  Built
    # with ONE vectorised gather + filter over all of V_h; the per-node
    # entries are then views into the filtered flat array.
    flat = concatenate_neighbor_slices(snapshot, node_ids)
    keep = in_set[flat]
    kept_flat = flat[keep]
    counts = snapshot.indptr[node_ids + 1] - snapshot.indptr[node_ids]
    bounds = np.zeros(len(node_ids) + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    keep_cum = np.zeros(flat.size + 1, dtype=np.int64)
    np.cumsum(keep, out=keep_cum[1:])
    kept_bounds = keep_cum[bounds]
    ids_list = node_ids.tolist()
    restricted: dict[int, np.ndarray] = {
        u: kept_flat[kept_bounds[i] : kept_bounds[i + 1]]
        for i, u in enumerate(ids_list)
    }

    # Round 0: group non-end nodes by exact neighbourhood; end nodes pinned.
    grp = np.full(n, -1, dtype=np.int64)
    grp[a_id], grp[b_id] = 0, 1
    groups: list[list[int]] = [[a_id], [b_id]]
    by_key: dict[bytes, int] = {}
    for u in ids_list:
        if u == a_id or u == b_id:
            continue
        key = restricted[u].tobytes()
        idx = by_key.get(key)
        if idx is None:
            idx = len(groups)
            by_key[key] = idx
            groups.append([u])
        else:
            groups[idx].append(u)
        grp[u] = idx

    # Same structure-level merge loop as the dict path (``_merge_once`` is
    # substrate-agnostic), with the member → group map kept as an array.
    # ``owners`` pairs each kept neighbour entry with its source node so
    # the per-round adjacency is two gathers over the edge list.
    owners = np.repeat(node_ids, kept_bounds[1:] - kept_bounds[:-1])
    rounds = 0
    while True:
        rounds += 1
        adjacency = _group_adjacency_csr(len(groups), grp, owners, kept_flat)
        merged_groups, merged_of, changed = _merge_once(groups, adjacency)
        if not changed:
            break
        remap = np.empty(len(groups), dtype=np.int64)
        for old_idx, new_idx in merged_of.items():
            remap[old_idx] = new_idx
        grp[node_ids] = remap[grp[node_ids]]
        groups = merged_groups

    observe("structure.merge_rounds", rounds)
    member_ids = [np.array(sorted(g), dtype=np.int64) for g in groups]
    # The loop exits when _merge_once changed nothing, so the adjacency
    # computed at the top of the last round is still valid for `groups`.
    return CSRStructureSubgraph(
        snapshot=snapshot,
        node_ids=node_ids,
        member_ids=member_ids,
        adjacency=[frozenset(adj) for adj in adjacency],
        endpoint_ids=(a_id, b_id),
    )


def _group_adjacency(
    groups: Sequence[Sequence[Node]],
    group_of: dict[Node, int],
    restricted: dict[Node, frozenset[Node]],
) -> list[set[int]]:
    """Structure-level adjacency induced by member-level links."""
    adjacency: list[set[int]] = [set() for _ in groups]
    for idx, members in enumerate(groups):
        adj = adjacency[idx]
        for member in members:
            for nb in restricted[member]:
                other = group_of[nb]
                if other != idx:
                    adj.add(other)
    return adjacency


def _group_adjacency_csr(
    n_groups: int,
    grp: np.ndarray,
    owners: np.ndarray,
    kept_flat: np.ndarray,
) -> list[set[int]]:
    """Array form of :func:`_group_adjacency`: two gathers over the
    restricted edge list (``owners[i] — kept_flat[i]``) instead of
    per-member-neighbour Python loops."""
    adjacency: list[set[int]] = [set() for _ in range(n_groups)]
    if kept_flat.size == 0:
        return adjacency
    src = grp[owners]
    dst = grp[kept_flat]
    distinct = src != dst
    codes = src[distinct] * n_groups + dst[distinct]
    # Sorted so group adjacency is filled in a canonical order regardless
    # of hash seed (the sets are consumed as frozensets, but keeping the
    # fill order fixed makes every downstream trace reproducible).
    for code in sorted(set(codes.tolist())):
        adjacency[code // n_groups].add(code % n_groups)
    return adjacency


def _merge_once(
    groups: "Sequence[Sequence[_Member]]",
    adjacency: Sequence[set[int]],
) -> "tuple[list[list[_Member]], dict[int, int], bool]":
    """One round of Algorithm 1's loop at the structure level.

    Groups (other than the pinned end groups 0 and 1) with identical
    structure-level neighbourhoods are merged.  Returns the new groups, the
    old-index → new-index mapping, and whether anything changed.  Member
    type is opaque — both the dict (labels) and CSR (int ids) paths use
    this.
    """
    new_groups: "list[list[_Member]]" = [list(groups[0]), list(groups[1])]
    new_of: dict[int, int] = {0: 0, 1: 1}
    by_key: dict[frozenset[int], int] = {}
    changed = False
    for idx in range(2, len(groups)):
        key = frozenset(adjacency[idx])
        target = by_key.get(key)
        if target is None:
            target = len(new_groups)
            by_key[key] = target
            new_groups.append(list(groups[idx]))
        else:
            new_groups[target].extend(groups[idx])
            changed = True
        new_of[idx] = target
    return new_groups, new_of, changed

"""Structure combination — Algorithm 1 and Definitions 4–6 of the paper.

Nodes of an h-hop subgraph that have *identical neighbour sets* play the
same topological role, so the paper merges each such equivalence class into
a single **structure node**; the merge is repeated on the resulting graph
until no two (non-end) structure nodes share a neighbourhood.  Links
between members of two structure nodes are collected into one **structure
link** that keeps every underlying timestamp, which later feeds the
normalized influence (Def. 8).

Implementation notes:

* The two end nodes of the target link are always kept as singleton
  structure nodes (Def. 4, last sentence), even if another node happens to
  share their neighbourhood.
* Nodes merged into one structure node are never adjacent to each other:
  ``Γ(u) = Γ(v)`` and ``u ~ v`` would imply the self-loop ``u ∈ Γ(u)``,
  and the substrate forbids self-loops.  The same argument holds at every
  merge round, so structure links never need a self-loop case.
* :class:`StructureSubgraph` does not copy the h-hop subgraph; it keeps a
  reference to the parent network plus the node set ``V_h`` and resolves
  member-level timestamps lazily.  This is what makes per-link SSF
  extraction affordable on dense networks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

from repro.graph.temporal import DynamicNetwork
from repro.obs import enabled as obs_enabled, observe, span

Node = Hashable


@dataclass(frozen=True)
class StructureNode:
    """A maximal set of nodes with a common neighbourhood (Def. 4)."""

    members: frozenset

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a structure node must have at least one member")

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node: Node) -> bool:
        return node in self.members

    def representative(self) -> Node:
        """A deterministic member (smallest by repr), for display."""
        return min(self.members, key=repr)

    def sort_key(self) -> tuple:
        """Deterministic, label-based key used for tie-breaking orders."""
        return tuple(sorted(repr(m) for m in self.members))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ",".join(sorted(repr(m) for m in self.members))
        return f"StructureNode({{{inner}}})"


class StructureSubgraph:
    """An h-hop structure subgraph ``G_S`` (Def. 6).

    Structure nodes are addressed by integer index; indices 0 and 1 are
    always the end-node singletons ``{a}`` and ``{b}`` of the target link.

    Built by :func:`combine_structures`; not intended to be constructed
    directly except in tests.
    """

    def __init__(
        self,
        network: DynamicNetwork,
        node_set: frozenset,
        member_sets: Sequence[frozenset],
        adjacency: Sequence[frozenset],
        endpoints: tuple[Node, Node],
    ) -> None:
        self._network = network
        self._node_set = node_set
        self._nodes = tuple(StructureNode(m) for m in member_sets)
        self._adjacency = tuple(adjacency)
        self._endpoints = endpoints
        self._member_of = {
            member: idx for idx, ms in enumerate(member_sets) for member in ms
        }
        self._timestamp_cache: dict[tuple[int, int], tuple[float, ...]] = {}

    # ------------------------------------------------------------------
    # structure-level queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> tuple[StructureNode, ...]:
        """All structure nodes; ``nodes[0]``/``nodes[1]`` are the end nodes."""
        return self._nodes

    @property
    def endpoints(self) -> tuple[Node, Node]:
        """The (member-level) end nodes of the target link."""
        return self._endpoints

    @property
    def endpoint_indices(self) -> tuple[int, int]:
        return (0, 1)

    def number_of_structure_nodes(self) -> int:
        return len(self._nodes)

    def number_of_structure_links(self) -> int:
        return sum(len(adj) for adj in self._adjacency) // 2

    def structure_node_of(self, member: Node) -> int:
        """Index of the structure node containing ``member``."""
        try:
            return self._member_of[member]
        except KeyError:
            raise KeyError(f"node {member!r} not in this structure subgraph") from None

    def adjacency(self, index: int) -> frozenset[int]:
        """Indices of structure nodes linked to ``index``."""
        return self._adjacency[index]

    def has_structure_link(self, i: int, j: int) -> bool:
        return j in self._adjacency[i]

    def structure_link_pairs(self) -> Iterable[tuple[int, int]]:
        """All structure links as ``(i, j)`` with ``i < j``."""
        for i, adj in enumerate(self._adjacency):
            for j in adj:
                if i < j:
                    yield (i, j)

    # ------------------------------------------------------------------
    # member-level (timestamp) queries — resolved lazily, cached
    # ------------------------------------------------------------------
    def link_timestamps(self, i: int, j: int) -> tuple[float, ...]:
        """Sorted timestamps of every member-level link between structure
        nodes ``i`` and ``j`` (the set ``E_k`` of Def. 5)."""
        if i == j:
            raise ValueError("structure nodes have no internal links")
        key = (i, j) if i < j else (j, i)
        cached = self._timestamp_cache.get(key)
        if cached is not None:
            return cached
        if j not in self._adjacency[i]:
            stamps: tuple[float, ...] = ()
        else:
            small, large = self._nodes[key[0]].members, self._nodes[key[1]].members
            if len(small) > len(large):
                small, large = large, small
            collected: list[float] = []
            for member in small:
                row = self._network.neighbor_view(member)
                for other in large:
                    ts = row.get(other)
                    if ts:
                        collected.extend(ts)
            collected.sort()
            stamps = tuple(collected)
        self._timestamp_cache[key] = stamps
        return stamps

    def link_count(self, i: int, j: int) -> int:
        """Number of member-level links between structure nodes ``i``/``j``."""
        return len(self.link_timestamps(i, j))

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def distances_to_target(self) -> list[int]:
        """Hop distance of each structure node to the target link.

        Measured in the structure subgraph itself, as a multi-source BFS
        from the two end structure nodes (indices 0 and 1); both end nodes
        are at distance 0.  Unreachable structure nodes (possible when the
        two end nodes live in different components) get ``-1``.
        """
        dist = [-1] * len(self._nodes)
        dist[0] = dist[1] = 0
        frontier = [0, 1]
        depth = 0
        while frontier:
            depth += 1
            nxt: list[int] = []
            for idx in frontier:
                for nb in self._adjacency[idx]:
                    if dist[nb] == -1:
                        dist[nb] = depth
                        nxt.append(nb)
            frontier = nxt
        return dist

    def weighted_distances_from(
        self, start: int, edge_length: "Callable[[int, int], float]"
    ) -> list[float]:
        """Dijkstra distances from one structure node.

        ``edge_length(i, j)`` must return a positive length for the
        structure link ``(i, j)``.  The paper's footnote 1 sets lengths to
        the *reciprocal normalized influence*, so strongly/recently
        connected structure nodes are "closer" — which is what lets the
        ordering prioritise the most active structure on dense networks
        where plain hop distances are all ties.

        Unreachable structure nodes get ``math.inf``.
        """
        if not 0 <= start < len(self._nodes):
            raise IndexError(f"structure node index {start} out of range")
        dist = [math.inf] * len(self._nodes)
        dist[start] = 0.0
        heap: list[tuple[float, int]] = [(0.0, start)]
        while heap:
            d, idx = heapq.heappop(heap)
            if d > dist[idx]:
                continue
            for nb in self._adjacency[idx]:
                length = edge_length(idx, nb)
                if length <= 0:
                    raise ValueError(
                        f"edge_length({idx}, {nb}) must be > 0, got {length}"
                    )
                candidate = d + length
                if candidate < dist[nb]:
                    dist[nb] = candidate
                    heapq.heappush(heap, (candidate, nb))
        return dist

    def distances_from(self, start: int) -> list[int]:
        """Hop distances from one structure node to all others (BFS).

        Unreachable structure nodes get ``-1``.  Used to build the
        Palette-WL initial ordering from *both* end nodes separately: a
        structure node adjacent to both ends (a common neighbour) must
        rank before one adjacent to a single end, which the single
        min-distance of :meth:`distances_to_target` cannot express.
        """
        if not 0 <= start < len(self._nodes):
            raise IndexError(f"structure node index {start} out of range")
        dist = [-1] * len(self._nodes)
        dist[start] = 0
        frontier = [start]
        depth = 0
        while frontier:
            depth += 1
            nxt: list[int] = []
            for idx in frontier:
                for nb in self._adjacency[idx]:
                    if dist[nb] == -1:
                        dist[nb] = depth
                        nxt.append(nb)
            frontier = nxt
        return dist

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StructureSubgraph(structure_nodes={len(self._nodes)}, "
            f"structure_links={self.number_of_structure_links()})"
        )


def combine_structures(
    network: DynamicNetwork,
    node_set: Iterable[Node],
    a: Node,
    b: Node,
) -> StructureSubgraph:
    """Algorithm 1: collapse an h-hop subgraph into its structure subgraph.

    Args:
        network: the parent dynamic network.
        node_set: the h-hop node set ``V_h`` (must contain ``a`` and ``b``).
        a: first end node of the target link.
        b: second end node of the target link.

    Returns:
        The fixed point of repeated same-neighbourhood merging, with the
        end nodes pinned to structure-node indices 0 and 1.
    """
    nodes = frozenset(node_set)
    if a not in nodes or b not in nodes:
        raise ValueError("node_set must contain both end nodes of the target link")
    if a == b:
        raise ValueError("target link end nodes must be distinct")

    with span("structure_combination"):
        result = _combine_structures(network, nodes, a, b)
    if obs_enabled():
        structure_nodes = result.number_of_structure_nodes()
        observe("structure.nodes_in", len(nodes))
        observe("structure.nodes_out", structure_nodes)
        observe("structure.compression_ratio", len(nodes) / structure_nodes)
    return result


def _combine_structures(
    network: DynamicNetwork,
    nodes: frozenset,
    a: Node,
    b: Node,
) -> StructureSubgraph:
    # Member-level neighbourhoods restricted to V_h.
    restricted: dict[Node, frozenset] = {}
    for n in nodes:
        row = network.neighbor_view(n)
        if len(row) <= len(nodes):
            restricted[n] = frozenset(m for m in row if m in nodes)
        else:
            restricted[n] = frozenset(m for m in nodes if m in row)

    # Round 0: group non-end nodes by exact neighbourhood; end nodes pinned.
    group_of: dict[Node, int] = {a: 0, b: 1}
    groups: list[list[Node]] = [[a], [b]]
    by_key: dict[frozenset, int] = {}
    for n in nodes:
        if n == a or n == b:
            continue
        key = restricted[n]
        idx = by_key.get(key)
        if idx is None:
            idx = len(groups)
            by_key[key] = idx
            groups.append([n])
        else:
            groups[idx].append(n)
        group_of[n] = idx

    # Iterate the merge at the structure level until a fixed point
    # (the paper argues one round usually suffices; chains like
    # leaf -> merged-hub patterns genuinely need a second round).
    rounds = 0
    while True:
        rounds += 1
        adjacency = _group_adjacency(groups, group_of, restricted)
        merged_groups, merged_of, changed = _merge_once(groups, adjacency)
        if not changed:
            break
        group_of = {
            member: merged_of[old_idx]
            for member, old_idx in group_of.items()
        }
        groups = merged_groups

    observe("structure.merge_rounds", rounds)
    member_sets = [frozenset(g) for g in groups]
    adjacency = _group_adjacency(groups, group_of, restricted)
    return StructureSubgraph(
        network=network,
        node_set=nodes,
        member_sets=member_sets,
        adjacency=[frozenset(adj) for adj in adjacency],
        endpoints=(a, b),
    )


def _group_adjacency(
    groups: Sequence[Sequence[Node]],
    group_of: dict[Node, int],
    restricted: dict[Node, frozenset],
) -> list[set[int]]:
    """Structure-level adjacency induced by member-level links."""
    adjacency: list[set[int]] = [set() for _ in groups]
    for idx, members in enumerate(groups):
        adj = adjacency[idx]
        for member in members:
            for nb in restricted[member]:
                other = group_of[nb]
                if other != idx:
                    adj.add(other)
    return adjacency


def _merge_once(
    groups: Sequence[Sequence[Node]],
    adjacency: Sequence[set[int]],
) -> tuple[list[list[Node]], dict[int, int], bool]:
    """One round of Algorithm 1's loop at the structure level.

    Groups (other than the pinned end groups 0 and 1) with identical
    structure-level neighbourhoods are merged.  Returns the new groups, the
    old-index → new-index mapping, and whether anything changed.
    """
    new_groups: list[list[Node]] = [list(groups[0]), list(groups[1])]
    new_of: dict[int, int] = {0: 0, 1: 1}
    by_key: dict[frozenset, int] = {}
    changed = False
    for idx in range(2, len(groups)):
        key = frozenset(adjacency[idx])
        target = by_key.get(key)
        if target is None:
            target = len(new_groups)
            by_key[key] = target
            new_groups.append(list(groups[idx]))
        else:
            new_groups[target].extend(groups[idx])
            changed = True
        new_of[idx] = target
    return new_groups, new_of, changed

"""The paper's contribution: the Structure Subgraph Feature (SSF) pipeline.

Pipeline stages (Secs. IV–V of the paper):

1. :mod:`repro.core.distance` — node-to-target-link distances (Eq. 1).
2. :mod:`repro.core.subgraph` — h-hop subgraph extraction (Def. 3).
3. :mod:`repro.core.structure` — structure combination, Algorithm 1
   (Defs. 4–6).
4. :mod:`repro.core.palette_wl` — Palette-WL ordering, Algorithm 2.
5. :mod:`repro.core.kstructure` — K-structure subgraph (Def. 7).
6. :mod:`repro.core.influence` — exponential decay and normalized
   influence (Defs. 8–9).
7. :mod:`repro.core.feature` — SSF vector extraction, Algorithm 3
   (Def. 10).
"""

from repro.core.distance import distances_to_link, node_link_distance
from repro.core.feature import SSFConfig, SSFExtractor, ssf_feature_dim
from repro.core.influence import link_influence, normalized_influence
from repro.core.kstructure import KStructureSubgraph, extract_k_structure_subgraph
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import StructureNode, StructureSubgraph, combine_structures
from repro.core.subgraph import extract_h_hop_subgraph, h_hop_node_set

__all__ = [
    "distances_to_link",
    "node_link_distance",
    "extract_h_hop_subgraph",
    "h_hop_node_set",
    "StructureNode",
    "StructureSubgraph",
    "combine_structures",
    "palette_wl_order",
    "KStructureSubgraph",
    "extract_k_structure_subgraph",
    "link_influence",
    "normalized_influence",
    "SSFConfig",
    "SSFExtractor",
    "ssf_feature_dim",
]

"""Node-to-target-link distances (Eq. 1 of the paper).

The distance from a node ``n`` to a target link ``e_t = (a, b)`` is

    d(n, e_t) = min(|P(n, a)|, |P(n, b)|),

the smaller of the shortest-path lengths to the two end nodes.  These
distances drive both h-hop subgraph extraction (Def. 3) and the initial
Palette-WL ordering (Algorithm 2, line 1).
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.temporal import DynamicNetwork

Node = Hashable


def distances_to_link(
    network: DynamicNetwork,
    a: Node,
    b: Node,
    max_hop: "int | None" = None,
) -> dict[Node, int]:
    """Distances ``d(n, e_t)`` for every node within ``max_hop`` of ``(a, b)``.

    A multi-source BFS from both end nodes; the target link itself is not
    assumed to exist (it is the link being predicted), but any *historical*
    links between ``a`` and ``b`` are traversed like all other links.

    Args:
        network: the observed dynamic network ``G_[tp, tq)``.
        a: first end node of the target link (must exist in ``network``).
        b: second end node of the target link (must exist in ``network``).
        max_hop: stop the BFS at this depth; ``None`` explores the whole
            reachable component.

    Returns:
        Mapping from node to distance; ``a`` and ``b`` map to 0.
    """
    if not network.has_node(a):
        raise KeyError(f"end node {a!r} not in network")
    if not network.has_node(b):
        raise KeyError(f"end node {b!r} not in network")
    if a == b:
        raise ValueError("target link end nodes must be distinct")

    dist: dict[Node, int] = {a: 0, b: 0}
    frontier: list[Node] = [a, b]
    depth = 0
    while frontier and (max_hop is None or depth < max_hop):
        depth += 1
        nxt: list[Node] = []
        for node in frontier:
            for nb in network.neighbor_view(node):
                if nb not in dist:
                    dist[nb] = depth
                    nxt.append(nb)
        frontier = nxt
    return dist


def node_link_distance(
    network: DynamicNetwork,
    node: Node,
    a: Node,
    b: Node,
    max_hop: "int | None" = None,
) -> "int | None":
    """``d(node, e_t)`` for a single node, or ``None`` when unreachable.

    Convenience wrapper over :func:`distances_to_link`; prefer the batch
    form when distances for many nodes are needed.
    """
    return distances_to_link(network, a, b, max_hop=max_hop).get(node)

"""Node-to-target-link distances (Eq. 1 of the paper).

The distance from a node ``n`` to a target link ``e_t = (a, b)`` is

    d(n, e_t) = min(|P(n, a)|, |P(n, b)|),

the smaller of the shortest-path lengths to the two end nodes.  These
distances drive both h-hop subgraph extraction (Def. 3) and the initial
Palette-WL ordering (Algorithm 2, line 1).
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.graph.csr import CSRSnapshot, concatenate_neighbor_slices
from repro.graph.temporal import DynamicNetwork

Node = Hashable


def distances_to_link(
    network: DynamicNetwork,
    a: Node,
    b: Node,
    max_hop: "int | None" = None,
) -> dict[Node, int]:
    """Distances ``d(n, e_t)`` for every node within ``max_hop`` of ``(a, b)``.

    A multi-source BFS from both end nodes; the target link itself is not
    assumed to exist (it is the link being predicted), but any *historical*
    links between ``a`` and ``b`` are traversed like all other links.

    Args:
        network: the observed dynamic network ``G_[tp, tq)``.
        a: first end node of the target link (must exist in ``network``).
        b: second end node of the target link (must exist in ``network``).
        max_hop: stop the BFS at this depth; ``None`` explores the whole
            reachable component.

    Returns:
        Mapping from node to distance; ``a`` and ``b`` map to 0.
    """
    if not network.has_node(a):
        raise KeyError(f"end node {a!r} not in network")
    if not network.has_node(b):
        raise KeyError(f"end node {b!r} not in network")
    if a == b:
        raise ValueError("target link end nodes must be distinct")

    dist: dict[Node, int] = {a: 0, b: 0}
    frontier: list[Node] = [a, b]
    depth = 0
    while frontier and (max_hop is None or depth < max_hop):
        depth += 1
        nxt: list[Node] = []
        for node in frontier:
            for nb in network.neighbor_view(node):
                if nb not in dist:
                    dist[nb] = depth
                    nxt.append(nb)
        frontier = nxt
    return dist


def csr_distances_to_link(
    snapshot: CSRSnapshot,
    a_id: int,
    b_id: int,
    max_hop: "int | None" = None,
) -> np.ndarray:
    """Array form of :func:`distances_to_link` over a CSR snapshot.

    A frontier-at-a-time multi-source BFS: each level gathers every
    neighbour slice of the frontier in one vectorised read, masks already
    visited nodes and deduplicates with ``np.unique`` — no per-node Python
    work.

    Args:
        snapshot: the frozen observed window.
        a_id: int id of the first end node.
        b_id: int id of the second end node.
        max_hop: stop at this depth; ``None`` explores the component.

    Returns:
        ``int32`` array over all snapshot nodes; unreached nodes hold
        ``-1``, the end nodes hold ``0``.
    """
    n = snapshot.number_of_nodes()
    if not 0 <= a_id < n:
        raise KeyError(f"end node id {a_id} not in snapshot")
    if not 0 <= b_id < n:
        raise KeyError(f"end node id {b_id} not in snapshot")
    if a_id == b_id:
        raise ValueError("target link end nodes must be distinct")

    dist = np.full(n, -1, dtype=np.int32)
    frontier = np.array([a_id, b_id], dtype=np.int64)
    dist[frontier] = 0
    depth = 0
    while frontier.size and (max_hop is None or depth < max_hop):
        depth += 1
        neighbors = concatenate_neighbor_slices(snapshot, frontier)
        neighbors = neighbors[dist[neighbors] == -1]
        if not neighbors.size:
            break
        frontier = np.unique(neighbors).astype(np.int64)
        dist[frontier] = depth
    return dist


def node_link_distance(
    network: DynamicNetwork,
    node: Node,
    a: Node,
    b: Node,
    max_hop: "int | None" = None,
) -> "int | None":
    """``d(node, e_t)`` for a single node, or ``None`` when unreachable.

    Convenience wrapper over :func:`distances_to_link`; prefer the batch
    form when distances for many nodes are needed.
    """
    return distances_to_link(network, a, b, max_hop=max_hop).get(node)

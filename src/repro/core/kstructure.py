"""K-structure subgraph extraction — Definition 7 / Algorithm 3 (lines 1–8).

Starting from ``h = 1``, the h-hop structure subgraph is grown until it
contains at least ``K`` structure nodes (or the whole reachable component
has been absorbed), Palette-WL orders are assigned, and the top-K
structure nodes are selected.  The result is a fixed-size, canonically
ordered view that the SSF adjacency matrix is read off from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.distance import distances_to_link
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import StructureNode, StructureSubgraph, combine_structures
from repro.graph.temporal import DynamicNetwork
from repro.obs import enabled as obs_enabled, observe, span

Node = Hashable


@dataclass
class KStructureSubgraph:
    """The ordered top-K slice of an h-hop structure subgraph.

    Attributes:
        source: the h-hop structure subgraph the selection came from.
        k: the requested number of structure nodes.
        h: the hop radius at which the growth loop stopped.
        selected: structure-node indices in order; ``selected[p]`` is the
            structure node with Palette-WL order ``p + 1``.  May be shorter
            than ``k`` when the whole reachable component holds fewer
            structure nodes (the SSF matrix is then zero-padded).
        distances: hop distance of each selected structure node to the
            target link, aligned with ``selected``.
    """

    source: StructureSubgraph
    k: int
    h: int
    selected: list[int]
    distances: list[int]

    def __post_init__(self) -> None:
        if len(self.selected) < 2:
            raise ValueError("selection must include both end structure nodes")
        if self.selected[0] != 0 or self.selected[1] != 1:
            raise ValueError("end structure nodes must hold orders 1 and 2")

    def number_selected(self) -> int:
        return len(self.selected)

    def node(self, order: int) -> StructureNode:
        """The structure node holding 1-based Palette-WL ``order``."""
        return self.source.nodes[self.selected[order - 1]]

    def has_link(self, order_m: int, order_n: int) -> bool:
        """Whether a structure link connects the nodes at these orders."""
        return self.source.has_structure_link(
            self.selected[order_m - 1], self.selected[order_n - 1]
        )

    def link_timestamps(self, order_m: int, order_n: int) -> tuple[float, ...]:
        """All member-level link timestamps between two selected nodes."""
        return self.source.link_timestamps(
            self.selected[order_m - 1], self.selected[order_n - 1]
        )

    def link_count(self, order_m: int, order_n: int) -> int:
        return len(self.link_timestamps(order_m, order_n))


def extract_k_structure_subgraph(
    network: DynamicNetwork,
    a: Node,
    b: Node,
    k: int,
    max_hop: "int | None" = None,
    edge_length: "Callable[[StructureSubgraph, int, int], float] | None" = None,
    tie_break: "Callable[[StructureSubgraph], list[float]] | None" = None,
    initial_scores: "Callable[[StructureSubgraph], list[float]] | None" = None,
) -> KStructureSubgraph:
    """Grow ``h`` until the structure subgraph holds >= ``k`` structure
    nodes, order it with Palette-WL, and select the top ``k``.

    Args:
        network: the observed network ``G_[tp, tq)``.
        a: first end node of the target link (must be in ``network``).
        b: second end node.
        k: number of structure nodes to select (>= 2).
        max_hop: optional cap on the growth radius; defaults to growing
            until the whole reachable component is absorbed.
        edge_length: optional structure-link length function
            ``(subgraph, i, j) -> float`` used by the Palette-WL initial
            ordering; the paper's footnote 1 uses reciprocal normalized
            influence (see :class:`~repro.core.feature.SSFExtractor`).
            ``None`` uses unit (hop) lengths.
        tie_break: optional ``subgraph -> per-node scores`` (lower =
            earlier) ordering WL-tied structure nodes, e.g. by influence
            strength toward the end nodes.
        initial_scores: optional ``subgraph -> per-node scores``
            overriding the Palette-WL initial ordering entirely
            (Algorithm 2 line 1); takes precedence over ``edge_length``.

    Returns:
        The ordered selection; ``len(selected) < k`` only when the
        component around the target link is too small.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")

    with span("subgraph_growth"):
        member_distances = distances_to_link(network, a, b, max_hop=max_hop)
    reachable = len(member_distances)
    max_distance = max(member_distances.values())

    h = 0
    subgraph: "StructureSubgraph | None" = None
    while True:
        h += 1
        with span("subgraph_growth", h=h):
            node_set = {n for n, d in member_distances.items() if d <= h}
        if obs_enabled():
            observe("subgraph.ball_size", len(node_set))
            observe(
                "subgraph.frontier_size",
                sum(1 for d in member_distances.values() if d == h),
            )
        subgraph = combine_structures(network, node_set, a, b)
        enough = subgraph.number_of_structure_nodes() >= k
        exhausted = len(node_set) == reachable or h >= max_distance
        if enough or exhausted:
            break
    observe("subgraph.growth_h", h)

    bound_length = None
    if edge_length is not None:
        final_subgraph = subgraph

        def bound_length(i: int, j: int) -> float:
            return edge_length(final_subgraph, i, j)

    tie_break_scores = tie_break(subgraph) if tie_break is not None else None
    scores = initial_scores(subgraph) if initial_scores is not None else None
    order = palette_wl_order(
        subgraph,
        initial_scores=scores,
        edge_length=bound_length,
        tie_break=tie_break_scores,
    )
    by_order = sorted(range(len(order)), key=lambda i: order[i])
    selected = by_order[: min(k, len(by_order))]
    structure_distances = subgraph.distances_to_target()
    return KStructureSubgraph(
        source=subgraph,
        k=k,
        h=h,
        selected=selected,
        distances=[structure_distances[i] for i in selected],
    )

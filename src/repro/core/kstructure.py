"""K-structure subgraph extraction — Definition 7 / Algorithm 3 (lines 1–8).

Starting from ``h = 1``, the h-hop structure subgraph is grown until it
contains at least ``K`` structure nodes (or the whole reachable component
has been absorbed), Palette-WL orders are assigned, and the top-K
structure nodes are selected.  The result is a fixed-size, canonically
ordered view that the SSF adjacency matrix is read off from.

The growth loop runs over either substrate: a dict-backed
:class:`~repro.graph.temporal.DynamicNetwork` (the faithful reference) or
a frozen :class:`~repro.graph.csr.CSRSnapshot` (array BFS + array
structure combination; bit-identical output).  The ordering / selection
stage downstream of the growth loop is substrate-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, TypeAlias

import numpy as np

from repro.core.distance import distances_to_link
from repro.graph.csr import concatenate_neighbor_slices
from repro.core.palette_wl import palette_wl_order
from repro.core.structure import (
    CSRStructureSubgraph,
    StructureNode,
    StructureSubgraph,
    combine_structures,
    combine_structures_csr,
)
from repro.graph.csr import CSRSnapshot
from repro.graph.temporal import DynamicNetwork
from repro.obs import enabled as obs_enabled, observe, span

Node = Hashable

AnyStructureSubgraph: TypeAlias = "StructureSubgraph | CSRStructureSubgraph"


@dataclass
class KStructureSubgraph:
    """The ordered top-K slice of an h-hop structure subgraph.

    Attributes:
        source: the h-hop structure subgraph the selection came from
            (dict- or CSR-backed; both expose the same query surface).
        k: the requested number of structure nodes.
        h: the hop radius at which the growth loop stopped.
        selected: structure-node indices in order; ``selected[p]`` is the
            structure node with Palette-WL order ``p + 1``.  May be shorter
            than ``k`` when the whole reachable component holds fewer
            structure nodes (the SSF matrix is then zero-padded).
        distances: hop distance of each selected structure node to the
            target link, aligned with ``selected``.
    """

    source: "StructureSubgraph | CSRStructureSubgraph"
    k: int
    h: int
    selected: list[int]
    distances: list[int]

    def __post_init__(self) -> None:
        if len(self.selected) < 2:
            raise ValueError("selection must include both end structure nodes")
        if self.selected[0] != 0 or self.selected[1] != 1:
            raise ValueError("end structure nodes must hold orders 1 and 2")

    def number_selected(self) -> int:
        return len(self.selected)

    def node(self, order: int) -> StructureNode:
        """The structure node holding 1-based Palette-WL ``order``."""
        return self.source.nodes[self.selected[order - 1]]

    def has_link(self, order_m: int, order_n: int) -> bool:
        """Whether a structure link connects the nodes at these orders."""
        return self.source.has_structure_link(
            self.selected[order_m - 1], self.selected[order_n - 1]
        )

    def link_timestamps(self, order_m: int, order_n: int) -> tuple[float, ...]:
        """All member-level link timestamps between two selected nodes."""
        return self.source.link_timestamps(
            self.selected[order_m - 1], self.selected[order_n - 1]
        )

    def link_count(self, order_m: int, order_n: int) -> int:
        return self.source.link_count(
            self.selected[order_m - 1], self.selected[order_n - 1]
        )

    def link_influence(
        self, order_m: int, order_n: int, present_time: float, theta: float
    ) -> float:
        """Normalized influence (Eq. 3) between two selected nodes.

        On the CSR substrate this reads the precomputed per-link influence
        table; on the dict substrate it evaluates Eq. 2 per timestamp.
        Both give bit-identical sums.
        """
        return self.source.link_influence(
            self.selected[order_m - 1],
            self.selected[order_n - 1],
            present_time,
            theta,
        )


def extract_k_structure_subgraph(
    network: "DynamicNetwork | CSRSnapshot",
    a: Node,
    b: Node,
    k: int,
    max_hop: "int | None" = None,
    edge_length: "Callable[[AnyStructureSubgraph, int, int], float] | None" = None,
    tie_break: "Callable[[AnyStructureSubgraph], list[float]] | None" = None,
    initial_scores: "Callable[[AnyStructureSubgraph], list[float]] | None" = None,
) -> KStructureSubgraph:
    """Grow ``h`` until the structure subgraph holds >= ``k`` structure
    nodes, order it with Palette-WL, and select the top ``k``.

    Args:
        network: the observed network ``G_[tp, tq)`` — a dict-backed
            :class:`DynamicNetwork` or a frozen :class:`CSRSnapshot`
            (``a``/``b`` are always given as node *labels*).
        a: first end node of the target link (must be in ``network``).
        b: second end node.
        k: number of structure nodes to select (>= 2).
        max_hop: optional cap on the growth radius; defaults to growing
            until the whole reachable component is absorbed.
        edge_length: optional structure-link length function
            ``(subgraph, i, j) -> float`` used by the Palette-WL initial
            ordering; the paper's footnote 1 uses reciprocal normalized
            influence (see :class:`~repro.core.feature.SSFExtractor`).
            ``None`` uses unit (hop) lengths.
        tie_break: optional ``subgraph -> per-node scores`` (lower =
            earlier) ordering WL-tied structure nodes, e.g. by influence
            strength toward the end nodes.
        initial_scores: optional ``subgraph -> per-node scores``
            overriding the Palette-WL initial ordering entirely
            (Algorithm 2 line 1); takes precedence over ``edge_length``.

    Returns:
        The ordered selection; ``len(selected) < k`` only when the
        component around the target link is too small.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")

    if isinstance(network, CSRSnapshot):
        subgraph, h = _grow_csr(network, a, b, k, max_hop)
    else:
        subgraph, h = _grow_dict(network, a, b, k, max_hop)

    bound_length: "Callable[[int, int], float] | None" = None
    if edge_length is not None:
        final_subgraph = subgraph
        final_edge_length = edge_length

        def _bound_length(i: int, j: int) -> float:
            return final_edge_length(final_subgraph, i, j)

        bound_length = _bound_length

    tie_break_scores = tie_break(subgraph) if tie_break is not None else None
    scores = initial_scores(subgraph) if initial_scores is not None else None
    order = palette_wl_order(
        subgraph,
        initial_scores=scores,
        edge_length=bound_length,
        tie_break=tie_break_scores,
    )
    by_order = sorted(range(len(order)), key=lambda i: order[i])
    selected = by_order[: min(k, len(by_order))]
    structure_distances = subgraph.distances_to_target()
    return KStructureSubgraph(
        source=subgraph,
        k=k,
        h=h,
        selected=selected,
        distances=[structure_distances[i] for i in selected],
    )


def _grow_dict(
    network: DynamicNetwork,
    a: Node,
    b: Node,
    k: int,
    max_hop: "int | None",
) -> tuple[StructureSubgraph, int]:
    """Algorithm 3 lines 1–8 over the dict substrate."""
    with span("subgraph_growth"):
        member_distances = distances_to_link(network, a, b, max_hop=max_hop)
    reachable = len(member_distances)
    max_distance = max(member_distances.values())

    h = 0
    while True:
        h += 1
        with span("subgraph_growth", h=h):
            node_set = {n for n, d in member_distances.items() if d <= h}
        if obs_enabled():
            observe("subgraph.ball_size", len(node_set))
            observe(
                "subgraph.frontier_size",
                sum(1 for d in member_distances.values() if d == h),
            )
        subgraph = combine_structures(network, node_set, a, b)
        enough = subgraph.number_of_structure_nodes() >= k
        exhausted = len(node_set) == reachable or h >= max_distance
        if enough or exhausted:
            break
    observe("subgraph.growth_h", h)
    return subgraph, h


def _grow_csr(
    snapshot: CSRSnapshot,
    a: Node,
    b: Node,
    k: int,
    max_hop: "int | None",
) -> tuple[CSRStructureSubgraph, int]:
    """Algorithm 3 lines 1–8 over the CSR substrate (incremental array BFS).

    Levels are expanded one hop at a time, one level ahead of the growth
    loop — "exhausted" is exactly "the next BFS level is empty" — so a
    link whose subgraph reaches K structure nodes at a small radius (the
    common case) never walks the rest of the component.
    """
    a_id = snapshot.node_id(a)
    b_id = snapshot.node_id(b)
    if a_id == b_id:
        raise ValueError("target link end nodes must be distinct")

    dist = np.full(snapshot.number_of_nodes(), -1, dtype=np.int32)
    seeds = np.array([a_id, b_id], dtype=np.int64)
    dist[seeds] = 0

    def expand(frontier: np.ndarray, depth: int) -> np.ndarray:
        """Nodes at exactly ``depth``, given the frontier at ``depth - 1``."""
        if frontier.size == 0:
            return frontier
        neighbors = concatenate_neighbor_slices(snapshot, frontier)
        fresh = neighbors[dist[neighbors] == -1]
        if fresh.size == 0:
            return np.zeros(0, dtype=np.int64)
        fresh = np.unique(fresh).astype(np.int64)
        dist[fresh] = depth
        return fresh

    with span("subgraph_growth"):
        next_level = expand(seeds, 1)

    h = 0
    node_ids = seeds
    subgraph: "CSRStructureSubgraph | None" = None
    while True:
        h += 1
        with span("subgraph_growth", h=h):
            node_ids = np.sort(
                np.concatenate([node_ids, next_level]), kind="stable"
            )
        if obs_enabled():
            observe("subgraph.ball_size", len(node_ids))
            observe("subgraph.frontier_size", int(next_level.size))
        # Fewer ball nodes than K can never combine into >= K structure
        # nodes, so the (quadratic-ish) combination is deferred until the
        # ball is big enough or growth stops — on high-K/small-component
        # links this skips every intermediate combine.
        subgraph = None
        enough = False
        if len(node_ids) >= k:
            subgraph = combine_structures_csr(snapshot, node_ids, a_id, b_id)
            enough = subgraph.number_of_structure_nodes() >= k
        if max_hop is not None and h >= max_hop:
            exhausted = True
        else:
            next_level = expand(next_level, h + 1)
            exhausted = next_level.size == 0
        if enough or exhausted:
            if subgraph is None:
                subgraph = combine_structures_csr(snapshot, node_ids, a_id, b_id)
            break
    assert subgraph is not None
    observe("subgraph.growth_h", h)
    return subgraph, h

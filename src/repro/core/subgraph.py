"""h-hop subgraph extraction (Definition 3 of the paper).

The h-hop subgraph of a target link ``e_t = (a, b)`` is the sub-multigraph
induced on all nodes within distance ``h`` of the link (Eq. 1 distances),
keeping every timestamped link between those nodes.

Two forms are provided:

* :func:`h_hop_node_set` — just the node set ``V_h`` (what the optimized
  SSF extractor consumes; it never materialises the subgraph copy),
* :func:`extract_h_hop_subgraph` — a materialised
  :class:`~repro.graph.temporal.DynamicNetwork` copy, the faithful Def. 3
  object used by tests and exploratory analysis.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.core.distance import csr_distances_to_link, distances_to_link
from repro.graph.csr import CSRSnapshot
from repro.graph.temporal import DynamicNetwork
from repro.obs import observe, span

Node = Hashable


def h_hop_node_set(network: DynamicNetwork, a: Node, b: Node, h: int) -> set[Node]:
    """The node set ``V_h`` of the h-hop subgraph of target link ``(a, b)``.

    Args:
        h: hop radius, ``h >= 0`` (``h = 0`` yields just the end nodes).
    """
    if h < 0:
        raise ValueError(f"hop radius must be >= 0, got {h}")
    with span("subgraph_growth", h=h):
        nodes = set(distances_to_link(network, a, b, max_hop=h))
    observe("subgraph.nodes", len(nodes))
    return nodes


def csr_h_hop_node_ids(
    snapshot: CSRSnapshot, a_id: int, b_id: int, h: int
) -> np.ndarray:
    """Array form of :func:`h_hop_node_set`: sorted int ids of ``V_h``."""
    if h < 0:
        raise ValueError(f"hop radius must be >= 0, got {h}")
    with span("subgraph_growth", h=h):
        dist = csr_distances_to_link(snapshot, a_id, b_id, max_hop=h)
        node_ids = np.flatnonzero((dist >= 0) & (dist <= h))
    observe("subgraph.nodes", len(node_ids))
    return node_ids


def extract_h_hop_subgraph(
    network: DynamicNetwork, a: Node, b: Node, h: int
) -> DynamicNetwork:
    """Materialise the h-hop subgraph ``G_{h -> e_t}`` (Def. 3).

    The returned network contains every node within distance ``h`` of the
    target link and every timestamped link among those nodes — including
    any historical links between ``a`` and ``b`` themselves.
    """
    return network.subgraph(h_hop_node_set(network, a, b, h))

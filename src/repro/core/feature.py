"""Structure Subgraph Feature extraction — Algorithm 3 and Definition 10.

The SSF of a target link ``e_t = (a, b)`` is the column-major unfolding of
the upper triangle of the K×K adjacency matrix of the normalized
K-structure subgraph, excluding the unknown target entry ``A(1, 2)``
(Eq. 5), giving a fixed length of ``K(K-1)/2 - 1``.

Entry modes (what ``A(m, n)`` holds for a present structure link):

* ``"influence"`` — the normalized influence of Eq. 3/4: the sum of
  exponentially decayed influences of every member-level link.  This is
  the paper's headline SSF.
* ``"count"`` — the raw number of member-level links (the paper's static
  **SSF-W** variant: "common 0/k entries", Sec. VI-C1).
* ``"binary"`` — 0/1 connectivity only.
* ``"distance"`` — the relaxed entries of Sec. V-B:
  ``A(m, n) = 1 / min(d(N_x, e_t), d(N_y, e_t))`` with ``d`` the hop
  distance of a structure node to the target link inside the structure
  subgraph.  The paper leaves the end-node case (distance 0) undefined;
  we clamp distances to a minimum of 1 so entries stay in ``(0, 1]``.
* ``"influence_distance"`` — the raw product of the influence and
  distance entries (an ablation).
* ``"temporal"`` — the library default and what the SSFLR/SSFNM
  experiments use: ``(1 + log1p(l̃)) / min_d``, i.e. the Sec. V-B
  distance relaxation modulated by the log-compressed normalized
  influence.  This reconciles the paper's two entry definitions
  (Sec. V-A says influence, Sec. V-B says the experiments used the
  distance relaxation): presence of a structure link keeps a
  bounded-away-from-zero base value (so old structure is not erased the
  way raw ``exp(-θΔ)`` erases it) while recent/multiple links
  monotonically increase the entry.

Raw influence sums and raw multi-link counts span many orders of
magnitude on dense networks, which cripples both the linear model and
the standardised MLP; ``SSFConfig.compress`` (default on) therefore
applies ``log1p`` to the ``"count"`` and ``"influence"`` modes.  Set it
off for the literal Eq. 4 values.

Notes on faithfulness:

* Eq. 5 ranges ``3 <= n < K``; read literally this drops column ``K``
  entirely and gives a length inconsistent with the worked Fig. 4 example.
  We read it as the upper triangle minus ``A(1, 2)`` (``3 <= n <= K``),
  matching both Fig. 4(d) and the WLNM convention the paper builds on.
* Links emerging *at* the prediction time would have influence 1 but are
  by construction absent from the observed network ``G_[tp, tq)``.
* When the component around the target link holds fewer than K structure
  nodes, the matrix (and hence the feature) is zero-padded — small
  components simply produce sparse features.
* End nodes that have never been seen (not in the network) yield the
  all-zero feature: there is no surrounding structure to encode.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import TYPE_CHECKING, Callable, Hashable

import math

import numpy as np

if TYPE_CHECKING:
    from repro.core.batch import BatchExtractionEngine

from repro.core.influence import DEFAULT_THETA
from repro.core.kstructure import KStructureSubgraph, extract_k_structure_subgraph
from repro.core.structure import CSRStructureSubgraph, StructureSubgraph
from repro.graph.csr import CSRSnapshot
from repro.graph.temporal import DynamicNetwork
from repro.obs import span

Node = Hashable

ENTRY_MODES = (
    "temporal",
    "influence",
    "count",
    "binary",
    "distance",
    "influence_distance",
)

BACKENDS = ("auto", "dict", "csr")

#: ``backend="auto"`` freezes a CSR snapshot once the observed network has
#: at least this many links; below it, the snapshot build cost is not
#: worth paying for a handful of extractions.  Override with the
#: ``REPRO_AUTO_CSR_MIN_LINKS`` environment variable.
AUTO_CSR_MIN_LINKS = 4096


def _auto_csr_min_links() -> int:
    raw = os.environ.get("REPRO_AUTO_CSR_MIN_LINKS")
    return int(raw) if raw else AUTO_CSR_MIN_LINKS


def resolve_backend(network: "DynamicNetwork | CSRSnapshot", backend: str) -> str:
    """Resolve a ``backend`` request against what ``network`` is.

    * a :class:`CSRSnapshot` always runs the ``"csr"`` path (requesting
      ``"dict"`` for one is an error — there is no dict substrate to read);
    * a :class:`DynamicNetwork` honours ``"dict"``/``"csr"`` directly, and
      ``"auto"`` picks ``"csr"`` when the network holds at least
      :data:`AUTO_CSR_MIN_LINKS` links (build-once amortises), else
      ``"dict"``.
    """
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    if isinstance(network, CSRSnapshot):
        if backend == "dict":
            raise ValueError(
                "backend='dict' requires a DynamicNetwork, got a CSRSnapshot"
            )
        return "csr"
    if backend == "auto":
        return "csr" if network.number_of_links() >= _auto_csr_min_links() else "dict"
    return backend


@lru_cache(maxsize=None)
def unfold_indices(k: int) -> tuple[np.ndarray, np.ndarray]:
    """Row/column index arrays of the Eq. 5 unfolding for one ``K``.

    Column-major upper triangle minus ``A(1, 2)``: for each 1-based column
    ``n`` in ``3..K``, rows ``1..n-1``.  Cached per ``K`` so ``_unfold``
    is a single fancy-index gather.
    """
    rows = np.concatenate([np.arange(n - 1) for n in range(3, k + 1)])
    cols = np.concatenate([np.full(n - 1, n - 1) for n in range(3, k + 1)])
    rows.flags.writeable = False
    cols.flags.writeable = False
    return rows, cols


@lru_cache(maxsize=None)
def upper_triangle_orders(selected: int) -> tuple[tuple[int, int], ...]:
    """All 1-based order pairs ``(m, n)``, ``m < n <= selected``, except
    the target entry ``(1, 2)`` — the Eq. 4 matrix slots to evaluate."""
    return tuple(
        (m, n)
        for n in range(2, selected + 1)
        for m in range(1, n)
        if (m, n) != (1, 2)
    )


def ssf_feature_dim(k: int) -> int:
    """Length of an SSF vector for a given ``K``: ``K(K-1)/2 - 1``."""
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    return k * (k - 1) // 2 - 1


@dataclass(frozen=True)
class SSFConfig:
    """Hyper-parameters of SSF extraction.

    Attributes:
        k: number of structure nodes selected (paper default 10).
        theta: influence damping factor (paper fixes 0.5).
        entry_mode: what adjacency entries encode; see module docstring.
        compress: apply ``log1p`` to the ``"count"`` and ``"influence"``
            entry values (heavy-tailed on dense networks); the other
            modes are already bounded.
        ordering: how Palette-WL's initial distances are measured —
            ``"influence"`` (footnote 1: structure-link lengths are the
            reciprocal normalized influence, so strong/recent structure
            ranks first; the default) or ``"hops"`` (unit lengths, the
            purely static ordering).
        max_hop: optional cap on the subgraph growth radius.
    """

    k: int = 10
    theta: float = DEFAULT_THETA
    entry_mode: str = "temporal"
    compress: bool = True
    ordering: str = "influence"
    max_hop: "int | None" = None

    def __post_init__(self) -> None:
        if self.k < 3:
            raise ValueError(f"k must be >= 3 for a non-empty feature, got {self.k}")
        if not 0.0 < self.theta <= 1.0:
            raise ValueError(f"theta must be in (0, 1], got {self.theta}")
        if self.entry_mode not in ENTRY_MODES:
            raise ValueError(
                f"entry_mode must be one of {ENTRY_MODES}, got {self.entry_mode!r}"
            )
        if self.ordering not in ("influence", "hops"):
            raise ValueError(
                f"ordering must be 'influence' or 'hops', got {self.ordering!r}"
            )
        if self.max_hop is not None and self.max_hop < 1:
            raise ValueError(f"max_hop must be >= 1, got {self.max_hop}")

    @property
    def feature_dim(self) -> int:
        return ssf_feature_dim(self.k)


class SSFExtractor:
    """Extracts SSF vectors for target links of one observed network.

    Example:
        >>> from repro.graph import DynamicNetwork
        >>> g = DynamicNetwork([("a", "c", 1), ("b", "c", 2), ("c", "d", 3)])
        >>> extractor = SSFExtractor(g, SSFConfig(k=4))
        >>> extractor.extract("a", "b").shape
        (5,)
    """

    def __init__(
        self,
        network: "DynamicNetwork | CSRSnapshot",
        config: "SSFConfig | None" = None,
        present_time: "float | None" = None,
        backend: str = "auto",
    ) -> None:
        """Args:
        network: the observed history ``G_[tp, tq)`` — a dict-backed
            :class:`DynamicNetwork` or a prebuilt :class:`CSRSnapshot`
            (build one per observed window and share it across
            extractors/workers to amortise the freeze cost).
        config: extraction hyper-parameters (defaults to ``SSFConfig()``).
        present_time: the prediction time ``l_t``; defaults to the
            network's last timestamp plus one unit, mirroring the paper's
            "predict the next timestamp" setup.
        backend: ``"dict"`` (faithful reference), ``"csr"`` (array
            pipeline over a frozen snapshot; bit-identical features), or
            ``"auto"`` (see :func:`resolve_backend`).
        """
        self._config = config or SSFConfig()
        self._backend = resolve_backend(network, backend)
        if isinstance(network, CSRSnapshot):
            self._network: "DynamicNetwork | None" = None
            self._snapshot: "CSRSnapshot | None" = network
        else:
            self._network = network
            self._snapshot = (
                CSRSnapshot.from_dynamic(network)
                if self._backend == "csr"
                else None
            )
        source = self._snapshot if self._backend == "csr" else self._network
        if present_time is None:
            present_time = (
                source.last_timestamp() + 1.0 if source.number_of_links() else 0.0
            )
        self._present_time = float(present_time)
        self._batch_engine: "BatchExtractionEngine | None" = None

    @property
    def config(self) -> SSFConfig:
        return self._config

    @property
    def backend(self) -> str:
        """The resolved backend: ``"dict"`` or ``"csr"``."""
        return self._backend

    @property
    def snapshot(self) -> "CSRSnapshot | None":
        """The frozen snapshot (``None`` on the dict backend)."""
        return self._snapshot

    @property
    def present_time(self) -> float:
        return self._present_time

    @property
    def feature_dim(self) -> int:
        return self._config.feature_dim

    def _substrate(self) -> "DynamicNetwork | CSRSnapshot":
        return self._snapshot if self._backend == "csr" else self._network

    def _has_node(self, node: Node) -> bool:
        return self._substrate().has_node(node)

    def _engine(self) -> "BatchExtractionEngine":
        """The batched CSR driver, built lazily and kept for the
        extractor's lifetime (its arena buffers amortise across batches)."""
        if self._batch_engine is None:
            from repro.core.batch import BatchExtractionEngine

            snapshot = self._snapshot
            assert snapshot is not None
            self._batch_engine = BatchExtractionEngine(
                snapshot,
                k=self._config.k,
                theta=self._config.theta,
                present_time=self._present_time,
                compress=self._config.compress,
                ordering=self._config.ordering,
                max_hop=self._config.max_hop,
            )
        return self._batch_engine

    # ------------------------------------------------------------------
    # extraction
    # ------------------------------------------------------------------
    def extract(self, a: Node, b: Node) -> np.ndarray:
        """The SSF vector ``V(e_t)`` of target link ``(a, b)`` (Def. 10)."""
        with span(f"feature.{self._config.entry_mode}", k=self._config.k):
            return self._unfold(self.adjacency_matrix(a, b))

    def extract_batch(self, pairs: "list[tuple[Node, Node]]") -> np.ndarray:
        """SSF vectors for many target links, as a ``(pairs, dim)`` matrix.

        On ``backend="csr"`` this runs the batched driver
        (:class:`repro.core.batch.BatchExtractionEngine`): shared h-hop
        balls, arena work buffers and one vectorized Palette-WL pass over
        every subgraph of the batch.  The dict backend stays the
        loop-per-pair reference; both return bit-identical matrices.
        Pairs with a missing end node yield all-zero rows, in place.
        """
        if self._backend == "csr":
            return self._engine().extract_batch(pairs, self._config.entry_mode)
        out = np.zeros((len(pairs), self.feature_dim), dtype=np.float64)
        if not pairs:
            return out
        with span(
            f"feature.{self._config.entry_mode}",
            k=self._config.k,
            pairs=len(pairs),
        ):
            for row, (a, b) in enumerate(pairs):
                out[row] = self._unfold(self.adjacency_matrix(a, b))
        return out

    def extract_multi_batch(
        self, pairs: "list[tuple[Node, Node]]", modes: "tuple[str, ...]"
    ) -> dict[str, np.ndarray]:
        """Batched :meth:`extract_multi`: one matrix per entry mode.

        The expensive subgraph stage is shared across modes (and, on the
        CSR backend, across pairs — see :meth:`extract_batch`); each
        returned matrix row-aligns with ``pairs`` and equals the matching
        :meth:`extract_multi` vector bit for bit.
        """
        for mode in modes:
            if mode not in ENTRY_MODES:
                raise ValueError(f"unknown entry mode {mode!r}")
        if self._backend == "csr":
            return self._engine().extract_multi_batch(pairs, tuple(modes))
        out = {
            mode: np.zeros((len(pairs), self.feature_dim), dtype=np.float64)
            for mode in modes
        }
        if not pairs:
            return out
        subgraphs = [
            self.k_structure_subgraph(a, b)
            if self._has_node(a) and self._has_node(b)
            else None
            for a, b in pairs
        ]
        for mode in modes:
            with span(
                f"feature.{mode}", k=self._config.k, pairs=len(pairs), shared=True
            ):
                rows = out[mode]
                for row, ks in enumerate(subgraphs):
                    if ks is not None:
                        rows[row] = self._unfold(self._matrix_from_ks(ks, mode))
        return out

    def extract_multi(
        self, a: Node, b: Node, modes: "tuple[str, ...]"
    ) -> dict[str, np.ndarray]:
        """SSF vectors for several entry modes from ONE subgraph extraction.

        The K-structure subgraph (the expensive part) is shared; only the
        entry evaluation differs per mode.  Used by the experiment runner
        to amortise extraction across SSF and SSF-W variants.
        """
        for mode in modes:
            if mode not in ENTRY_MODES:
                raise ValueError(f"unknown entry mode {mode!r}")
        if not (self._has_node(a) and self._has_node(b)):
            zero = np.zeros(self.feature_dim)
            return {mode: zero.copy() for mode in modes}

        ks = self.k_structure_subgraph(a, b)
        out: dict[str, np.ndarray] = {}
        for mode in modes:
            with span(f"feature.{mode}", k=self._config.k, shared=True):
                out[mode] = self._unfold(self._matrix_from_ks(ks, mode))
        return out

    def _matrix_from_ks(self, ks: KStructureSubgraph, mode: str) -> np.ndarray:
        k = self._config.k
        with span("influence_matrix", mode=mode):
            matrix = np.zeros((k, k), dtype=np.float64)
            rows: list[int] = []
            cols: list[int] = []
            values: list[float] = []
            for m, n in upper_triangle_orders(ks.number_selected()):
                if not ks.has_link(m, n):
                    continue
                rows.append(m - 1)
                cols.append(n - 1)
                values.append(self._entry_value(ks, m, n, mode))
            if values:
                matrix[rows, cols] = values
                matrix[cols, rows] = values
            return matrix

    def adjacency_matrix(self, a: Node, b: Node) -> np.ndarray:
        """The K×K normalized adjacency matrix ``A`` of Eq. 4.

        Rows/columns follow Palette-WL orders (row 0 = order 1 = end node
        ``a``'s structure node).  ``A(1, 2)`` — the target link itself —
        is fixed at 0; the matrix is symmetric.
        """
        if not (self._has_node(a) and self._has_node(b)):
            return np.zeros((self._config.k, self._config.k), dtype=np.float64)
        return self._matrix_from_ks(
            self.k_structure_subgraph(a, b), self._config.entry_mode
        )

    def k_structure_subgraph(self, a: Node, b: Node) -> KStructureSubgraph:
        """The ordered K-structure subgraph of ``(a, b)``.

        With ``ordering="influence"`` (default), structure nodes that the
        hop-distance bands and WL refinement leave tied are ordered by
        descending influence toward the two end nodes, so top-K selection
        keeps the most strongly/recently connected candidates — the role
        footnote 1's reciprocal-influence distances play, realised as a
        tie-break so feature positions stay consistent across links.
        """
        return extract_k_structure_subgraph(
            self._substrate(),
            a,
            b,
            self._config.k,
            max_hop=self._config.max_hop,
            tie_break=self._ordering_tie_break(),
        )

    def _ordering_tie_break(
        self,
    ) -> "Callable[[StructureSubgraph | CSRStructureSubgraph], list[float]] | None":
        """Per-node ``-influence-to-endpoints`` scores, or None for "hops".

        Structure nodes that the hop bands *and* the WL refinement leave
        tied are ordered by descending influence toward the two end
        nodes, so top-K selection keeps the most strongly/recently
        connected of otherwise-equivalent candidates (the footnote-1
        weighted-distance idea, realised without perturbing the
        structural ordering that keeps feature positions consistent).
        """
        if self._config.ordering == "hops":
            return None
        theta = self._config.theta
        present = self._present_time

        def scores(
            subgraph: "StructureSubgraph | CSRStructureSubgraph",
        ) -> list[float]:
            # Only structure nodes adjacent to an end node can score
            # nonzero, so walk the two end adjacencies instead of testing
            # every node against both ends.
            out = [0.0] * subgraph.number_of_structure_nodes()
            for endpoint in (0, 1):
                for idx in subgraph.adjacency(endpoint):
                    if idx != endpoint:
                        out[idx] -= subgraph.link_influence(
                            idx, endpoint, present, theta
                        )
            return out

        return scores

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _entry_value(self, ks: KStructureSubgraph, m: int, n: int, mode: str) -> float:
        if mode == "binary":
            return 1.0
        if mode == "count":
            count = float(ks.link_count(m, n))
            return math.log1p(count) if self._config.compress else count
        if mode == "influence":
            influence = self._influence(ks, m, n)
            return math.log1p(influence) if self._config.compress else influence
        if mode == "distance":
            return self._distance_entry(ks, m, n)
        if mode == "influence_distance":
            return self._influence(ks, m, n) * self._distance_entry(ks, m, n)
        if mode == "temporal":
            base = 1.0 + math.log1p(self._influence(ks, m, n))
            return base * self._distance_entry(ks, m, n)
        raise AssertionError(f"unhandled entry mode {mode!r}")  # pragma: no cover

    def _influence(self, ks: KStructureSubgraph, m: int, n: int) -> float:
        return ks.link_influence(m, n, self._present_time, self._config.theta)

    @staticmethod
    def _distance_entry(ks: KStructureSubgraph, m: int, n: int) -> float:
        d_m = ks.distances[m - 1]
        d_n = ks.distances[n - 1]
        finite = [d for d in (d_m, d_n) if d >= 0]
        if not finite:
            return 0.0
        return 1.0 / max(1, min(finite))

    def _unfold(self, matrix: np.ndarray) -> np.ndarray:
        """Eq. 5: upper triangle minus ``A(1, 2)``, column-major."""
        rows, cols = unfold_indices(self._config.k)
        return matrix[rows, cols]

"""Palette-WL structure-node ordering — Algorithm 2 of the paper.

A Weisfeiler–Lehman colour refinement that assigns each structure node an
order such that

* the two end structure nodes of the target link always receive orders
  1 and 2,
* structure nodes farther from the target link receive higher orders,
* topologically distinguishable structure nodes receive distinct orders.

The refinement update (Algorithm 2, line 4) hashes a node's neighbourhood
through logarithms of primes indexed by current orders:

    h(N_x) = C(N_x) + Σ_{N_p ∈ Γ(N_x)} log(P(C(N_p)))
                      / | Σ_{N_q ∈ V_S} log(P(C(N_q))) |

Because the correction term lies strictly in ``[0, 1)``, the update is
*order preserving*: nodes with distinct orders keep their relative order,
and only ties (equal orders) can split.  This both guarantees the
end-node anchoring (they start with the two smallest orders) and gives a
convergence proof: the number of distinct orders is non-decreasing and
bounded by ``|V_S|``.

Orders here are *dense ranks* — tied nodes share an order value — exactly
what the refinement needs to be able to split ties.  The public entry
point :func:`palette_wl_order` additionally returns a strict total order
(used to pick the top-K structure nodes) by breaking residual ties with a
deterministic label-based key.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Sequence

from repro.core.structure import StructureSubgraph
from repro.obs import incr, observe, span
from repro.utils.primes import nth_prime

_MAX_ITERATIONS = 100


@lru_cache(maxsize=None)
def _log_prime(color: int) -> float:
    return math.log(nth_prime(color))


def palette_wl_order(
    subgraph: StructureSubgraph,
    initial_scores: "Sequence[float] | None" = None,
    edge_length: "Callable[[int, int], float] | None" = None,
    tie_break: "Sequence[float] | None" = None,
) -> list[int]:
    """Assign a strict Palette-WL order to every structure node.

    Args:
        subgraph: the h-hop structure subgraph; indices 0/1 are the end
            structure nodes.
        initial_scores: the initial ordering key of each structure node
            (Algorithm 2, line 1: "increasingly with the distance to
            e_t").  Defaults to :func:`bilateral_distance_scores` — the
            sum of hop distances to the two end nodes, the WLNM
            convention the paper's Algorithm 2 is adopted from, which
            ranks common neighbours (close to *both* ends) before
            one-sided neighbours.  Negative values mean "unreachable" and
            sort after every finite score.
        edge_length: optional structure-link length function used by the
            default initial scores (ignored when ``initial_scores`` is
            given).  The paper's footnote 1 uses the reciprocal
            normalized influence, making strongly/recently connected
            structure nodes rank earlier.
        tie_break: optional per-node score (lower = earlier) used to
            order nodes the WL refinement leaves tied, *before* the
            label-based fallback.  The SSF extractor passes negative
            influence-to-endpoints here so that, among structurally
            equivalent candidates, the most strongly/recently connected
            ones occupy the selected top-K slots — the role footnote 1's
            weighted distances play on dense networks where hop bands
            have massive ties.

    Returns:
        ``order`` such that ``order[i]`` is the 1-based order of structure
        node ``i``; ``order[0] == 1`` and ``order[1] == 2`` always.
    """
    n = subgraph.number_of_structure_nodes()
    if n < 2:
        raise ValueError("structure subgraph must contain both end nodes")
    if initial_scores is None:
        initial_scores = bilateral_distance_scores(subgraph, edge_length)
    if len(initial_scores) != n:
        raise ValueError(f"expected {n} initial scores, got {len(initial_scores)}")

    if tie_break is not None and len(tie_break) != n:
        raise ValueError(f"expected {n} tie-break scores, got {len(tie_break)}")

    with span("palette_wl", nodes=n):
        colors = _initial_colors(initial_scores)
        colors = _refine(subgraph, colors)
        return _strict_order(subgraph, colors, tie_break)


def bilateral_distance_scores(
    subgraph: StructureSubgraph,
    edge_length: "Callable[[int, int], float] | None" = None,
) -> list[float]:
    """``d(N, a) + d(N, b)`` per structure node, the default initial key.

    With unit lengths a common neighbour scores 2 (1 + 1) while a node
    adjacent to one end only scores at least 3 — so the initial colouring
    already separates the structurally central nodes, and top-K selection
    keeps them.  With ``edge_length`` given (footnote 1: reciprocal
    normalized influence), distances additionally prefer strong/recent
    structure links, which is what breaks the massive distance ties of
    dense networks.  Unreachability from one end contributes a
    large-but-finite penalty so half-reachable nodes still order among
    themselves by the reachable side; fully unreachable nodes sort last.
    """
    if edge_length is None:
        from_a = [float(d) for d in subgraph.distances_from(0)]
        from_b = [float(d) for d in subgraph.distances_from(1)]
        unreachable = -1.0
    else:
        from_a = subgraph.weighted_distances_from(0, edge_length)
        from_b = subgraph.weighted_distances_from(1, edge_length)
        unreachable = math.inf
    finite = [
        d for d in from_a + from_b if d != unreachable and math.isfinite(d)
    ]
    penalty = 2.0 * max(finite) + 1.0 if finite else 1.0
    scores: list[float] = []
    for da, db in zip(from_a, from_b):
        sa = da if (da != unreachable and math.isfinite(da)) else penalty
        sb = db if (db != unreachable and math.isfinite(db)) else penalty
        scores.append(sa + sb)
    return scores


def _initial_colors(scores: Sequence[float]) -> list[int]:
    """Dense ranks by score; end nodes pinned to colours 1 and 2.

    All non-end nodes with the same score share a colour (ties are what
    the WL refinement subsequently splits).  Negative scores (unreachable
    markers) rank after every non-negative one.
    """
    sortable = [(s if s >= 0 else math.inf) for s in scores]
    distinct = sorted(set(sortable[2:]))
    rank_of = {s: r + 3 for r, s in enumerate(distinct)}
    return [1, 2] + [rank_of[s] for s in sortable[2:]]


def _refine(subgraph: StructureSubgraph, colors: list[int]) -> list[int]:
    """Iterate the prime-log hash until the colouring stops changing."""
    n = len(colors)
    for iteration in range(_MAX_ITERATIONS):
        log_primes = [_log_prime(c) for c in colors]
        total = sum(log_primes)
        # `total` > 0 always (log 2 > 0 for every node).  Neighbour
        # contributions are summed in sorted-index order so the floating
        # accumulation is canonical (set-iteration order is not).
        hashes = [
            colors[i]
            + sum(log_primes[j] for j in subgraph.adjacency_sorted(i)) / abs(total)
            for i in range(n)
        ]
        new_colors = _dense_rank(hashes)
        # End nodes are guaranteed first by order preservation; pin anyway
        # so numeric noise can never violate the paper's invariant.
        new_colors[0], new_colors[1] = 1, 2
        if new_colors == colors:
            observe("palette_wl.iterations", iteration + 1)
            return colors
        colors = new_colors
    incr("palette_wl.max_iterations_hit")
    observe("palette_wl.iterations", _MAX_ITERATIONS)
    return colors


def _dense_rank(values: Sequence[float]) -> list[int]:
    """1-based dense ranks (equal values share a rank), with a tolerance.

    Floating hashes of symmetric nodes must compare equal; an absolute
    tolerance merges ranks whose hashes differ by less than 1e-9.
    """
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0] * len(values)
    rank = 0
    previous: "float | None" = None
    for idx in order:
        value = values[idx]
        if previous is None or value - previous > 1e-9:
            rank += 1
            previous = value
        ranks[idx] = rank
    return ranks


def _strict_order(
    subgraph: StructureSubgraph,
    colors: Sequence[int],
    tie_break: "Sequence[float] | None" = None,
) -> list[int]:
    """Break residual colour ties deterministically into a total order.

    Nodes that the refinement could not distinguish are *structurally*
    symmetric around the target link; the optional ``tie_break`` score
    orders them by link strength, and a label-based key guarantees
    determinism beyond that.  The label key is only computed for nodes
    that are still tied after ``(colour, tie_break)`` — on most subgraphs
    that is nobody, so the member-label materialisation is skipped.
    """
    if tie_break is None:
        tie_break = [0.0] * len(colors)
    indices = sorted(
        range(len(colors)), key=lambda i: (colors[i], tie_break[i])
    )
    # Stable-resort runs of equal (colour, tie_break) by the label key.
    start = 0
    while start < len(indices):
        end = start + 1
        head = indices[start]
        while (
            end < len(indices)
            and colors[indices[end]] == colors[head]
            and tie_break[indices[end]] == tie_break[head]
        ):
            end += 1
        if end - start > 1:
            indices[start:end] = sorted(
                indices[start:end], key=subgraph.sort_key
            )
        start = end
    order = [0] * len(colors)
    for position, idx in enumerate(indices, start=1):
        order[idx] = position
    return order
